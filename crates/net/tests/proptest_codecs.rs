//! Property tests for the multi-protocol codec seam (`DESIGN.md` §16):
//! a valid request stream must carve and decode to the same request
//! sequence no matter how the bytes are split across reads, and
//! arbitrary hostile bytes must never panic or stall any codec.

use bytes::{Bytes, BytesMut};
use dido_model::Query;
use dido_net::{carve_one, decode_request, encode_queries_wire_into, Carve, ProtocolKind};
use proptest::prelude::*;

/// Carve a whole stream in one pass, returning each request's decode
/// payload. Panics on a carve error (the generators below only build
/// valid streams) and asserts the carve makes progress.
fn carve_all(kind: ProtocolKind, stream: &[u8]) -> Vec<Bytes> {
    let mut out = Vec::new();
    let mut pos = 0;
    while pos < stream.len() {
        match carve_one(kind, &stream[pos..]).expect("valid stream must carve") {
            Carve::Partial => break,
            Carve::Request { total, skip } => {
                assert!(total > 0, "carve must make progress");
                assert!(skip <= total && pos + total <= stream.len());
                out.push(Bytes::from(stream[pos + skip..pos + total].to_vec()));
                pos += total;
            }
        }
    }
    assert_eq!(pos, stream.len(), "generator produced a trailing partial");
    out
}

/// Carve the same stream fed in arbitrary chunks, the way a reactor
/// sees it: bytes accumulate in a buffer, and after every chunk the
/// carve loop drains whatever requests are complete.
fn carve_split(kind: ProtocolKind, stream: &[u8], chunks: &[usize]) -> Vec<Bytes> {
    let mut out = Vec::new();
    let mut buf = BytesMut::new();
    let mut fed = 0;
    let mut chunk_iter = chunks.iter().cycle();
    while fed < stream.len() {
        let n = (*chunk_iter.next().unwrap()).clamp(1, stream.len() - fed);
        buf.extend_from_slice(&stream[fed..fed + n]);
        fed += n;
        loop {
            match carve_one(kind, &buf).expect("valid stream must carve") {
                Carve::Partial => break,
                Carve::Request { total, skip } => {
                    let request = buf.split_to(total).freeze();
                    out.push(request.slice(skip..));
                }
            }
        }
    }
    assert!(buf.is_empty(), "no partial bytes may remain at stream end");
    out
}

/// Decode every carved payload, concatenating the queries.
fn decode_all(kind: ProtocolKind, payloads: &[Bytes]) -> Vec<Query> {
    let mut queries = Vec::new();
    for p in payloads {
        let _meta = decode_request(kind, p, 0, &mut queries);
    }
    queries
}

/// One structured memcached request plus the queries it must decode to.
#[derive(Debug, Clone)]
enum McRequest {
    Get { keys: Vec<String>, with_cas: bool },
    Set { key: String, flags: u32, exptime: u32, value: Vec<u8>, noreply: bool },
    Delete { key: String, noreply: bool },
}

impl McRequest {
    fn render(&self, out: &mut Vec<u8>) {
        match self {
            McRequest::Get { keys, with_cas } => {
                out.extend_from_slice(if *with_cas { b"gets" } else { b"get" });
                for k in keys {
                    out.push(b' ');
                    out.extend_from_slice(k.as_bytes());
                }
                out.extend_from_slice(b"\r\n");
            }
            McRequest::Set { key, flags, exptime, value, noreply } => {
                out.extend_from_slice(
                    format!("set {key} {flags} {exptime} {}", value.len()).as_bytes(),
                );
                if *noreply {
                    out.extend_from_slice(b" noreply");
                }
                out.extend_from_slice(b"\r\n");
                out.extend_from_slice(value);
                out.extend_from_slice(b"\r\n");
            }
            McRequest::Delete { key, noreply } => {
                out.extend_from_slice(format!("delete {key}").as_bytes());
                if *noreply {
                    out.extend_from_slice(b" noreply");
                }
                out.extend_from_slice(b"\r\n");
            }
        }
    }

    fn expected(&self, out: &mut Vec<Query>) {
        match self {
            McRequest::Get { keys, .. } => {
                out.extend(keys.iter().map(|k| Query::get(k.clone().into_bytes())));
            }
            McRequest::Set { key, flags, exptime, value, .. } => out.push(Query::set_with(
                key.clone().into_bytes(),
                value.clone(),
                *exptime,
                *flags,
            )),
            McRequest::Delete { key, .. } => out.push(Query::delete(key.clone().into_bytes())),
        }
    }
}

/// One structured RESP request plus the queries it must decode to.
#[derive(Debug, Clone)]
enum RespRequest {
    Get(Vec<u8>),
    Set { key: Vec<u8>, value: Vec<u8>, ex: Option<u32> },
    Del(Vec<Vec<u8>>),
    MGet(Vec<Vec<u8>>),
    Ping,
}

fn put_bulk(out: &mut Vec<u8>, data: &[u8]) {
    out.extend_from_slice(format!("${}\r\n", data.len()).as_bytes());
    out.extend_from_slice(data);
    out.extend_from_slice(b"\r\n");
}

impl RespRequest {
    fn render(&self, out: &mut Vec<u8>) {
        let args: Vec<Vec<u8>> = match self {
            RespRequest::Get(k) => vec![b"GET".to_vec(), k.clone()],
            RespRequest::Set { key, value, ex } => {
                let mut a = vec![b"SET".to_vec(), key.clone(), value.clone()];
                if let Some(t) = ex {
                    a.push(b"EX".to_vec());
                    a.push(t.to_string().into_bytes());
                }
                a
            }
            RespRequest::Del(keys) => std::iter::once(b"DEL".to_vec())
                .chain(keys.iter().cloned())
                .collect(),
            RespRequest::MGet(keys) => std::iter::once(b"MGET".to_vec())
                .chain(keys.iter().cloned())
                .collect(),
            RespRequest::Ping => vec![b"PING".to_vec()],
        };
        out.extend_from_slice(format!("*{}\r\n", args.len()).as_bytes());
        for a in &args {
            put_bulk(out, a);
        }
    }

    fn expected(&self, out: &mut Vec<Query>) {
        match self {
            RespRequest::Get(k) => out.push(Query::get(k.clone())),
            RespRequest::Set { key, value, ex } => out.push(Query::set_with(
                key.clone(),
                value.clone(),
                ex.unwrap_or(0),
                0,
            )),
            RespRequest::Del(keys) => out.extend(keys.iter().map(|k| Query::delete(k.clone()))),
            RespRequest::MGet(keys) => out.extend(keys.iter().map(|k| Query::get(k.clone()))),
            RespRequest::Ping => {}
        }
    }
}

/// Characters legal in a memcached key (printable, no spaces).
const KEY_CHARSET: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_./-";

/// memcached keys: printable, no spaces or control bytes.
fn mc_key() -> impl Strategy<Value = String> {
    proptest::collection::vec(0usize..KEY_CHARSET.len(), 1..40)
        .prop_map(|ix| ix.into_iter().map(|i| KEY_CHARSET[i] as char).collect())
}

fn mc_request() -> impl Strategy<Value = McRequest> {
    prop_oneof![
        (proptest::collection::vec(mc_key(), 1..6), any::<bool>())
            .prop_map(|(keys, with_cas)| McRequest::Get { keys, with_cas }),
        (
            mc_key(),
            any::<u32>(),
            any::<u32>(),
            proptest::collection::vec(any::<u8>(), 0..128),
            any::<bool>()
        )
            .prop_map(|(key, flags, exptime, value, noreply)| McRequest::Set {
                key,
                flags,
                exptime,
                value,
                noreply
            }),
        (mc_key(), any::<bool>()).prop_map(|(key, noreply)| McRequest::Delete { key, noreply }),
    ]
}

/// RESP keys/values are length-prefixed bulk strings: any bytes go.
fn resp_bytes(max: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), 1..max)
}

fn resp_request() -> impl Strategy<Value = RespRequest> {
    prop_oneof![
        resp_bytes(40).prop_map(RespRequest::Get),
        (
            resp_bytes(40),
            resp_bytes(128),
            prop_oneof![Just(None), any::<u32>().prop_map(Some)]
        )
            .prop_map(|(key, value, ex)| RespRequest::Set { key, value, ex }),
        proptest::collection::vec(resp_bytes(40), 1..5).prop_map(RespRequest::Del),
        proptest::collection::vec(resp_bytes(40), 1..5).prop_map(RespRequest::MGet),
        Just(RespRequest::Ping),
    ]
}

fn chunk_sizes() -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(1usize..17, 1..12)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn memcached_streams_carve_identically_under_any_byte_split(
        requests in proptest::collection::vec(mc_request(), 1..12),
        chunks in chunk_sizes(),
    ) {
        let mut stream = Vec::new();
        let mut expected = Vec::new();
        for r in &requests {
            r.render(&mut stream);
            r.expected(&mut expected);
        }
        let oneshot = carve_all(ProtocolKind::Memcached, &stream);
        let split = carve_split(ProtocolKind::Memcached, &stream, &chunks);
        prop_assert_eq!(&oneshot, &split);
        prop_assert_eq!(oneshot.len(), requests.len());
        prop_assert_eq!(decode_all(ProtocolKind::Memcached, &oneshot), expected);
    }

    #[test]
    fn resp_streams_carve_identically_under_any_byte_split(
        requests in proptest::collection::vec(resp_request(), 1..12),
        chunks in chunk_sizes(),
    ) {
        let mut stream = Vec::new();
        let mut expected = Vec::new();
        for r in &requests {
            r.render(&mut stream);
            r.expected(&mut expected);
        }
        let oneshot = carve_all(ProtocolKind::Resp, &stream);
        let split = carve_split(ProtocolKind::Resp, &stream, &chunks);
        prop_assert_eq!(&oneshot, &split);
        prop_assert_eq!(oneshot.len(), requests.len());
        prop_assert_eq!(decode_all(ProtocolKind::Resp, &oneshot), expected);
    }

    #[test]
    fn dido_streams_carve_identically_under_any_byte_split(
        batches in proptest::collection::vec(
            proptest::collection::vec(
                (mc_key(), proptest::collection::vec(any::<u8>(), 0..64))
                    .prop_map(|(k, v)| Query::set(k.into_bytes(), v)),
                0..8,
            ),
            1..8,
        ),
        chunks in chunk_sizes(),
    ) {
        let mut wire = BytesMut::new();
        let mut expected = Vec::new();
        for batch in &batches {
            encode_queries_wire_into(&mut wire, batch);
            expected.extend(batch.iter().cloned());
        }
        let oneshot = carve_all(ProtocolKind::Dido, &wire);
        let split = carve_split(ProtocolKind::Dido, &wire, &chunks);
        prop_assert_eq!(&oneshot, &split);
        prop_assert_eq!(oneshot.len(), batches.len());
        prop_assert_eq!(decode_all(ProtocolKind::Dido, &oneshot), expected);
    }

    #[test]
    fn arbitrary_bytes_never_panic_or_stall_any_codec(
        raw in proptest::collection::vec(any::<u8>(), 0..2048),
    ) {
        for kind in ProtocolKind::all() {
            let mut pos = 0;
            loop {
                match carve_one(kind, &raw[pos..]) {
                    Err(_) => break, // connection-fatal: reader retires the conn
                    Ok(Carve::Partial) => break,
                    Ok(Carve::Request { total, skip }) => {
                        // Progress and bounds: a carve that returned a
                        // request must consume at least one byte and
                        // stay inside the buffer, or the reader loops
                        // forever / slices out of range.
                        prop_assert!(total > 0 && skip <= total);
                        prop_assert!(pos + total <= raw.len());
                        let payload = Bytes::from(raw[pos + skip..pos + total].to_vec());
                        let mut out = Vec::new();
                        let _ = decode_request(kind, &payload, 0, &mut out); // must not panic
                        pos += total;
                    }
                }
            }
        }
    }

    #[test]
    fn decode_never_panics_on_payloads_that_skipped_the_carve(
        raw in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        // decode_request is public API: it must be total even over
        // buffers that never went through carve_one.
        let payload = Bytes::from(raw);
        for kind in ProtocolKind::all() {
            let mut out = Vec::new();
            let _ = decode_request(kind, &payload, 0, &mut out);
        }
    }

    #[test]
    fn truncated_valid_requests_stay_partial_or_carve_a_prefix(
        requests in proptest::collection::vec(mc_request(), 1..6),
        cut_fraction in 0.0f64..1.0,
    ) {
        // Cutting a valid stream mid-request must leave the tail
        // Partial (awaiting more bytes), never a bogus carve that would
        // desync the connection.
        let mut stream = Vec::new();
        for r in &requests {
            r.render(&mut stream);
        }
        let cut = ((stream.len() as f64) * cut_fraction) as usize;
        let full = carve_all(ProtocolKind::Memcached, &stream);
        let mut pos = 0;
        let mut carved = 0;
        while pos < cut {
            match carve_one(ProtocolKind::Memcached, &stream[pos..cut]).expect("valid prefix") {
                Carve::Partial => break,
                Carve::Request { total, skip } => {
                    prop_assert_eq!(
                        &stream[pos + skip..pos + total],
                        &full[carved][..],
                        "truncated carve must match the full stream's request"
                    );
                    carved += 1;
                    pos += total;
                }
            }
        }
        prop_assert!(carved <= full.len());
    }
}
