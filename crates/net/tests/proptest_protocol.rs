//! Property tests for the wire protocol: arbitrary queries round-trip
//! exactly; arbitrary garbage never panics the parsers.

use bytes::Bytes;
use dido_model::{Query, QueryOp, Response, ResponseStatus};
use dido_net::{encode_responses, pack_frames, parse_frame, parse_responses};
use proptest::prelude::*;

fn query_strategy() -> impl Strategy<Value = Query> {
    (
        prop_oneof![
            Just(QueryOp::Get),
            Just(QueryOp::Set),
            Just(QueryOp::Delete)
        ],
        proptest::collection::vec(any::<u8>(), 1..64),
        proptest::collection::vec(any::<u8>(), 0..256),
    )
        .prop_map(|(op, key, value)| Query {
            op,
            key: Bytes::from(key),
            value: if op == QueryOp::Set {
                Bytes::from(value)
            } else {
                Bytes::new()
            },
            ttl: 0,
            flags: 0,
        })
}

fn response_strategy() -> impl Strategy<Value = Response> {
    (
        prop_oneof![
            Just(ResponseStatus::Ok),
            Just(ResponseStatus::NotFound),
            Just(ResponseStatus::Error)
        ],
        proptest::collection::vec(any::<u8>(), 0..256),
    )
        .prop_map(|(status, value)| Response {
            status,
            value: Bytes::from(value),
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn queries_round_trip_across_any_frame_split(
        queries in proptest::collection::vec(query_strategy(), 0..80),
        capacity in 64usize..4096,
    ) {
        let frames = pack_frames(&queries, capacity);
        let mut decoded = Vec::new();
        for f in &frames {
            decoded.extend(parse_frame(f).expect("own encoding must parse"));
        }
        prop_assert_eq!(decoded, queries);
    }

    #[test]
    fn responses_round_trip(responses in proptest::collection::vec(response_strategy(), 0..64)) {
        let frame = encode_responses(&responses);
        prop_assert_eq!(parse_responses(&frame).expect("own encoding"), responses);
    }

    #[test]
    fn arbitrary_bytes_never_panic_the_parsers(raw in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let bytes = Bytes::from(raw);
        let _ = parse_frame(&bytes);      // may Err, must not panic
        let _ = parse_responses(&bytes);  // may Err, must not panic
    }

    #[test]
    fn truncations_of_valid_frames_error_cleanly(
        queries in proptest::collection::vec(query_strategy(), 1..20),
        cut_fraction in 0.0f64..1.0,
    ) {
        let frames = pack_frames(&queries, 1 << 16);
        let frame = &frames[0];
        let cut = ((frame.len() as f64) * cut_fraction) as usize;
        if cut < frame.len() {
            let truncated = frame.slice(0..cut);
            // Either a clean parse error, or (if the cut landed exactly
            // on a record boundary and the count prefix survived) it
            // must decode a prefix of the original queries.
            if let Ok(decoded) = parse_frame(&truncated) {
                prop_assert!(decoded.len() <= queries.len());
                for (d, q) in decoded.iter().zip(&queries) {
                    prop_assert_eq!(d, q);
                }
            }
        }
    }
}
