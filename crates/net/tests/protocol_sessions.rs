//! Canned protocol sessions: byte-literal memcached-text and RESP
//! transcripts replayed against a live multi-protocol server, with the
//! reply stream compared byte-for-byte (`DESIGN.md` §16). Every session
//! runs over the per-connection topology and each batched I/O backend
//! the host supports.

use dido_model::{
    deadline_expired, ttl_to_deadline, MockClock, Query, QueryOp, Response, SharedClock,
};
use dido_net::{
    backend_matrix, BatchConfig, DispatchMode, IoBackend, KvClient, KvServer, ProtocolKind,
};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

/// A tiny in-memory store: enough to give the wire sessions real
/// SET/GET/DELETE semantics, shared by every listener of a server.
fn map_store_handler() -> impl Fn(usize, Vec<Query>) -> Vec<Response> + Send + Sync + 'static {
    let map: Mutex<HashMap<Vec<u8>, Vec<u8>>> = Mutex::new(HashMap::new());
    move |_lane, queries| {
        let mut map = map.lock();
        queries
            .iter()
            .map(|q| match q.op {
                QueryOp::Set => {
                    map.insert(q.key.to_vec(), q.value.to_vec());
                    Response::ok()
                }
                QueryOp::Get => match map.get(&q.key.to_vec()) {
                    Some(v) => Response::hit(v.clone()),
                    None => Response::not_found(),
                },
                QueryOp::Delete => {
                    if map.remove(&q.key.to_vec()).is_some() {
                        Response::ok()
                    } else {
                        Response::not_found()
                    }
                }
            })
            .collect()
    }
}

/// Like [`map_store_handler`], but TTL-aware: SETs record an absolute
/// deadline from the query's (already codec-normalized, relative) TTL,
/// and GETs observe expiry in-band against the shared mock clock —
/// exactly how the real engine's KC task treats an expired object as a
/// miss.
fn ttl_store_handler(
    clock: SharedClock,
) -> impl Fn(usize, Vec<Query>) -> Vec<Response> + Send + Sync + 'static {
    /// Stored value plus its absolute expiry deadline (0 = never).
    type DeadlineMap = HashMap<Vec<u8>, (Vec<u8>, u32)>;
    let map: Mutex<DeadlineMap> = Mutex::new(HashMap::new());
    move |_lane, queries| {
        let now = clock.now_secs();
        let mut map = map.lock();
        queries
            .iter()
            .map(|q| match q.op {
                QueryOp::Set => {
                    map.insert(q.key.to_vec(), (q.value.to_vec(), ttl_to_deadline(q.ttl, now)));
                    Response::ok()
                }
                QueryOp::Get => match map.get(&q.key.to_vec()) {
                    Some((v, deadline)) if !deadline_expired(*deadline, now) => {
                        Response::hit(v.clone())
                    }
                    _ => Response::not_found(),
                },
                QueryOp::Delete => {
                    if map.remove(&q.key.to_vec()).is_some() {
                        Response::ok()
                    } else {
                        Response::not_found()
                    }
                }
            })
            .collect()
    }
}

fn modes() -> Vec<(&'static str, DispatchMode)> {
    let mut modes = vec![("per_conn", DispatchMode::PerConnection)];
    for backend in backend_matrix() {
        let name = match backend {
            IoBackend::Epoll => "batched/epoll",
            IoBackend::Uring => "batched/uring",
        };
        modes.push((
            name,
            DispatchMode::Batched(BatchConfig {
                io_backend: backend.into(),
                ..BatchConfig::default()
            }),
        ));
    }
    modes
}

/// One front door per protocol, all serving the same store.
fn multi_proto_server(mode: DispatchMode) -> KvServer {
    KvServer::start_multi(
        &[
            ("127.0.0.1:0", ProtocolKind::Memcached),
            ("127.0.0.1:0", ProtocolKind::Resp),
            ("127.0.0.1:0", ProtocolKind::Dido),
        ],
        mode,
        map_store_handler(),
    )
    .expect("bind ephemeral multi-proto listeners")
}

/// `(client sends, server must answer exactly)` steps over one
/// connection. An empty expectation is legal (e.g. `noreply`): the
/// next step's reply proves nothing extra arrived in between.
type Session = &'static [(&'static [u8], &'static [u8])];

fn run_session(addr: std::net::SocketAddr, session: Session, label: &str) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    for (i, (send, expect)) in session.iter().enumerate() {
        stream.write_all(send).expect("send");
        stream.flush().unwrap();
        let mut got = vec![0u8; expect.len()];
        stream
            .read_exact(&mut got)
            .unwrap_or_else(|e| panic!("{label} step {i}: short reply: {e}"));
        assert_eq!(
            String::from_utf8_lossy(&got),
            String::from_utf8_lossy(expect),
            "{label} step {i}"
        );
    }
    // Nothing may trail the scripted replies.
    stream
        .set_read_timeout(Some(Duration::from_millis(200)))
        .unwrap();
    let mut extra = [0u8; 64];
    loop {
        match stream.read(&mut extra) {
            Ok(0) => break,
            Ok(n) => panic!(
                "{label}: {n} unexpected trailing bytes: {:?}",
                String::from_utf8_lossy(&extra[..n])
            ),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                break
            }
            Err(e) => panic!("{label}: trailing read failed: {e}"),
        }
    }
}

/// The memcached-text transcript: storage, retrieval with flags echo,
/// `noreply` silence, `gets` CAS column, deletes, and an unknown
/// command that must answer in-band without dropping the connection.
const MC_SESSION: Session = &[
    (b"set greet 0 0 5\r\nhello\r\n", b"STORED\r\n"),
    (
        b"get greet missing\r\n",
        b"VALUE greet 0 5\r\nhello\r\nEND\r\n",
    ),
    // noreply stores silently; the pipelined get right behind it
    // proves the zero-byte reply run still advanced the stream.
    (
        b"set quiet 0 0 2 noreply\r\nok\r\nget quiet\r\n",
        b"VALUE quiet 0 2\r\nok\r\nEND\r\n",
    ),
    (b"gets greet\r\n", b"VALUE greet 0 5 0\r\nhello\r\nEND\r\n"),
    (b"delete greet\r\n", b"DELETED\r\n"),
    (b"delete greet\r\n", b"NOT_FOUND\r\n"),
    (b"bogus greet\r\n", b"ERROR\r\n"),
    // Bad flags field: the line still carves (the bytes field is
    // intact, so the data block is skippable) but decode rejects it
    // in-band. An unparsable *bytes* field, by contrast, is
    // connection-fatal — covered in the codec unit tests.
    (
        b"set greet zz 0 5\r\nhello\r\n",
        b"CLIENT_ERROR bad command line format\r\n",
    ),
    // Pipelined multi-GET ordering: two bursts in one write; VALUE
    // lines must come back in request order, per burst, in sequence.
    (
        b"set a 0 0 1\r\nA\r\nset b 0 0 1\r\nB\r\nget a b\r\nget b a nope\r\n",
        b"STORED\r\nSTORED\r\nVALUE a 0 1\r\nA\r\nVALUE b 0 1\r\nB\r\nEND\r\nVALUE b 0 1\r\nB\r\nVALUE a 0 1\r\nA\r\nEND\r\n",
    ),
];

/// The RESP transcript: handshake commands, bulk-string round trips,
/// null replies for misses, DEL's integer reply, MGET ordering, and an
/// in-band error for an unknown command.
const RESP_SESSION: Session = &[
    (b"*1\r\n$4\r\nPING\r\n", b"+PONG\r\n"),
    (b"*1\r\n$7\r\nCOMMAND\r\n", b"*0\r\n"),
    (b"*3\r\n$3\r\nSET\r\n$5\r\ngreet\r\n$5\r\nhello\r\n", b"+OK\r\n"),
    (b"*2\r\n$3\r\nGET\r\n$5\r\ngreet\r\n", b"$5\r\nhello\r\n"),
    (b"*2\r\n$3\r\nGET\r\n$7\r\nmissing\r\n", b"$-1\r\n"),
    (
        b"*4\r\n$4\r\nMGET\r\n$5\r\ngreet\r\n$7\r\nmissing\r\n$5\r\ngreet\r\n",
        b"*3\r\n$5\r\nhello\r\n$-1\r\n$5\r\nhello\r\n",
    ),
    (
        b"*3\r\n$3\r\nDEL\r\n$5\r\ngreet\r\n$7\r\nmissing\r\n",
        b":1\r\n",
    ),
    (b"*1\r\n$4\r\nBLAH\r\n", b"-ERR unknown command\r\n"),
    // Inline (non-array) commands, as redis-cli sends before the
    // handshake; case-insensitive verbs.
    (b"set inline live\r\n", b"+OK\r\n"),
    (b"get inline\r\n", b"$4\r\nlive\r\n"),
    // Pipelined burst in one write: replies in request order.
    (
        b"*3\r\n$3\r\nSET\r\n$1\r\na\r\n$1\r\nA\r\n*3\r\n$3\r\nSET\r\n$1\r\nb\r\n$1\r\nB\r\n*3\r\n$4\r\nMGET\r\n$1\r\na\r\n$1\r\nb\r\n*2\r\n$3\r\nGET\r\n$1\r\na\r\n",
        b"+OK\r\n+OK\r\n*2\r\n$1\r\nA\r\n$1\r\nB\r\n$1\r\nA\r\n",
    ),
];

#[test]
fn canned_sessions_are_byte_exact_on_every_topology() {
    for (name, mode) in modes() {
        let server = multi_proto_server(mode);
        let addrs = server.addrs().to_vec();
        run_session(addrs[0], MC_SESSION, &format!("{name}/memcached"));
        run_session(addrs[1], RESP_SESSION, &format!("{name}/resp"));

        // The dido listener still speaks the native binary protocol.
        let mut dido = KvClient::connect(addrs[2]).unwrap();
        let rs = dido
            .request(&[Query::set("native", "frame"), Query::get("native")])
            .unwrap();
        assert_eq!(&rs[1].value[..], b"frame", "{name}/dido");

        // Per-protocol accounting: each front door saw its own
        // connection and requests; the scripted parse errors landed on
        // the right counters.
        let stats = server.stats();
        let mc = ProtocolKind::Memcached.index();
        let resp = ProtocolKind::Resp.index();
        assert_eq!(stats.proto_conns[mc].load(Ordering::Relaxed), 1, "{name}");
        assert_eq!(stats.proto_conns[resp].load(Ordering::Relaxed), 1, "{name}");
        assert!(stats.proto_queries[mc].load(Ordering::Relaxed) >= 10, "{name}");
        assert!(stats.proto_queries[resp].load(Ordering::Relaxed) >= 10, "{name}");
        // "bogus" + bad set line (mc); BLAH (resp).
        assert_eq!(
            stats.proto_parse_errors[mc].load(Ordering::Relaxed),
            2,
            "{name}"
        );
        assert_eq!(
            stats.proto_parse_errors[resp].load(Ordering::Relaxed),
            1,
            "{name}"
        );
        server.shutdown();
    }
}

#[test]
fn cross_protocol_listeners_share_one_store() {
    for (name, mode) in modes() {
        let server = multi_proto_server(mode);
        let addrs = server.addrs().to_vec();
        // Store through the memcached door, read through RESP and dido.
        run_session(
            addrs[0],
            &[(b"set shared 0 0 3\r\nxyz\r\n", b"STORED\r\n")],
            &format!("{name}/mc-set"),
        );
        run_session(
            addrs[1],
            &[(b"*2\r\n$3\r\nGET\r\n$6\r\nshared\r\n", b"$3\r\nxyz\r\n")],
            &format!("{name}/resp-get"),
        );
        let mut dido = KvClient::connect(addrs[2]).unwrap();
        let rs = dido.request(&[Query::get("shared")]).unwrap();
        assert_eq!(&rs[0].value[..], b"xyz", "{name}/dido-get");
        server.shutdown();
    }
}

#[test]
fn ttl_sessions_expire_per_protocol_semantics() {
    // Memcached exptime (relative, absolute-unix, and already-passed)
    // and RESP `SET ... EX` against a mock clock the server's codecs
    // share — expiry is observed in-band by plain GETs, never by
    // sleeping. The clock starts above memcached's 30-day threshold so
    // absolute exptimes are representable.
    const START: u32 = 3_000_000;
    for (name, mode) in modes() {
        let clock = Arc::new(MockClock::at(START));
        let shared: SharedClock = clock.clone();
        let server = KvServer::start_multi_with_clock(
            &[
                ("127.0.0.1:0", ProtocolKind::Memcached),
                ("127.0.0.1:0", ProtocolKind::Resp),
            ],
            mode,
            shared.clone(),
            ttl_store_handler(shared),
        )
        .expect("bind ttl listeners");
        let addrs = server.addrs().to_vec();

        run_session(
            addrs[0],
            &[
                // exptime 10 ≤ 30 days: relative seconds from now.
                (b"set rel 0 10 3\r\nrrr\r\n", b"STORED\r\n"),
                // exptime > 30 days: absolute unix time (now + 40).
                (b"set abs 0 3000040 3\r\naaa\r\n", b"STORED\r\n"),
                // Absolute exptime already in the past: stored but
                // immediately expired, per memcached semantics.
                (b"set old 0 2600000 3\r\nooo\r\n", b"STORED\r\n"),
                // exptime 0: never expires.
                (b"set ever 0 0 3\r\neee\r\n", b"STORED\r\n"),
                (
                    b"get rel abs old ever\r\n",
                    b"VALUE rel 0 3\r\nrrr\r\nVALUE abs 0 3\r\naaa\r\nVALUE ever 0 3\r\neee\r\nEND\r\n",
                ),
            ],
            &format!("{name}/mc-ttl-store"),
        );
        run_session(
            addrs[1],
            &[
                (
                    b"*5\r\n$3\r\nSET\r\n$1\r\nk\r\n$3\r\nval\r\n$2\r\nEX\r\n$2\r\n20\r\n",
                    b"+OK\r\n",
                ),
                (b"*2\r\n$3\r\nGET\r\n$1\r\nk\r\n", b"$3\r\nval\r\n"),
            ],
            &format!("{name}/resp-ex-store"),
        );

        // 10 s on: `rel` hits its deadline (expiry is inclusive); the
        // absolute entry and the RESP `EX 20` key live on.
        clock.advance(10);
        run_session(
            addrs[0],
            &[(
                b"get rel abs\r\n",
                b"VALUE abs 0 3\r\naaa\r\nEND\r\n",
            )],
            &format!("{name}/mc-ttl-mid"),
        );
        run_session(
            addrs[1],
            &[(b"*2\r\n$3\r\nGET\r\n$1\r\nk\r\n", b"$3\r\nval\r\n")],
            &format!("{name}/resp-ex-mid"),
        );

        // 40 s on: everything with a deadline is gone; exptime 0 stays.
        clock.advance(30);
        run_session(
            addrs[0],
            &[(
                b"get rel abs old ever\r\n",
                b"VALUE ever 0 3\r\neee\r\nEND\r\n",
            )],
            &format!("{name}/mc-ttl-late"),
        );
        run_session(
            addrs[1],
            &[(b"*2\r\n$3\r\nGET\r\n$1\r\nk\r\n", b"$-1\r\n")],
            &format!("{name}/resp-ex-late"),
        );
        server.shutdown();
    }
}

#[test]
fn requests_split_across_writes_decode_whole() {
    // The canned sessions above write whole requests; this one drips a
    // memcached set through arbitrary write boundaries (prefix of the
    // command line, then the rest mid-data-block) with pauses longer
    // than the server's read timeout — the carved request must come out
    // identical. Exhaustive split coverage lives in the codec property
    // tests; this proves the live read loop honors the boundary.
    for (name, mode) in modes() {
        let server = multi_proto_server(mode);
        let addr = server.addrs()[0];
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        for piece in [
            &b"set dri"[..],
            &b"p 0 0 7\r\ndr"[..],
            &b"ip-it\r\nget drip\r\n"[..],
        ] {
            stream.write_all(piece).unwrap();
            stream.flush().unwrap();
            std::thread::sleep(Duration::from_millis(150));
        }
        let expect = b"STORED\r\nVALUE drip 0 7\r\ndrip-it\r\nEND\r\n";
        let mut got = vec![0u8; expect.len()];
        stream.read_exact(&mut got).expect("split-write reply");
        assert_eq!(
            String::from_utf8_lossy(&got),
            String::from_utf8_lossy(expect),
            "{name}"
        );
        server.shutdown();
    }
}
