//! Idle soak: 512 concurrent connections parked on a batched server
//! must cost zero extra threads (the whole point of the reactor pool)
//! and only bounded memory, and the data path must still serve a deep
//! pipelined pass on every connection afterwards.
//!
//! Thread counts come from `/proc/self/task`, so this file holds a
//! single test (Linux only).

#![cfg(target_os = "linux")]

use dido_model::{Query, Response};
use dido_net::{BatchConfig, KvClient, KvServer};
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

const CONNS: usize = 512;
const K: usize = 32;
/// Generous per-connection RSS ceiling: covers both the server-side
/// `ConnState`/reorder-buffer entry and the client half living in this
/// same process. A thread-per-connection design would blow past it on
/// stacks alone; buffer leaks show up here too.
const RSS_CEILING_KIB_PER_CONN: u64 = 128;

fn key_echo_handler(_lane: usize, queries: Vec<Query>) -> Vec<Response> {
    queries
        .iter()
        .map(|q| Response::hit(q.key.to_vec()))
        .collect()
}

fn thread_count() -> usize {
    std::fs::read_dir("/proc/self/task")
        .map(|d| d.count())
        .unwrap_or(0)
}

fn rss_kib() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmRSS:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(0)
}

#[test]
fn idle_soak_512_conns_flat_threads_bounded_rss_then_pipelined_pass() {
    let server =
        KvServer::start_batched("127.0.0.1:0", BatchConfig::default(), key_echo_handler).unwrap();
    let threads_before_conns = thread_count();
    let rss_before_conns = rss_kib();

    let mut clients: Vec<KvClient> = Vec::with_capacity(CONNS);
    for _ in 0..CONNS {
        clients.push(KvClient::connect(server.addr()).unwrap());
    }
    let deadline = Instant::now() + Duration::from_secs(30);
    while (server.stats().reactor_conns.load(Ordering::Relaxed) as usize) < CONNS {
        assert!(
            Instant::now() < deadline,
            "only {}/{CONNS} connections registered",
            server.stats().reactor_conns.load(Ordering::Relaxed)
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    // Soak: everything idle for two seconds.
    std::thread::sleep(Duration::from_secs(2));

    // Flat thread count: 512 open connections added no threads at all.
    let threads_after_conns = thread_count();
    assert_eq!(
        threads_after_conns, threads_before_conns,
        "connection count must not change the thread count"
    );
    let readers = server.stats().reactor_threads.load(Ordering::Relaxed);
    assert!(readers >= 1, "no reactor threads reported");

    // Bounded memory: the per-connection footprint (both halves, since
    // client and server share this process) stays under the ceiling.
    let rss_delta = rss_kib().saturating_sub(rss_before_conns);
    assert!(
        rss_delta < RSS_CEILING_KIB_PER_CONN * CONNS as u64,
        "RSS grew {rss_delta} KiB over {CONNS} conns \
         (ceiling {RSS_CEILING_KIB_PER_CONN} KiB/conn)"
    );

    // The soak must not have wedged anything: a K-deep pipelined
    // ordering pass on every connection still round-trips in order.
    for (ci, client) in clients.iter_mut().enumerate() {
        for i in 0..K {
            client
                .send(&[Query::get(format!("c{ci}-f{i:02}"))])
                .unwrap();
        }
        for i in 0..K {
            let rs = client
                .recv()
                .unwrap_or_else(|e| panic!("conn {ci} frame {i}: {e}"));
            assert_eq!(rs[0].value, format!("c{ci}-f{i:02}").into_bytes());
        }
    }
    drop(clients);
    server.shutdown();
}
