//! Integration tests for the sharded SD egress plane: pipelined
//! ordering across writer-shard counts, slow-consumer isolation on a
//! shared shard, pending-bytes backpressure, stall-deadline retirement,
//! and writable-park recovery.

use dido_model::{Query, Response};
use dido_net::{backend_matrix, BatchConfig, IoBackend, KvClient, KvServer};
use std::net::TcpStream;
use std::os::fd::AsRawFd;
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

/// A [`BatchConfig`] pinned to one I/O backend, for the matrix loops.
fn batch_cfg(backend: IoBackend) -> BatchConfig {
    BatchConfig {
        io_backend: backend.into(),
        ..BatchConfig::default()
    }
}

fn key_echo_handler(_lane: usize, queries: Vec<Query>) -> Vec<Response> {
    queries
        .iter()
        .map(|q| Response::hit(q.key.to_vec()))
        .collect()
}

/// Handler that answers every GET with a value of `n` bytes — the
/// egress amplifier the slow-consumer tests use to fill socket buffers
/// quickly from small requests.
fn fat_value_handler(n: usize) -> impl Fn(usize, Vec<Query>) -> Vec<Response> + Send + Sync {
    move |_lane, queries| {
        queries
            .iter()
            .map(|_| Response::hit(vec![b'v'; n]))
            .collect()
    }
}

fn wait_until(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// A slow consumer: connected, shrunk receive buffer, sends requests
/// but does not read responses until told to. The small `SO_RCVBUF`
/// keeps the kernel from absorbing the backlog on the client side, so
/// the server's egress queue actually fills.
fn slow_client(addr: std::net::SocketAddr) -> KvClient {
    let stream = TcpStream::connect(addr).unwrap();
    let _ = stream.set_nodelay(true);
    mio::set_recv_buffer(stream.as_raw_fd(), 16 << 10).unwrap();
    KvClient::from_stream(stream)
}

/// K pipelined frames per connection, several connections, across SD
/// writer-shard counts: every connection must get exactly one response
/// per frame, in send order, no matter how the dispatcher's runs
/// scatter over shards.
#[test]
fn pipelined_ordering_holds_across_sd_writer_counts() {
    const CONNS: usize = 8;
    const K: usize = 32;
    for backend in backend_matrix() {
        for sd_writers in [1usize, 2, 4] {
            let server = KvServer::start_batched(
                "127.0.0.1:0",
                BatchConfig {
                    sd_writers,
                    ..batch_cfg(backend)
                },
                key_echo_handler,
            )
            .unwrap();
            assert_eq!(
                server.stats().sd_writer_threads.load(Ordering::Relaxed),
                sd_writers as u64
            );
            let addr = server.addr();
            let workers: Vec<_> = (0..CONNS)
                .map(|c| {
                    std::thread::spawn(move || {
                        let mut client = KvClient::connect(addr).unwrap();
                        for i in 0..K {
                            client.send(&[Query::get(format!("c{c}-q{i:02}"))]).unwrap();
                        }
                        for i in 0..K {
                            let rs = client
                                .recv()
                                .unwrap_or_else(|e| panic!("conn {c} frame {i}: {e}"));
                            assert_eq!(
                                rs[0].value,
                                format!("c{c}-q{i:02}").into_bytes(),
                                "conn {c} got frame {i} out of order ({sd_writers} writers)"
                            );
                        }
                    })
                })
                .collect();
            for w in workers {
                w.join().unwrap();
            }
            server.shutdown();
        }
    }
}

/// Slow-consumer isolation: with a single SD shard, a connection whose
/// peer stops reading must park on WRITABLE readiness instead of
/// wedging the shard — a healthy connection on the *same* shard keeps
/// getting timely responses. Under the old blocking writer the healthy
/// requests queued behind a 30 s `wait_writable` stall.
#[test]
fn slow_reader_does_not_stall_healthy_conn_on_same_shard() {
    const SLOW_FRAMES: usize = 256;
    const VALUE: usize = 4 << 10;
    const PROBES: usize = 20;
    for backend in backend_matrix() {
        let server = KvServer::start_batched(
            "127.0.0.1:0",
            BatchConfig {
                sd_writers: 1,
                sd_hiwater_bytes: 64 << 10,
                sndbuf_bytes: Some(16 << 10),
                ..batch_cfg(backend)
            },
            fat_value_handler(VALUE),
        )
        .unwrap();

        // Baseline: healthy round-trip latency with nothing else connected.
        let mut healthy = KvClient::connect(server.addr()).unwrap();
        let mut base = Vec::with_capacity(PROBES);
        for _ in 0..PROBES {
            let t = Instant::now();
            let rs = healthy.request(&[Query::get("probe")]).unwrap();
            assert_eq!(rs[0].value.len(), VALUE);
            base.push(t.elapsed());
        }
        base.sort();
        let base_p99 = base[base.len() - 1];

        // Wedge a slow consumer: ~1 MiB of responses against a 16 KiB
        // send buffer and a 16 KiB client receive buffer. The sender thread
        // may itself block once backpressure pauses the connection's reads;
        // that is part of the scenario.
        let slow = slow_client(server.addr());
        let sender = std::thread::spawn(move || {
            let mut slow = slow;
            for i in 0..SLOW_FRAMES {
                if slow.send(&[Query::get(format!("slow-{i}"))]).is_err() {
                    break;
                }
            }
            slow
        });
        wait_until("slow connection parked on WRITABLE", || {
            server.stats().sd_writable_parks.load(Ordering::Relaxed) >= 1
        });

        // Healthy probes while the slow connection is parked on the same
        // (only) shard.
        let mut during = Vec::with_capacity(PROBES);
        for _ in 0..PROBES {
            let t = Instant::now();
            let rs = healthy.request(&[Query::get("probe")]).unwrap();
            assert_eq!(rs[0].value.len(), VALUE);
            during.push(t.elapsed());
        }
        during.sort();
        let during_p99 = during[during.len() - 1];

        // 2x the idle baseline plus an absolute floor for scheduler noise
        // on tiny baselines (CI + TSan runs are slow; the regression being
        // caught here is a multi-second head-of-line stall, not jitter).
        let bound = base_p99 * 2 + Duration::from_millis(250);
        assert!(
            during_p99 <= bound,
            "healthy p99 {during_p99:?} exceeded {bound:?} (idle baseline {base_p99:?}) \
         while a slow consumer was parked on the same shard"
        );
        assert!(
            server.stats().sd_read_pauses.load(Ordering::Relaxed) >= 1,
            "the slow consumer should have crossed the pending-bytes high water"
        );

        // Shutdown closes the wedged connection, which errors the sender
        // thread's blocked write and lets it join; its undelivered runs are
        // freed (and counted) by the shard teardown.
        drop(healthy);
        server.shutdown();
        let _ = sender.join();
    }
}

/// Backpressure cap: once a connection's pending egress bytes cross the
/// high-water mark its READ interest is paused, so pending stops
/// growing — bounded by the high water plus the batches already in
/// flight through the ring — instead of absorbing the client's whole
/// pipelined burst.
#[test]
fn backpressure_caps_pending_bytes_and_drains_in_order() {
    const FRAMES: usize = 128;
    const VALUE: usize = 4 << 10;
    const HIWATER: usize = 32 << 10;
    for backend in backend_matrix() {
        let server = KvServer::start_batched(
            "127.0.0.1:0",
            BatchConfig {
                sd_writers: 1,
                sd_hiwater_bytes: HIWATER,
                sndbuf_bytes: Some(16 << 10),
                ..batch_cfg(backend)
            },
            fat_value_handler(VALUE),
        )
        .unwrap();

        let stream = TcpStream::connect(server.addr()).unwrap();
        let _ = stream.set_nodelay(true);
        mio::set_recv_buffer(stream.as_raw_fd(), 16 << 10).unwrap();
        let mut reader = KvClient::from_stream(stream.try_clone().unwrap());
        let sender = std::thread::spawn(move || {
            let mut writer = KvClient::from_stream(stream);
            let mut sent = 0usize;
            for i in 0..FRAMES {
                // Trickle the burst in so the reactor observes the rising
                // backlog instead of swallowing it in one read.
                if writer.send(&[Query::get(format!("bp-{i:03}"))]).is_err() {
                    break;
                }
                sent += 1;
                if i % 4 == 0 {
                    std::thread::sleep(Duration::from_millis(2));
                }
            }
            sent
        });

        wait_until("read interest paused by backpressure", || {
            server.stats().sd_read_pauses.load(Ordering::Relaxed) >= 1
        });
        let hiwater_seen = server
            .stats()
            .sd_pending_bytes_hiwater
            .load(Ordering::Relaxed);
        assert!(
            hiwater_seen >= HIWATER as u64,
            "pause implies the high water was crossed, saw {hiwater_seen}"
        );
        assert!(
            hiwater_seen <= (8 * HIWATER) as u64,
            "pending bytes must be capped near the high water, saw {hiwater_seen} \
         against a {HIWATER} B mark"
        );

        // Drain everything: reads resume below the low water and every
        // frame sent must come back, in order. Draining also unblocks the
        // sender, so it finishes the burst; read until both have happened.
        let mut got = 0usize;
        while got < FRAMES {
            let rs = reader.recv().unwrap_or_else(|e| panic!("frame {got}: {e}"));
            assert_eq!(rs[0].value.len(), VALUE, "frame {got}");
            got += 1;
        }
        let sent = sender.join().unwrap();
        assert_eq!(sent, FRAMES, "the drain should unblock the whole burst");
        assert_eq!(got, sent, "every accepted frame must be answered");
        server.shutdown();
    }
}

/// Stall retirement: a connection parked on WRITABLE with no progress
/// past `sd_stall_timeout` is retired — alone. The shard keeps serving
/// its healthy connections, where the old plane's 30 s blocking stall
/// wedged every connection behind the slow one.
#[test]
fn stall_deadline_retires_only_the_wedged_conn() {
    const VALUE: usize = 32 << 10;
    for backend in backend_matrix() {
        let server = KvServer::start_batched(
            "127.0.0.1:0",
            BatchConfig {
                sd_writers: 1,
                sd_stall_timeout: Duration::from_millis(300),
                sndbuf_bytes: Some(16 << 10),
                ..batch_cfg(backend)
            },
            fat_value_handler(VALUE),
        )
        .unwrap();

        let mut healthy = KvClient::connect(server.addr()).unwrap();
        let rs = healthy.request(&[Query::get("warm")]).unwrap();
        assert_eq!(rs[0].value.len(), VALUE);

        // ~512 KiB of responses into a dead-still consumer: fills both
        // socket buffers, parks, makes no progress, and must be retired
        // once the 300 ms deadline lapses.
        let mut slow = slow_client(server.addr());
        for i in 0..16 {
            slow.send(&[Query::get(format!("wedge-{i}"))]).unwrap();
        }
        wait_until("stalled connection retired", || {
            server.stats().sd_stall_retired.load(Ordering::Relaxed) >= 1
        });
        wait_until("retired connection leaves the SD gauge", || {
            server.stats().sd_open_conns.load(Ordering::Relaxed) == 1
        });

        // The healthy connection never noticed.
        let rs = healthy.request(&[Query::get("still-alive")]).unwrap();
        assert_eq!(rs[0].value.len(), VALUE);

        // The retired peer was really closed, not just forgotten: its
        // stream hits EOF/reset once the parked bytes are consumed.
        let dead = (0..64).any(|_| slow.recv().is_err());
        assert!(dead, "retired connection should read through to an error");
        server.shutdown();
    }
}

/// Writable-park recovery: a consumer that merely pauses — long enough
/// to park the connection, shorter than the stall deadline — must lose
/// nothing. Every response arrives, in order, once it resumes reading.
#[test]
fn writable_park_recovers_when_the_client_resumes() {
    const FRAMES: usize = 64;
    const VALUE: usize = 4 << 10;
    for backend in backend_matrix() {
        let server = KvServer::start_batched(
            "127.0.0.1:0",
            BatchConfig {
                sd_writers: 1,
                sndbuf_bytes: Some(16 << 10),
                ..batch_cfg(backend)
            },
            fat_value_handler(VALUE),
        )
        .unwrap();

        let mut client = slow_client(server.addr());
        for i in 0..FRAMES {
            client.send(&[Query::get(format!("nap-{i:02}"))]).unwrap();
        }
        wait_until("connection parked on WRITABLE", || {
            server.stats().sd_writable_parks.load(Ordering::Relaxed) >= 1
        });
        // Napping (well under the 5 s default stall deadline), then
        // draining: the parked run must resume exactly where it stopped.
        std::thread::sleep(Duration::from_millis(300));
        for i in 0..FRAMES {
            let rs = client.recv().unwrap_or_else(|e| panic!("frame {i}: {e}"));
            assert_eq!(rs[0].value.len(), VALUE, "frame {i}");
        }
        let rs = client.request(&[Query::get("after")]).unwrap();
        assert_eq!(rs[0].value.len(), VALUE);
        assert_eq!(server.stats().sd_stall_retired.load(Ordering::Relaxed), 0);
        server.shutdown();
    }
}
