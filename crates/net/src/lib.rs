//! Network substrate for DIDO: the binary query protocol and a
//! simulated NIC.
//!
//! The paper's `RV` (receive) and `SD` (send) tasks operate on frames
//! from the RX/TX rings of a 10 GbE NIC; `PP` parses queries out of
//! those frames. This crate provides the functional pieces:
//! [`FrameRing`]/[`Nic`] for the rings, [`FrameBuilder`]/[`parse_frame`]
//! for encoding and zero-copy decoding, and the response-side
//! equivalents. The per-frame/per-query *time* costs of RV/PP/SD are
//! charged by the pipeline's timing layer (the paper estimates them from
//! microbenchmarked unit costs, §IV-B).
//!
//! [`KvServer`] is the real TCP front-end. It serves either one thread
//! per connection (the seed data path) or — with
//! [`DispatchMode::Batched`] — the paper's RV-ring/dispatcher/SD-writer
//! topology, where frames from every connection aggregate through one
//! shared [`FrameRing`] into cross-connection wavefront batches (see
//! `DESIGN.md` §10).
//!
//! ```
//! use dido_net::{FrameBuilder, parse_frame};
//! use dido_model::Query;
//!
//! let mut b = FrameBuilder::new();
//! b.push(&Query::set("k", "v"));
//! let frame = b.finish();
//! assert_eq!(parse_frame(&frame).unwrap()[0], Query::set("k", "v"));
//! ```

#![warn(missing_docs)]

mod codec;
mod nic;
mod protocol;
mod reactor;
mod sd;
mod server;
mod trace;

pub use codec::{
    carve_one, decode_request, encode_overflow_into, encode_reply_into, request_query_estimate,
    Carve, ProtocolKind, RequestMeta, MAX_LINE_BYTES, MAX_MC_KEY, MAX_RESP_ARRAY, PROTOCOL_KINDS,
};
pub use nic::{FrameRing, Nic};
pub use protocol::{
    encode_queries_wire_into, encode_responses, encode_responses_wire_into, frame_query_count,
    pack_frames, parse_frame, parse_frame_into, parse_responses, FrameBuilder, ProtocolError,
    DEFAULT_FRAME_CAPACITY, FRAME_HEADER, RECORD_HEADER,
};
pub use sd::{write_queue, BufRing};
pub use server::{
    backend_matrix, uring_available, BatchConfig, DispatchMode, IoBackend, IoBackendChoice,
    KvClient, KvServer, NetStatsSnapshot, ServerStats, BATCH_HIST_BUCKETS, MAX_FRAME_BYTES,
};
pub use trace::{read_trace, write_trace, TraceError, TraceWriter};
