//! The protocol front door: one codec seam with three implementations.
//!
//! Every connection speaks exactly one [`ProtocolKind`], stamped at
//! accept time from its listener. The batched data path touches the
//! protocol at exactly three points, and this module owns all three:
//!
//! * **carve** ([`carve_one`]) — find the byte range of *one client
//!   request* in a streaming buffer. Runs inside `FrameReader`, so the
//!   frame-boundary invariant (a partial request's bytes stay buffered
//!   across readiness events; `WouldBlock` escapes only at a request
//!   boundary) is stated once and holds for every codec on both the
//!   epoll and uring RX paths.
//! * **decode** ([`decode_request`]) — turn one carved request into
//!   zero-copy [`Query`]s plus a [`RequestMeta`] describing how its
//!   responses must be re-aggregated. One memcached `get a b c` or RESP
//!   `MGET` decodes to N queries that answer as *one* reply.
//! * **encode** ([`encode_reply_into`]) — serialize the request's
//!   response slice into a pooled `BytesMut`, appended to the
//!   connection's open SD run. The dido binary codec is just the third
//!   implementation of this seam.
//!
//! Carve/decode/encode agree on a crucial accounting rule: one carved
//! request is one sequence number and one reply run entry, regardless
//! of how many queries it fans out to (or whether its reply is zero
//! bytes, as with memcached `noreply`). The SD reorder ring therefore
//! counts *requests*, never queries, and needed no changes to host two
//! new protocols.

use crate::protocol::{encode_responses_wire_into, frame_query_count, parse_frame_into};
use crate::server::MAX_FRAME_BYTES;
use bytes::{Bytes, BytesMut};
use dido_model::{Query, Response, ResponseStatus, TTL_IMMEDIATE};

/// memcached's relative/absolute exptime boundary: values up to 30
/// days are relative seconds, larger values are absolute unix time.
pub const MC_EXPTIME_ABS_THRESHOLD: u32 = 30 * 24 * 60 * 60;

/// Convert a memcached `exptime` into the engine's relative-seconds
/// TTL, per the original protocol: `0` never expires; values up to
/// [`MC_EXPTIME_ABS_THRESHOLD`] are relative seconds; anything larger
/// is an absolute unix timestamp evaluated against `now` (a timestamp
/// already in the past stores the object pre-expired, which memcached
/// also accepts).
#[must_use]
pub fn mc_exptime_to_ttl(exptime: u32, now: u32) -> u32 {
    if exptime <= MC_EXPTIME_ABS_THRESHOLD {
        exptime
    } else if exptime > now {
        exptime - now
    } else {
        TTL_IMMEDIATE
    }
}

/// Longest accepted protocol text line (memcached command lines, RESP
/// inline commands and array/bulk headers). Anything longer without a
/// terminator is a protocol violation, not a slow client.
pub const MAX_LINE_BYTES: usize = 8 << 10;

/// Longest accepted memcached key (the protocol's own limit).
pub const MAX_MC_KEY: usize = 250;

/// Most elements accepted in one RESP request array.
pub const MAX_RESP_ARRAY: usize = 1024;

/// Number of [`ProtocolKind`] variants (sizes per-protocol stats
/// arrays).
pub const PROTOCOL_KINDS: usize = 3;

/// Wire protocol spoken by a listener and every connection it accepts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum ProtocolKind {
    /// The bespoke binary protocol: 4-byte LE length prefix, then
    /// `count:u16` + query records (see [`crate::parse_frame`]).
    #[default]
    Dido,
    /// memcached text protocol: `get`/`gets` multi-key, `set`/`delete`
    /// with `noreply`.
    Memcached,
    /// RESP2 (redis): inline and array commands, `GET`/`SET`/`DEL`/
    /// `MGET`/`PING`.
    Resp,
}

impl ProtocolKind {
    /// Stable index into per-protocol stats arrays.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            ProtocolKind::Dido => 0,
            ProtocolKind::Memcached => 1,
            ProtocolKind::Resp => 2,
        }
    }

    /// CLI / display name.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            ProtocolKind::Dido => "dido",
            ProtocolKind::Memcached => "memcached",
            ProtocolKind::Resp => "resp",
        }
    }

    /// Parse a CLI name (`dido`, `memcached`, `resp`; `redis` is an
    /// alias for `resp`).
    #[must_use]
    pub fn from_name(name: &str) -> Option<ProtocolKind> {
        match name {
            "dido" => Some(ProtocolKind::Dido),
            "memcached" | "mc" => Some(ProtocolKind::Memcached),
            "resp" | "redis" => Some(ProtocolKind::Resp),
            _ => None,
        }
    }

    /// All variants, in [`ProtocolKind::index`] order.
    #[must_use]
    pub fn all() -> [ProtocolKind; PROTOCOL_KINDS] {
        [
            ProtocolKind::Dido,
            ProtocolKind::Memcached,
            ProtocolKind::Resp,
        ]
    }
}

impl std::fmt::Display for ProtocolKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Outcome of [`carve_one`] over a streaming buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Carve {
    /// No complete request buffered yet; keep the bytes and read more.
    Partial,
    /// One complete request occupies `buf[..total]`; its payload (what
    /// [`decode_request`] consumes) is `buf[skip..total]`. `skip`
    /// strips pure transport framing — the dido length prefix — and is
    /// zero for the text protocols, whose command line *is* payload.
    Request {
        /// Bytes the request occupies, including transport framing.
        total: usize,
        /// Leading framing bytes excluded from the decode payload.
        skip: usize,
    },
}

fn proto_err(msg: &'static str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg)
}

/// Locate one complete request at the start of `buf`.
///
/// Errors are *connection-fatal*: the stream can no longer be resynced
/// (an unparsable length field, a line overrunning [`MAX_LINE_BYTES`],
/// an oversized payload) and the caller retires the connection.
/// Recoverable garbage — an unknown command on an intact line — carves
/// fine and becomes an in-band error reply at decode time.
pub fn carve_one(kind: ProtocolKind, buf: &[u8]) -> std::io::Result<Carve> {
    if buf.is_empty() {
        return Ok(Carve::Partial);
    }
    match kind {
        ProtocolKind::Dido => carve_dido(buf),
        ProtocolKind::Memcached => carve_memcached(buf),
        ProtocolKind::Resp => carve_resp(buf),
    }
}

fn carve_dido(buf: &[u8]) -> std::io::Result<Carve> {
    if buf.len() < 4 {
        return Ok(Carve::Partial);
    }
    let len = u32::from_le_bytes(buf[..4].try_into().expect("4-byte prefix")) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(proto_err("frame too large"));
    }
    if buf.len() < 4 + len {
        return Ok(Carve::Partial);
    }
    Ok(Carve::Request {
        total: 4 + len,
        skip: 4,
    })
}

/// Find the first LF within the line budget. `Ok(None)` = keep reading.
fn find_line(buf: &[u8]) -> std::io::Result<Option<usize>> {
    match buf.iter().take(MAX_LINE_BYTES).position(|&b| b == b'\n') {
        Some(lf) => Ok(Some(lf)),
        None if buf.len() >= MAX_LINE_BYTES => Err(proto_err("protocol line too long")),
        None => Ok(None),
    }
}

fn carve_memcached(buf: &[u8]) -> std::io::Result<Carve> {
    let Some(lf) = find_line(buf)? else {
        return Ok(Carve::Partial);
    };
    let line_total = lf + 1;
    let line = trim_line(&buf[..line_total]);
    let mut tokens = line.split(|&b| b == b' ').filter(|t| !t.is_empty());
    if tokens.next() == Some(&b"set"[..]) {
        // A storage command is followed by a data block whose length
        // only the `bytes` field reveals; if that field is unparsable
        // there is no way back to a request boundary.
        let bytes_field = tokens
            .nth(3)
            .ok_or_else(|| proto_err("set line missing bytes"))?;
        let n = parse_ascii_usize(bytes_field)
            .ok_or_else(|| proto_err("set bytes not a number"))?;
        if n > MAX_FRAME_BYTES {
            return Err(proto_err("set data too large"));
        }
        let total = line_total + n + 2; // data block + its CRLF
        if buf.len() < total {
            return Ok(Carve::Partial);
        }
        return Ok(Carve::Request { total, skip: 0 });
    }
    Ok(Carve::Request {
        total: line_total,
        skip: 0,
    })
}

fn carve_resp(buf: &[u8]) -> std::io::Result<Carve> {
    if buf[0] != b'*' {
        // Inline command: one line.
        let Some(lf) = find_line(buf)? else {
            return Ok(Carve::Partial);
        };
        return Ok(Carve::Request {
            total: lf + 1,
            skip: 0,
        });
    }
    // Array of bulk strings: *N\r\n ($len\r\n<data>\r\n){N}.
    let Some((n, mut pos)) = resp_header(buf, 0, b'*')? else {
        return Ok(Carve::Partial);
    };
    if n > MAX_RESP_ARRAY {
        return Err(proto_err("RESP array too long"));
    }
    for _ in 0..n {
        if pos >= buf.len() {
            return Ok(Carve::Partial);
        }
        if buf[pos] != b'$' {
            return Err(proto_err("RESP array element not a bulk string"));
        }
        let Some((len, data)) = resp_header(buf, pos, b'$')? else {
            return Ok(Carve::Partial);
        };
        if len > MAX_FRAME_BYTES {
            return Err(proto_err("RESP bulk string too large"));
        }
        pos = data + len + 2; // data + CRLF
        if pos > buf.len() {
            return Ok(Carve::Partial);
        }
    }
    Ok(Carve::Request {
        total: pos,
        skip: 0,
    })
}

/// Parse a `<marker><decimal>\r\n` header starting at `pos`. Returns
/// the value and the offset just past the header's LF, or `None` when
/// the header's line is still incomplete.
fn resp_header(buf: &[u8], pos: usize, marker: u8) -> std::io::Result<Option<(usize, usize)>> {
    debug_assert_eq!(buf[pos], marker);
    let Some(lf) = find_line(&buf[pos..])? else {
        return Ok(None);
    };
    let line = &buf[pos + 1..pos + lf];
    let digits = line.strip_suffix(b"\r").unwrap_or(line);
    let n = parse_ascii_usize(digits).ok_or_else(|| proto_err("RESP header not a number"))?;
    Ok(Some((n, pos + lf + 1)))
}

fn parse_ascii_usize(digits: &[u8]) -> Option<usize> {
    if digits.is_empty() || digits.len() > 10 {
        return None;
    }
    let mut n = 0usize;
    for &d in digits {
        if !d.is_ascii_digit() {
            return None;
        }
        n = n * 10 + (d - b'0') as usize;
    }
    Some(n)
}

/// Strip the trailing `\r\n` (or bare `\n`) from a carved line.
fn trim_line(line: &[u8]) -> &[u8] {
    let line = line.strip_suffix(b"\n").unwrap_or(line);
    line.strip_suffix(b"\r").unwrap_or(line)
}

/// Everything [`encode_reply_into`] needs to turn a request's response
/// slice back into one wire reply: the command shape, the keys a
/// memcached `VALUE` line must echo, and whether the client asked for
/// no reply at all.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestMeta {
    /// A dido binary frame (N queries → one response frame).
    Dido,
    /// A dido frame that failed to decode; answered with an empty
    /// response frame so pipelined clients stay in sync.
    DidoBad,
    /// memcached `get`/`gets`: echo each hit as a `VALUE` line, then
    /// `END`.
    McGet {
        /// The requested keys, in request order (zero-copy slices of
        /// the request payload).
        keys: Vec<Bytes>,
        /// `gets` — append a CAS column to each `VALUE` line.
        with_cas: bool,
    },
    /// memcached `set`.
    McStore {
        /// Client asked for no reply; encode zero bytes (the reply run
        /// still advances the sequence).
        noreply: bool,
    },
    /// memcached `delete`.
    McDelete {
        /// Client asked for no reply.
        noreply: bool,
    },
    /// Unusable memcached request (unknown command, bad formatting);
    /// decodes to zero queries and answers with `msg` verbatim.
    McError(&'static str),
    /// RESP `GET`.
    RespGet,
    /// RESP `SET`.
    RespSet,
    /// RESP `DEL` (N keys → one integer reply).
    RespDel,
    /// RESP `MGET` (N keys → one array reply).
    RespMGet,
    /// RESP `PING` → `+PONG`.
    RespPing,
    /// RESP `COMMAND` (redis-cli handshake) → empty array.
    RespCommand,
    /// Empty RESP inline line; ignored without a reply, as redis does.
    RespNoop,
    /// Unusable RESP request; decodes to zero queries and answers with
    /// `msg` verbatim.
    RespError(&'static str),
}

impl RequestMeta {
    /// Whether this request failed protocol parsing (feeds the
    /// `proto_parse_errors` counter).
    #[must_use]
    pub fn is_parse_error(&self) -> bool {
        matches!(
            self,
            RequestMeta::DidoBad | RequestMeta::McError(_) | RequestMeta::RespError(_)
        )
    }
}

/// Decode one carved request payload, appending its zero-copy queries
/// to `out`. Returns the metadata [`encode_reply_into`] needs; the
/// number of queries appended is the caller's `out.len()` delta (the
/// dispatcher tracks it per slot). Never fails: unusable requests
/// decode to zero queries and an error-reply meta.
///
/// `now` (unix seconds) anchors memcached's absolute-exptime
/// conversion (see [`mc_exptime_to_ttl`]); the dido and RESP codecs
/// carry relative TTLs and ignore it.
pub fn decode_request(
    kind: ProtocolKind,
    payload: &Bytes,
    now: u32,
    out: &mut Vec<Query>,
) -> RequestMeta {
    match kind {
        ProtocolKind::Dido => match parse_frame_into(payload, out) {
            Ok(_) => RequestMeta::Dido,
            Err(_) => RequestMeta::DidoBad,
        },
        ProtocolKind::Memcached => decode_memcached(payload, now, out),
        ProtocolKind::Resp => decode_resp(payload, out),
    }
}

const MC_BAD_LINE: &str = "CLIENT_ERROR bad command line format\r\n";
const MC_BAD_DATA: &str = "CLIENT_ERROR bad data chunk\r\n";

fn decode_memcached(payload: &Bytes, now: u32, out: &mut Vec<Query>) -> RequestMeta {
    let Some(lf) = payload.iter().position(|&b| b == b'\n') else {
        return RequestMeta::McError(MC_BAD_LINE);
    };
    // The text protocol terminates lines with CRLF; a bare LF still
    // carves (so the stream stays in sync) but is rejected here.
    if lf == 0 || payload[lf - 1] != b'\r' {
        return RequestMeta::McError(MC_BAD_LINE);
    }
    let line_end = lf - 1;
    let mut tokens = TokenIter::new(payload, 0, line_end);
    let Some(cmd) = tokens.next() else {
        return RequestMeta::McError(MC_BAD_LINE);
    };
    match &cmd[..] {
        b"get" | b"gets" => {
            let with_cas = &cmd[..] == b"gets";
            let mut keys = Vec::new();
            for key in tokens {
                if key.len() > MAX_MC_KEY {
                    return RequestMeta::McError(MC_BAD_LINE);
                }
                keys.push(key);
            }
            if keys.is_empty() {
                return RequestMeta::McError(MC_BAD_LINE);
            }
            out.extend(keys.iter().map(|k| Query::get(k.clone())));
            RequestMeta::McGet { keys, with_cas }
        }
        b"set" => match decode_mc_set(tokens) {
            Ok(set) => set.finish(payload, lf, now, out),
            Err(msg) => RequestMeta::McError(msg),
        },
        b"delete" => {
            let Some(key) = tokens.next() else {
                return RequestMeta::McError(MC_BAD_LINE);
            };
            if key.len() > MAX_MC_KEY {
                return RequestMeta::McError(MC_BAD_LINE);
            }
            let noreply = match tokens.next() {
                None => false,
                Some(t) if t == b"noreply"[..] && tokens.next().is_none() => true,
                Some(_) => return RequestMeta::McError(MC_BAD_LINE),
            };
            out.push(Query::delete(key));
            RequestMeta::McDelete { noreply }
        }
        _ => RequestMeta::McError("ERROR\r\n"),
    }
}

/// A validated memcached `set` command line, pending data-block
/// extraction.
struct McSet {
    key: Bytes,
    flags: u32,
    exptime: u32,
    bytes: usize,
    noreply: bool,
}

impl McSet {
    /// Extract the data block that follows the command line and emit
    /// the SET query.
    fn finish(self, payload: &Bytes, lf: usize, now: u32, out: &mut Vec<Query>) -> RequestMeta {
        let data_start = lf + 1;
        let data_end = data_start + self.bytes;
        // Carve sized the request as line + bytes + CRLF; enforce the
        // terminator so a lying client gets an error, not a desync.
        if payload.len() < data_end + 2 || payload[data_end..data_end + 2] != *b"\r\n" {
            return RequestMeta::McError(MC_BAD_DATA);
        }
        let value = payload.slice(data_start..data_end);
        let ttl = mc_exptime_to_ttl(self.exptime, now);
        out.push(Query::set_with(self.key, value, ttl, self.flags));
        RequestMeta::McStore {
            noreply: self.noreply,
        }
    }
}

/// Validate the `set <key> <flags> <exptime> <bytes> [noreply]` tokens
/// (the command token already consumed).
fn decode_mc_set(mut tokens: TokenIter<'_>) -> Result<McSet, &'static str> {
    let key = tokens.next().ok_or(MC_BAD_LINE)?;
    if key.len() > MAX_MC_KEY {
        return Err(MC_BAD_LINE);
    }
    let flags = parse_u32(&tokens.next().ok_or(MC_BAD_LINE)?).ok_or(MC_BAD_LINE)?;
    let exptime = parse_u32(&tokens.next().ok_or(MC_BAD_LINE)?).ok_or(MC_BAD_LINE)?;
    let bytes = parse_ascii_usize(&tokens.next().ok_or(MC_BAD_LINE)?).ok_or(MC_BAD_LINE)?;
    let noreply = match tokens.next() {
        None => false,
        Some(t) if t == b"noreply"[..] && tokens.next().is_none() => true,
        Some(_) => return Err(MC_BAD_LINE),
    };
    Ok(McSet {
        key,
        flags,
        exptime,
        bytes,
        noreply,
    })
}

fn parse_u32(digits: &Bytes) -> Option<u32> {
    parse_ascii_usize(digits)
        .filter(|&n| n <= u32::MAX as usize)
        .map(|n| n as u32)
}

/// Zero-copy space-separated token iterator over `payload[start..end]`.
struct TokenIter<'a> {
    payload: &'a Bytes,
    pos: usize,
    end: usize,
}

impl<'a> TokenIter<'a> {
    fn new(payload: &'a Bytes, start: usize, end: usize) -> TokenIter<'a> {
        TokenIter {
            payload,
            pos: start,
            end,
        }
    }
}

impl Iterator for TokenIter<'_> {
    type Item = Bytes;

    fn next(&mut self) -> Option<Bytes> {
        while self.pos < self.end && self.payload[self.pos] == b' ' {
            self.pos += 1;
        }
        if self.pos >= self.end {
            return None;
        }
        let start = self.pos;
        while self.pos < self.end && self.payload[self.pos] != b' ' {
            self.pos += 1;
        }
        Some(self.payload.slice(start..self.pos))
    }
}

const RESP_ERR_ARGS: &str = "-ERR wrong number of arguments\r\n";
const RESP_ERR_PROTO: &str = "-ERR Protocol error\r\n";

fn decode_resp(payload: &Bytes, out: &mut Vec<Query>) -> RequestMeta {
    let args = match resp_args(payload) {
        Ok(args) => args,
        Err(msg) => return RequestMeta::RespError(msg),
    };
    let Some(cmd) = args.first() else {
        return RequestMeta::RespNoop;
    };
    let mut upper = [0u8; 8];
    let cmd_upper: &[u8] = if cmd.len() <= upper.len() {
        for (dst, &src) in upper.iter_mut().zip(cmd.iter()) {
            *dst = src.to_ascii_uppercase();
        }
        &upper[..cmd.len()]
    } else {
        b""
    };
    match cmd_upper {
        b"GET" if args.len() == 2 => {
            out.push(Query::get(args[1].clone()));
            RequestMeta::RespGet
        }
        b"GET" => RequestMeta::RespError(RESP_ERR_ARGS),
        b"SET" => {
            let (ttl, ok) = match args.len() {
                3 => (0, true),
                5 if args[3].eq_ignore_ascii_case(b"EX") => {
                    match parse_u32(&args[4]) {
                        Some(t) => (t, true),
                        None => (0, false),
                    }
                }
                _ => (0, false),
            };
            if !ok {
                return RequestMeta::RespError("-ERR syntax error\r\n");
            }
            out.push(Query::set_with(args[1].clone(), args[2].clone(), ttl, 0));
            RequestMeta::RespSet
        }
        b"DEL" if args.len() >= 2 => {
            for key in &args[1..] {
                out.push(Query::delete(key.clone()));
            }
            RequestMeta::RespDel
        }
        b"MGET" if args.len() >= 2 => {
            for key in &args[1..] {
                out.push(Query::get(key.clone()));
            }
            RequestMeta::RespMGet
        }
        b"PING" => RequestMeta::RespPing,
        b"COMMAND" => RequestMeta::RespCommand,
        b"DEL" | b"MGET" => RequestMeta::RespError(RESP_ERR_ARGS),
        _ => RequestMeta::RespError("-ERR unknown command\r\n"),
    }
}

/// Split one carved RESP request into its argument list (zero-copy).
/// Total over arbitrary payloads (not just carve outputs), so the
/// public decode API can never panic on hostile bytes.
fn resp_args(payload: &Bytes) -> Result<Vec<Bytes>, &'static str> {
    if payload.is_empty() {
        return Ok(Vec::new());
    }
    if payload[0] != b'*' {
        // Inline command: whitespace-separated tokens on one line.
        let lf = payload
            .iter()
            .position(|&b| b == b'\n')
            .unwrap_or(payload.len());
        let end = if lf > 0 && payload[lf - 1] == b'\r' {
            lf - 1
        } else {
            lf
        };
        return Ok(TokenIter::new(payload, 0, end).collect());
    }
    let (n, mut pos) = resp_header_decoded(payload, 0)?;
    if n > MAX_RESP_ARRAY {
        return Err(RESP_ERR_PROTO);
    }
    let mut args = Vec::with_capacity(n);
    for _ in 0..n {
        if payload.get(pos) != Some(&b'$') {
            return Err(RESP_ERR_PROTO);
        }
        let (len, data) = resp_header_decoded(payload, pos)?;
        let end = data.checked_add(len).ok_or(RESP_ERR_PROTO)?;
        if payload.len() < end + 2 || payload[end..end + 2] != *b"\r\n" {
            return Err(RESP_ERR_PROTO);
        }
        args.push(payload.slice(data..end));
        pos = end + 2;
    }
    Ok(args)
}

/// Re-parse a `<marker><decimal>\r\n` header at `pos`; CRLF (not bare
/// LF) is enforced here even though the carve validated the structure.
fn resp_header_decoded(payload: &Bytes, pos: usize) -> Result<(usize, usize), &'static str> {
    let lf = payload[pos..]
        .iter()
        .position(|&b| b == b'\n')
        .ok_or(RESP_ERR_PROTO)?;
    if lf < 2 || payload[pos + lf - 1] != b'\r' {
        return Err(RESP_ERR_PROTO);
    }
    let digits = payload.slice(pos + 1..pos + lf - 1);
    let n = parse_ascii_usize(&digits).ok_or(RESP_ERR_PROTO)?;
    Ok((n, pos + lf + 1))
}

/// Cheap pre-decode estimate of how many queries a carved request will
/// produce (pre-sizes the dispatcher's shared query vector). Exact for
/// dido (the frame's own count header); 1 for the text protocols.
#[must_use]
pub fn request_query_estimate(kind: ProtocolKind, payload: &Bytes) -> usize {
    match kind {
        ProtocolKind::Dido => frame_query_count(payload),
        ProtocolKind::Memcached | ProtocolKind::Resp => 1,
    }
}

/// Serialize one request's responses into `buf`, appended to the
/// connection's open reply run. `rs` is exactly the response slice the
/// request's queries produced (possibly empty for error metas).
pub fn encode_reply_into(buf: &mut BytesMut, meta: &RequestMeta, rs: &[Response]) {
    match meta {
        RequestMeta::Dido | RequestMeta::DidoBad => encode_responses_wire_into(buf, rs),
        RequestMeta::McGet { keys, with_cas } => {
            for (key, r) in keys.iter().zip(rs) {
                if r.status == ResponseStatus::Ok {
                    buf.extend_from_slice(b"VALUE ");
                    buf.extend_from_slice(key);
                    // Client flags are stored with the object but not
                    // yet read back on GET; echoed as 0 (CAS likewise).
                    if *with_cas {
                        buf.extend_from_slice(format!(" 0 {} 0\r\n", r.value.len()).as_bytes());
                    } else {
                        buf.extend_from_slice(format!(" 0 {}\r\n", r.value.len()).as_bytes());
                    }
                    buf.extend_from_slice(&r.value);
                    buf.extend_from_slice(b"\r\n");
                }
            }
            buf.extend_from_slice(b"END\r\n");
        }
        RequestMeta::McStore { noreply } => {
            if !noreply {
                buf.extend_from_slice(match rs.first().map(|r| r.status) {
                    Some(ResponseStatus::Ok) => b"STORED\r\n" as &[u8],
                    _ => b"SERVER_ERROR object too large for cache\r\n",
                });
            }
        }
        RequestMeta::McDelete { noreply } => {
            if !noreply {
                buf.extend_from_slice(match rs.first().map(|r| r.status) {
                    Some(ResponseStatus::Ok) => b"DELETED\r\n" as &[u8],
                    Some(ResponseStatus::NotFound) => b"NOT_FOUND\r\n",
                    _ => b"SERVER_ERROR delete failed\r\n",
                });
            }
        }
        RequestMeta::McError(msg) | RequestMeta::RespError(msg) => {
            buf.extend_from_slice(msg.as_bytes());
        }
        RequestMeta::RespGet => match rs.first() {
            Some(r) if r.status == ResponseStatus::Ok => put_resp_bulk(buf, &r.value),
            Some(r) if r.status == ResponseStatus::NotFound => {
                buf.extend_from_slice(b"$-1\r\n");
            }
            _ => buf.extend_from_slice(b"-ERR internal error\r\n"),
        },
        RequestMeta::RespSet => {
            buf.extend_from_slice(match rs.first().map(|r| r.status) {
                Some(ResponseStatus::Ok) => b"+OK\r\n" as &[u8],
                _ => b"-ERR out of memory\r\n",
            });
        }
        RequestMeta::RespDel => {
            let removed = rs.iter().filter(|r| r.status == ResponseStatus::Ok).count();
            buf.extend_from_slice(format!(":{removed}\r\n").as_bytes());
        }
        RequestMeta::RespMGet => {
            buf.extend_from_slice(format!("*{}\r\n", rs.len()).as_bytes());
            for r in rs {
                if r.status == ResponseStatus::Ok {
                    put_resp_bulk(buf, &r.value);
                } else {
                    buf.extend_from_slice(b"$-1\r\n");
                }
            }
        }
        RequestMeta::RespPing => buf.extend_from_slice(b"+PONG\r\n"),
        RequestMeta::RespCommand => buf.extend_from_slice(b"*0\r\n"),
        RequestMeta::RespNoop => {}
    }
}

fn put_resp_bulk(buf: &mut BytesMut, value: &[u8]) {
    buf.extend_from_slice(format!("${}\r\n", value.len()).as_bytes());
    buf.extend_from_slice(value);
    buf.extend_from_slice(b"\r\n");
}

/// Serialize the "server overloaded, request dropped" reply a reactor
/// sends when the frame ring rejects a burst (the SD plane's
/// `overflow_answers`). Dido answers with an empty response frame (its
/// clients treat that as a drop); the text protocols answer in-band —
/// except a memcached `noreply` request, which must stay silent.
pub fn encode_overflow_into(buf: &mut BytesMut, kind: ProtocolKind, payload: &Bytes) {
    match kind {
        ProtocolKind::Dido => encode_responses_wire_into(buf, &[]),
        ProtocolKind::Memcached => {
            let line_end = payload
                .iter()
                .position(|&b| b == b'\n')
                .unwrap_or(payload.len());
            let line = trim_line(&payload[..line_end.min(payload.len())]);
            let noreply = line.ends_with(b" noreply");
            if !noreply {
                buf.extend_from_slice(b"SERVER_ERROR busy\r\n");
            }
        }
        ProtocolKind::Resp => buf.extend_from_slice(b"-ERR server busy\r\n"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dido_model::QueryOp;

    fn carve_all(kind: ProtocolKind, mut buf: &[u8]) -> Vec<(Vec<u8>, usize)> {
        let mut out = Vec::new();
        while let Carve::Request { total, skip } = carve_one(kind, buf).unwrap() {
            out.push((buf[skip..total].to_vec(), total));
            buf = &buf[total..];
            if buf.is_empty() {
                break;
            }
        }
        out
    }

    #[test]
    fn dido_carve_matches_prefix() {
        let mut wire = BytesMut::new();
        crate::protocol::encode_queries_wire_into(&mut wire, &[Query::set("k", "v")]);
        let wire = wire.freeze();
        assert_eq!(carve_one(ProtocolKind::Dido, &wire[..3]).unwrap(), Carve::Partial);
        let Carve::Request { total, skip } = carve_one(ProtocolKind::Dido, &wire).unwrap() else {
            panic!("complete frame must carve");
        };
        assert_eq!((total, skip), (wire.len(), 4));
    }

    #[test]
    fn dido_oversized_prefix_is_fatal() {
        let bad = ((MAX_FRAME_BYTES + 1) as u32).to_le_bytes();
        assert!(carve_one(ProtocolKind::Dido, &bad).is_err());
    }

    #[test]
    fn memcached_carves_lines_and_set_data() {
        let wire = b"get alpha beta\r\nset k 7 30 5\r\nhello\r\ndelete k noreply\r\n";
        let reqs = carve_all(ProtocolKind::Memcached, wire);
        assert_eq!(reqs.len(), 3);
        assert_eq!(reqs[0].0, b"get alpha beta\r\n");
        assert_eq!(reqs[1].0, b"set k 7 30 5\r\nhello\r\n");
        assert_eq!(reqs[2].0, b"delete k noreply\r\n");
    }

    #[test]
    fn memcached_partials_wait() {
        assert_eq!(
            carve_one(ProtocolKind::Memcached, b"get al").unwrap(),
            Carve::Partial
        );
        // Set line complete but data block still in flight.
        assert_eq!(
            carve_one(ProtocolKind::Memcached, b"set k 0 0 5\r\nhel").unwrap(),
            Carve::Partial
        );
    }

    #[test]
    fn memcached_unrecoverable_lines_are_fatal() {
        // Unparsable bytes field: the data block length is unknowable.
        assert!(carve_one(ProtocolKind::Memcached, b"set k 0 0 xyz\r\n").is_err());
        assert!(carve_one(ProtocolKind::Memcached, b"set k 0 0\r\n").is_err());
        // Oversized data and an unterminated giant line.
        assert!(carve_one(ProtocolKind::Memcached, b"set k 0 0 99999999\r\n").is_err());
        let long = vec![b'a'; MAX_LINE_BYTES + 1];
        assert!(carve_one(ProtocolKind::Memcached, &long).is_err());
    }

    #[test]
    fn memcached_decode_get_set_delete() {
        let payload = Bytes::from_static(b"get alpha beta\r\n");
        let mut out = Vec::new();
        let meta = decode_request(ProtocolKind::Memcached, &payload, 0, &mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0], Query::get("alpha"));
        assert_eq!(out[1], Query::get("beta"));
        let RequestMeta::McGet { keys, with_cas } = meta else {
            panic!("get meta");
        };
        assert!(!with_cas);
        assert_eq!(keys, vec![Bytes::from_static(b"alpha"), Bytes::from_static(b"beta")]);

        let payload = Bytes::from_static(b"set k 7 30 5\r\nhello\r\n");
        out.clear();
        let meta = decode_request(ProtocolKind::Memcached, &payload, 0, &mut out);
        assert_eq!(meta, RequestMeta::McStore { noreply: false });
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].op, QueryOp::Set);
        assert_eq!(&out[0].key[..], b"k");
        assert_eq!(&out[0].value[..], b"hello");
        assert_eq!((out[0].ttl, out[0].flags), (30, 7));

        let payload = Bytes::from_static(b"delete k noreply\r\n");
        out.clear();
        let meta = decode_request(ProtocolKind::Memcached, &payload, 0, &mut out);
        assert_eq!(meta, RequestMeta::McDelete { noreply: true });
        assert_eq!(out[0], Query::delete("k"));
    }

    #[test]
    fn memcached_decode_is_zero_copy() {
        let payload = Bytes::from_static(b"get somekey\r\n");
        let mut out = Vec::new();
        decode_request(ProtocolKind::Memcached, &payload, 0, &mut out);
        let key_ptr = out[0].key.as_ptr() as usize;
        let range = payload.as_ptr() as usize..payload.as_ptr() as usize + payload.len();
        assert!(range.contains(&key_ptr), "keys must alias the payload");
    }

    #[test]
    fn memcached_malformed_decodes_to_error_replies() {
        for bad in [
            b"get alpha beta\n" as &[u8],     // bare LF, no CR
            b"frobnicate x\r\n",              // unknown command
            b"get\r\n",                       // no keys
            b"delete\r\n",                    // no key
            b"delete k wat\r\n",              // trailing junk
        ] {
            let payload = Bytes::copy_from_slice(bad);
            let mut out = Vec::new();
            let meta = decode_request(ProtocolKind::Memcached, &payload, 0, &mut out);
            assert!(meta.is_parse_error(), "{:?} must be an error", bad);
            assert!(out.is_empty(), "{:?} must decode zero queries", bad);
            let mut reply = BytesMut::new();
            encode_reply_into(&mut reply, &meta, &[]);
            assert!(!reply.is_empty(), "error metas answer in-band");
        }
        // Bad data-chunk terminator: carve accepts (lengths are
        // consistent), decode rejects.
        let payload = Bytes::from_static(b"set k 0 0 5\r\nhelloXY");
        let mut out = Vec::new();
        let meta = decode_request(ProtocolKind::Memcached, &payload, 0, &mut out);
        assert_eq!(meta, RequestMeta::McError(MC_BAD_DATA));
        assert!(out.is_empty());
    }

    #[test]
    fn memcached_encode_values_and_end() {
        let meta = RequestMeta::McGet {
            keys: vec![Bytes::from_static(b"a"), Bytes::from_static(b"b")],
            with_cas: false,
        };
        let rs = [Response::hit("hello"), Response::not_found()];
        let mut buf = BytesMut::new();
        encode_reply_into(&mut buf, &meta, &rs);
        assert_eq!(&buf[..], b"VALUE a 0 5\r\nhello\r\nEND\r\n" as &[u8]);

        let meta = RequestMeta::McGet {
            keys: vec![Bytes::from_static(b"a")],
            with_cas: true,
        };
        let mut buf = BytesMut::new();
        encode_reply_into(&mut buf, &meta, &rs[..1]);
        assert_eq!(&buf[..], b"VALUE a 0 5 0\r\nhello\r\nEND\r\n" as &[u8]);

        let mut buf = BytesMut::new();
        encode_reply_into(&mut buf, &RequestMeta::McStore { noreply: true }, &[Response::ok()]);
        assert!(buf.is_empty(), "noreply must encode zero bytes");
        encode_reply_into(&mut buf, &RequestMeta::McStore { noreply: false }, &[Response::ok()]);
        assert_eq!(&buf[..], b"STORED\r\n" as &[u8]);
    }

    #[test]
    fn resp_carves_arrays_and_inline() {
        let wire = b"*2\r\n$3\r\nGET\r\n$1\r\nk\r\nPING\r\n*1\r\n$4\r\nPING\r\n";
        let reqs = carve_all(ProtocolKind::Resp, wire);
        assert_eq!(reqs.len(), 3);
        assert_eq!(reqs[0].0, b"*2\r\n$3\r\nGET\r\n$1\r\nk\r\n");
        assert_eq!(reqs[1].0, b"PING\r\n");
        assert_eq!(reqs[2].0, b"*1\r\n$4\r\nPING\r\n");
    }

    #[test]
    fn resp_partial_headers_wait() {
        for partial in [
            b"*" as &[u8],
            b"*2\r",
            b"*2\r\n$3\r\nGE",
            b"*2\r\n$3\r\nGET\r\n$1\r\nk",
        ] {
            assert_eq!(
                carve_one(ProtocolKind::Resp, partial).unwrap(),
                Carve::Partial,
                "{:?}",
                partial
            );
        }
    }

    #[test]
    fn resp_malformed_is_fatal_or_error_reply() {
        // Structurally unrecoverable → carve error (connection retires).
        assert!(carve_one(ProtocolKind::Resp, b"*x\r\n").is_err());
        assert!(carve_one(ProtocolKind::Resp, b"*2\r\n+OK\r\n").is_err());
        assert!(carve_one(ProtocolKind::Resp, b"*1\r\n$99999999\r\n").is_err());
        assert!(carve_one(ProtocolKind::Resp, b"*9999\r\n").is_err());
        // Recoverable → decodes to an in-band -ERR reply.
        let payload = Bytes::from_static(b"FROB x\r\n");
        let mut out = Vec::new();
        let meta = decode_request(ProtocolKind::Resp, &payload, 0, &mut out);
        assert_eq!(meta, RequestMeta::RespError("-ERR unknown command\r\n"));
        assert!(out.is_empty());
    }

    #[test]
    fn resp_decode_commands() {
        let mut out = Vec::new();
        let payload = Bytes::from_static(b"*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$2\r\nvv\r\n");
        assert_eq!(
            decode_request(ProtocolKind::Resp, &payload, 0, &mut out),
            RequestMeta::RespSet
        );
        assert_eq!(out[0], Query::set("k", "vv"));

        out.clear();
        let payload = Bytes::from_static(
            b"*5\r\n$3\r\nSET\r\n$1\r\nk\r\n$1\r\nv\r\n$2\r\nEX\r\n$2\r\n10\r\n",
        );
        assert_eq!(
            decode_request(ProtocolKind::Resp, &payload, 0, &mut out),
            RequestMeta::RespSet
        );
        assert_eq!(out[0].ttl, 10);

        out.clear();
        let payload = Bytes::from_static(b"*3\r\n$4\r\nMGET\r\n$1\r\na\r\n$1\r\nb\r\n");
        assert_eq!(
            decode_request(ProtocolKind::Resp, &payload, 0, &mut out),
            RequestMeta::RespMGet
        );
        assert_eq!(out.len(), 2);

        out.clear();
        let payload = Bytes::from_static(b"del a b c\r\n"); // inline, case-insensitive
        assert_eq!(
            decode_request(ProtocolKind::Resp, &payload, 0, &mut out),
            RequestMeta::RespDel
        );
        assert_eq!(out.len(), 3);
        assert!(out.iter().all(|q| q.op == QueryOp::Delete));

        out.clear();
        let payload = Bytes::from_static(b"\r\n");
        assert_eq!(
            decode_request(ProtocolKind::Resp, &payload, 0, &mut out),
            RequestMeta::RespNoop
        );
        assert!(out.is_empty());
    }

    #[test]
    fn resp_encode_replies() {
        let mut buf = BytesMut::new();
        encode_reply_into(&mut buf, &RequestMeta::RespGet, &[Response::hit("vv")]);
        assert_eq!(&buf[..], b"$2\r\nvv\r\n" as &[u8]);

        let mut buf = BytesMut::new();
        encode_reply_into(&mut buf, &RequestMeta::RespGet, &[Response::not_found()]);
        assert_eq!(&buf[..], b"$-1\r\n" as &[u8]);

        let mut buf = BytesMut::new();
        encode_reply_into(
            &mut buf,
            &RequestMeta::RespMGet,
            &[Response::hit("a"), Response::not_found(), Response::hit("c")],
        );
        assert_eq!(&buf[..], b"*3\r\n$1\r\na\r\n$-1\r\n$1\r\nc\r\n" as &[u8]);

        let mut buf = BytesMut::new();
        encode_reply_into(
            &mut buf,
            &RequestMeta::RespDel,
            &[Response::ok(), Response::not_found()],
        );
        assert_eq!(&buf[..], b":1\r\n" as &[u8]);

        let mut buf = BytesMut::new();
        encode_reply_into(&mut buf, &RequestMeta::RespPing, &[]);
        assert_eq!(&buf[..], b"+PONG\r\n" as &[u8]);
    }

    #[test]
    fn overflow_replies_per_protocol() {
        let mut buf = BytesMut::new();
        encode_overflow_into(&mut buf, ProtocolKind::Dido, &Bytes::new());
        // Dido: a 4-byte prefix + empty response frame.
        assert_eq!(u32::from_le_bytes(buf[..4].try_into().unwrap()), 2);

        let mut buf = BytesMut::new();
        encode_overflow_into(
            &mut buf,
            ProtocolKind::Memcached,
            &Bytes::from_static(b"get k\r\n"),
        );
        assert_eq!(&buf[..], b"SERVER_ERROR busy\r\n" as &[u8]);

        let mut buf = BytesMut::new();
        encode_overflow_into(
            &mut buf,
            ProtocolKind::Memcached,
            &Bytes::from_static(b"set k 0 0 1 noreply\r\nx\r\n"),
        );
        assert!(buf.is_empty(), "noreply requests stay silent even when dropped");

        let mut buf = BytesMut::new();
        encode_overflow_into(&mut buf, ProtocolKind::Resp, &Bytes::from_static(b"PING\r\n"));
        assert_eq!(&buf[..], b"-ERR server busy\r\n" as &[u8]);
    }

    #[test]
    fn kind_names_round_trip() {
        for kind in ProtocolKind::all() {
            assert_eq!(ProtocolKind::from_name(kind.as_str()), Some(kind));
        }
        assert_eq!(ProtocolKind::from_name("redis"), Some(ProtocolKind::Resp));
        assert_eq!(ProtocolKind::from_name("nope"), None);
        assert_eq!(ProtocolKind::default(), ProtocolKind::Dido);
    }

    #[test]
    fn estimates() {
        let mut wire = BytesMut::new();
        crate::protocol::encode_queries_wire_into(
            &mut wire,
            &[Query::get("a"), Query::get("b")],
        );
        let frame = wire.freeze().slice(4..);
        assert_eq!(request_query_estimate(ProtocolKind::Dido, &frame), 2);
        assert_eq!(
            request_query_estimate(ProtocolKind::Memcached, &Bytes::from_static(b"get a b\r\n")),
            1
        );
    }
}
