//! Query-trace record and replay.
//!
//! A trace file is a sequence of length-prefixed query frames in the
//! standard wire format — the same bytes a client would send — so a
//! captured workload can be replayed against any executor (or another
//! system entirely) bit-for-bit.

use crate::protocol::{pack_frames, parse_frame, ProtocolError};
use bytes::Bytes;
use dido_model::Query;
use std::io::{Read, Write};
use std::path::Path;

/// Trace-file magic ("DIDO" trace, version 1).
const MAGIC: &[u8; 8] = b"DIDOTRC1";

/// Errors from trace I/O.
#[derive(Debug)]
pub enum TraceError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Not a trace file / wrong version.
    BadMagic,
    /// A frame failed to decode.
    BadFrame(ProtocolError),
}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> TraceError {
        TraceError::Io(e)
    }
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace i/o error: {e}"),
            TraceError::BadMagic => write!(f, "not a DIDO trace file"),
            TraceError::BadFrame(e) => write!(f, "corrupt trace frame: {e:?}"),
        }
    }
}

impl std::error::Error for TraceError {}

/// Write `queries` as a replayable trace file.
pub fn write_trace(path: &Path, queries: &[Query]) -> Result<(), TraceError> {
    let mut out = std::io::BufWriter::new(std::fs::File::create(path)?);
    out.write_all(MAGIC)?;
    for frame in pack_frames(queries, crate::protocol::DEFAULT_FRAME_CAPACITY) {
        out.write_all(&(frame.len() as u32).to_le_bytes())?;
        out.write_all(&frame)?;
    }
    out.flush()?;
    Ok(())
}

/// Streaming trace appender: the magic goes out once at creation and
/// every [`TraceWriter::append`] packs its queries into frames and
/// writes them at the tail, so recording costs O(batch) per batch
/// instead of the old record-buffer-and-rewrite-history scheme (which
/// held every query ever seen in memory and rewrote the whole file on a
/// cadence — O(n²) I/O over a server's lifetime). Files are readable by
/// [`read_trace`] at any point after a [`TraceWriter::flush`].
#[derive(Debug)]
pub struct TraceWriter {
    out: std::io::BufWriter<std::fs::File>,
    queries: u64,
    bytes: u64,
}

impl TraceWriter {
    /// Create (truncate) `path` and write the trace header.
    pub fn create(path: &Path) -> Result<TraceWriter, TraceError> {
        let mut out = std::io::BufWriter::new(std::fs::File::create(path)?);
        out.write_all(MAGIC)?;
        Ok(TraceWriter {
            out,
            queries: 0,
            bytes: MAGIC.len() as u64,
        })
    }

    /// Append one batch of queries as wire frames.
    pub fn append(&mut self, queries: &[Query]) -> Result<(), TraceError> {
        for frame in pack_frames(queries, crate::protocol::DEFAULT_FRAME_CAPACITY) {
            self.out.write_all(&(frame.len() as u32).to_le_bytes())?;
            self.out.write_all(&frame)?;
            self.bytes += 4 + frame.len() as u64;
        }
        self.queries += queries.len() as u64;
        Ok(())
    }

    /// Queries recorded so far.
    #[must_use]
    pub fn queries(&self) -> u64 {
        self.queries
    }

    /// Bytes written so far (header included) — drive size-based
    /// rotation off this.
    #[must_use]
    pub fn bytes_written(&self) -> u64 {
        self.bytes
    }

    /// Flush buffered frames to disk.
    pub fn flush(&mut self) -> Result<(), TraceError> {
        self.out.flush()?;
        Ok(())
    }
}

/// Read a trace file back into queries (in recorded order).
pub fn read_trace(path: &Path) -> Result<Vec<Query>, TraceError> {
    let mut input = std::io::BufReader::new(std::fs::File::open(path)?);
    let mut magic = [0u8; 8];
    input.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(TraceError::BadMagic);
    }
    let mut queries = Vec::new();
    loop {
        let mut len_buf = [0u8; 4];
        match input.read_exact(&mut len_buf) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => break,
            Err(e) => return Err(e.into()),
        }
        let len = u32::from_le_bytes(len_buf) as usize;
        let mut buf = vec![0u8; len];
        input.read_exact(&mut buf)?;
        let frame = Bytes::from(buf);
        queries.extend(parse_frame(&frame).map_err(TraceError::BadFrame)?);
    }
    Ok(queries)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("dido-trace-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn round_trips_a_mixed_trace() {
        let queries: Vec<Query> = (0..500)
            .map(|i| match i % 3 {
                0 => Query::set(format!("k{i}"), vec![b'v'; i % 100]),
                1 => Query::get(format!("k{i}")),
                _ => Query::delete(format!("k{i}")),
            })
            .collect();
        let path = tmp("roundtrip");
        write_trace(&path, &queries).unwrap();
        let back = read_trace(&path).unwrap();
        assert_eq!(back, queries);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn streamed_appends_read_back_as_one_trace() {
        let queries: Vec<Query> = (0..900)
            .map(|i| match i % 3 {
                0 => Query::set(format!("s{i}"), vec![b'x'; i % 64]),
                1 => Query::get(format!("s{i}")),
                _ => Query::delete(format!("s{i}")),
            })
            .collect();
        let path = tmp("streamed");
        let mut w = TraceWriter::create(&path).unwrap();
        for chunk in queries.chunks(117) {
            w.append(chunk).unwrap();
        }
        assert_eq!(w.queries(), 900);
        w.flush().unwrap();
        assert_eq!(
            w.bytes_written(),
            std::fs::metadata(&path).unwrap().len(),
            "bytes_written must track the on-disk size"
        );
        let back = read_trace(&path).unwrap();
        assert_eq!(back, queries, "streamed file must equal a one-shot trace");
        drop(w);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_trace_is_fine() {
        let path = tmp("empty");
        write_trace(&path, &[]).unwrap();
        assert!(read_trace(&path).unwrap().is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_non_trace_files() {
        let path = tmp("garbage");
        std::fs::write(&path, b"definitely not a trace").unwrap();
        assert!(matches!(read_trace(&path), Err(TraceError::BadMagic)));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn detects_truncation() {
        let queries: Vec<Query> = (0..50).map(|i| Query::get(format!("k{i}"))).collect();
        let path = tmp("trunc");
        write_trace(&path, &queries).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        assert!(read_trace(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
