//! Binary wire protocol for key-value queries.
//!
//! The paper's testbed feeds queries over UDP, "batched in an Ethernet
//! frame as many as possible" to keep network I/O off the critical path
//! (§V-A). We mirror that: a *frame* carries a count followed by
//! back-to-back query records.
//!
//! ```text
//! frame    := count:u16 record*
//! record   := op:u8 key_len:u16 val_len:u32 (ttl:u32 flags:u32)? key val
//! response := status:u8 val_len:u32 val
//! ```
//!
//! The `(ttl, flags)` pair is present only on SET records (relative TTL
//! seconds, 0 = never expire, plus opaque client flags): GETs and
//! DELETEs carry no metadata, so the read-dominated wire stays as lean
//! as before.
//!
//! Decoding is zero-copy: parsed keys and values are `Bytes` views into
//! the frame buffer.

use bytes::{BufMut, Bytes, BytesMut};
use dido_model::{Query, QueryOp, Response, ResponseStatus};

/// Conventional Ethernet MTU payload for a query frame.
pub const DEFAULT_FRAME_CAPACITY: usize = 1500;

/// Per-record wire overhead (op + key_len + val_len).
pub const RECORD_HEADER: usize = 1 + 2 + 4;

/// Extra wire bytes on a SET record (ttl + flags).
pub const SET_META: usize = 4 + 4;

/// Frame-level overhead (the record count).
pub const FRAME_HEADER: usize = 2;

/// Errors from frame decoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolError {
    /// Frame shorter than its own headers claim.
    Truncated,
    /// Unknown opcode byte.
    BadOpcode(u8),
    /// A SET with an empty key, etc.
    EmptyKey,
}

/// Builds query frames, packing records until the capacity is reached.
#[derive(Debug)]
pub struct FrameBuilder {
    buf: BytesMut,
    count: u16,
    capacity: usize,
}

impl FrameBuilder {
    /// Builder with the default Ethernet-sized capacity.
    #[must_use]
    pub fn new() -> FrameBuilder {
        FrameBuilder::with_capacity(DEFAULT_FRAME_CAPACITY)
    }

    /// Builder with an explicit byte capacity.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> FrameBuilder {
        let mut buf = BytesMut::with_capacity(capacity);
        buf.put_u16_le(0);
        FrameBuilder {
            buf,
            count: 0,
            capacity,
        }
    }

    /// Bytes a query would occupy on the wire.
    #[must_use]
    pub fn wire_size(q: &Query) -> usize {
        let meta = if q.op == QueryOp::Set { SET_META } else { 0 };
        RECORD_HEADER + meta + q.key.len() + q.value.len()
    }

    /// Try to append a query; returns `false` (without modifying the
    /// frame) if it does not fit.
    pub fn push(&mut self, q: &Query) -> bool {
        let need = Self::wire_size(q);
        if self.buf.len() + need > self.capacity && self.count > 0 {
            return false;
        }
        self.buf.put_u8(q.op.wire_code());
        self.buf.put_u16_le(q.key.len() as u16);
        self.buf.put_u32_le(q.value.len() as u32);
        if q.op == QueryOp::Set {
            self.buf.put_u32_le(q.ttl);
            self.buf.put_u32_le(q.flags);
        }
        self.buf.put_slice(&q.key);
        self.buf.put_slice(&q.value);
        self.count += 1;
        true
    }

    /// Number of queries packed so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.count as usize
    }

    /// Whether no query has been packed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Finish the frame.
    #[must_use]
    pub fn finish(mut self) -> Bytes {
        let count = self.count;
        self.buf[0..2].copy_from_slice(&count.to_le_bytes());
        self.buf.freeze()
    }
}

impl Default for FrameBuilder {
    fn default() -> Self {
        FrameBuilder::new()
    }
}

/// Pack an iterator of queries into as few frames as possible.
#[must_use]
pub fn pack_frames<'a, I>(queries: I, capacity: usize) -> Vec<Bytes>
where
    I: IntoIterator<Item = &'a Query>,
{
    let mut frames = Vec::new();
    let mut builder = FrameBuilder::with_capacity(capacity);
    for q in queries {
        if !builder.push(q) {
            frames.push(builder.finish());
            builder = FrameBuilder::with_capacity(capacity);
            let ok = builder.push(q);
            debug_assert!(ok, "empty frame always accepts one record");
        }
    }
    if !builder.is_empty() {
        frames.push(builder.finish());
    }
    frames
}

/// Number of query records a frame claims to carry (its `count:u16`
/// header), without decoding any record. Lets `PP` pre-size its output
/// vector before parsing. Returns 0 for frames too short to carry the
/// header; a lying count is bounded by `u16::MAX`, so a hostile frame
/// can over-reserve at most ~64 Ki entries.
#[must_use]
pub fn frame_query_count(frame: &Bytes) -> usize {
    if frame.len() < FRAME_HEADER {
        return 0;
    }
    u16::from_le_bytes([frame[0], frame[1]]) as usize
}

/// Decode a query frame into zero-copy queries.
pub fn parse_frame(frame: &Bytes) -> Result<Vec<Query>, ProtocolError> {
    let mut out = Vec::with_capacity(frame_query_count(frame));
    parse_frame_into(frame, &mut out)?;
    Ok(out)
}

/// Decode a query frame, appending its zero-copy queries to `out`.
/// Returns the number appended. On error `out` is restored to its
/// original length, so a batch decoder can feed many frames into one
/// shared query vector and skip the bad ones.
pub fn parse_frame_into(frame: &Bytes, out: &mut Vec<Query>) -> Result<usize, ProtocolError> {
    let mark = out.len();
    parse_records_into(frame, out).inspect_err(|_| out.truncate(mark))
}

fn parse_records_into(frame: &Bytes, out: &mut Vec<Query>) -> Result<usize, ProtocolError> {
    if frame.len() < FRAME_HEADER {
        return Err(ProtocolError::Truncated);
    }
    let count = u16::from_le_bytes([frame[0], frame[1]]) as usize;
    out.reserve(count);
    let mut pos = FRAME_HEADER;
    for _ in 0..count {
        if pos + RECORD_HEADER > frame.len() {
            return Err(ProtocolError::Truncated);
        }
        let op = QueryOp::from_wire_code(frame[pos]).ok_or(ProtocolError::BadOpcode(frame[pos]))?;
        let key_len = u16::from_le_bytes([frame[pos + 1], frame[pos + 2]]) as usize;
        let val_len = u32::from_le_bytes([
            frame[pos + 3],
            frame[pos + 4],
            frame[pos + 5],
            frame[pos + 6],
        ]) as usize;
        pos += RECORD_HEADER;
        let (mut ttl, mut flags) = (0u32, 0u32);
        if op == QueryOp::Set {
            if pos + SET_META > frame.len() {
                return Err(ProtocolError::Truncated);
            }
            ttl = u32::from_le_bytes([
                frame[pos],
                frame[pos + 1],
                frame[pos + 2],
                frame[pos + 3],
            ]);
            flags = u32::from_le_bytes([
                frame[pos + 4],
                frame[pos + 5],
                frame[pos + 6],
                frame[pos + 7],
            ]);
            pos += SET_META;
        }
        if pos + key_len + val_len > frame.len() {
            return Err(ProtocolError::Truncated);
        }
        if key_len == 0 {
            return Err(ProtocolError::EmptyKey);
        }
        let key = frame.slice(pos..pos + key_len);
        pos += key_len;
        let value = frame.slice(pos..pos + val_len);
        pos += val_len;
        out.push(Query {
            op,
            key,
            value,
            ttl,
            flags,
        });
    }
    Ok(count)
}

/// Serialize responses into a frame.
#[must_use]
pub fn encode_responses(responses: &[Response]) -> Bytes {
    let total: usize = FRAME_HEADER
        + responses
            .iter()
            .map(|r| 1 + 4 + r.value.len())
            .sum::<usize>();
    let mut buf = BytesMut::with_capacity(total);
    encode_response_records(&mut buf, responses);
    buf.freeze()
}

/// Append a *wire-ready* response frame — 4-byte length prefix included
/// — to `buf`. Lets a batched sender coalesce many frames into one
/// contiguous buffer (one allocation, one plain `write`) instead of
/// encoding each frame separately and interleaving prefixes at write
/// time.
pub fn encode_responses_wire_into(buf: &mut BytesMut, responses: &[Response]) {
    let frame_len: usize = FRAME_HEADER
        + responses
            .iter()
            .map(|r| 1 + 4 + r.value.len())
            .sum::<usize>();
    buf.reserve(4 + frame_len);
    buf.put_u32_le(frame_len as u32);
    encode_response_records(buf, responses);
}

/// Append a *wire-ready* query frame — 4-byte length prefix included —
/// to `buf`. Counterpart of [`encode_responses_wire_into`] for load
/// generators that pre-encode their request streams and send a whole
/// pipelined window in one vectored write.
pub fn encode_queries_wire_into(buf: &mut BytesMut, queries: &[Query]) {
    let frame_len: usize =
        FRAME_HEADER + queries.iter().map(FrameBuilder::wire_size).sum::<usize>();
    buf.reserve(4 + frame_len);
    buf.put_u32_le(frame_len as u32);
    buf.put_u16_le(queries.len() as u16);
    for q in queries {
        buf.put_u8(q.op.wire_code());
        buf.put_u16_le(q.key.len() as u16);
        buf.put_u32_le(q.value.len() as u32);
        if q.op == QueryOp::Set {
            buf.put_u32_le(q.ttl);
            buf.put_u32_le(q.flags);
        }
        buf.put_slice(&q.key);
        buf.put_slice(&q.value);
    }
}

fn encode_response_records(buf: &mut BytesMut, responses: &[Response]) {
    buf.put_u16_le(responses.len() as u16);
    for r in responses {
        let status = match r.status {
            ResponseStatus::Ok => 0u8,
            ResponseStatus::NotFound => 1,
            ResponseStatus::Error => 2,
        };
        buf.put_u8(status);
        buf.put_u32_le(r.value.len() as u32);
        buf.put_slice(&r.value);
    }
}

/// Decode a response frame.
pub fn parse_responses(frame: &Bytes) -> Result<Vec<Response>, ProtocolError> {
    if frame.len() < FRAME_HEADER {
        return Err(ProtocolError::Truncated);
    }
    let count = u16::from_le_bytes([frame[0], frame[1]]) as usize;
    let mut out = Vec::with_capacity(count);
    let mut pos = FRAME_HEADER;
    for _ in 0..count {
        if pos + 5 > frame.len() {
            return Err(ProtocolError::Truncated);
        }
        let status = match frame[pos] {
            0 => ResponseStatus::Ok,
            1 => ResponseStatus::NotFound,
            2 => ResponseStatus::Error,
            b => return Err(ProtocolError::BadOpcode(b)),
        };
        let val_len = u32::from_le_bytes([
            frame[pos + 1],
            frame[pos + 2],
            frame[pos + 3],
            frame[pos + 4],
        ]) as usize;
        pos += 5;
        if pos + val_len > frame.len() {
            return Err(ProtocolError::Truncated);
        }
        let value = frame.slice(pos..pos + val_len);
        pos += val_len;
        out.push(Response { status, value });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_queries() -> Vec<Query> {
        vec![
            Query::get("alpha"),
            Query::set("beta", "value-of-beta"),
            Query::delete("gamma"),
            // SET metadata (TTL + client flags) must survive the wire.
            Query::set_with("delta", "value-of-delta", 300, 0xFEED_F00D),
        ]
    }

    #[test]
    fn round_trip_queries() {
        let qs = sample_queries();
        let mut b = FrameBuilder::new();
        for q in &qs {
            assert!(b.push(q));
        }
        assert_eq!(b.len(), qs.len());
        let frame = b.finish();
        let parsed = parse_frame(&frame).unwrap();
        assert_eq!(parsed, qs);
    }

    #[test]
    fn round_trip_responses() {
        let rs = vec![
            Response::hit("some-value"),
            Response::not_found(),
            Response::ok(),
            Response::error(),
        ];
        let frame = encode_responses(&rs);
        assert_eq!(parse_responses(&frame).unwrap(), rs);
    }

    #[test]
    fn capacity_splits_frames() {
        let qs: Vec<Query> = (0..100)
            .map(|i| Query::set(format!("key-{i:03}"), vec![b'x'; 50]))
            .collect();
        let frames = pack_frames(&qs, 256);
        assert!(
            frames.len() > 1,
            "100 × ~64B records cannot fit one 256B frame"
        );
        let total: usize = frames.iter().map(|f| parse_frame(f).unwrap().len()).sum();
        assert_eq!(total, 100, "no query may be lost across frame splits");
        for f in &frames {
            assert!(f.len() <= 256 || parse_frame(f).unwrap().len() == 1);
        }
    }

    #[test]
    fn oversized_single_record_still_ships_alone() {
        let q = Query::set("k", vec![b'v'; 4000]);
        let frames = pack_frames(std::iter::once(&q), 1500);
        assert_eq!(frames.len(), 1);
        assert_eq!(parse_frame(&frames[0]).unwrap()[0], q);
    }

    #[test]
    fn truncated_frames_error() {
        assert_eq!(
            parse_frame(&Bytes::from_static(&[1])),
            Err(ProtocolError::Truncated)
        );
        let mut b = FrameBuilder::new();
        b.push(&Query::set("kk", "vv"));
        let frame = b.finish();
        let cut = frame.slice(0..frame.len() - 1);
        assert_eq!(parse_frame(&cut), Err(ProtocolError::Truncated));
    }

    #[test]
    fn bad_opcode_errors() {
        let mut raw = BytesMut::new();
        raw.put_u16_le(1);
        raw.put_u8(99); // invalid op
        raw.put_u16_le(1);
        raw.put_u32_le(0);
        raw.put_u8(b'k');
        assert_eq!(
            parse_frame(&raw.freeze()),
            Err(ProtocolError::BadOpcode(99))
        );
    }

    #[test]
    fn empty_key_rejected() {
        let mut raw = BytesMut::new();
        raw.put_u16_le(1);
        raw.put_u8(1); // GET
        raw.put_u16_le(0);
        raw.put_u32_le(0);
        assert_eq!(parse_frame(&raw.freeze()), Err(ProtocolError::EmptyKey));
    }

    #[test]
    fn parse_frame_into_restores_output_on_error() {
        let qs = sample_queries();
        let mut b = FrameBuilder::new();
        for q in &qs {
            b.push(q);
        }
        let good = b.finish();
        let cut = good.slice(0..good.len() - 1);

        let mut out = Vec::new();
        assert_eq!(parse_frame_into(&good, &mut out).unwrap(), qs.len());
        assert_eq!(
            parse_frame_into(&cut, &mut out),
            Err(ProtocolError::Truncated)
        );
        assert_eq!(
            out, qs,
            "failed frame must not leave partial queries behind"
        );
    }

    #[test]
    fn wire_encoders_round_trip_with_length_prefix() {
        let qs = sample_queries();
        let rs = vec![Response::hit("v"), Response::not_found()];
        let mut buf = BytesMut::new();
        encode_queries_wire_into(&mut buf, &qs);
        let mark = buf.len();
        encode_responses_wire_into(&mut buf, &rs);
        let wire = buf.freeze();

        let qlen = u32::from_le_bytes(wire[0..4].try_into().unwrap()) as usize;
        assert_eq!(4 + qlen, mark, "query prefix covers exactly its frame");
        assert_eq!(parse_frame(&wire.slice(4..4 + qlen)).unwrap(), qs);

        let rlen = u32::from_le_bytes(wire[mark..mark + 4].try_into().unwrap()) as usize;
        assert_eq!(mark + 4 + rlen, wire.len());
        assert_eq!(parse_responses(&wire.slice(mark + 4..)).unwrap(), rs);
    }

    #[test]
    fn parsing_is_zero_copy() {
        let mut b = FrameBuilder::new();
        b.push(&Query::set("zero", "copy"));
        let frame = b.finish();
        let parsed = parse_frame(&frame).unwrap();
        // A Bytes slice of the frame shares the same backing allocation.
        let key_ptr = parsed[0].key.as_ptr() as usize;
        let frame_range = frame.as_ptr() as usize..frame.as_ptr() as usize + frame.len();
        assert!(frame_range.contains(&key_ptr));
    }
}
