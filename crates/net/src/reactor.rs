//! Reactor connection plane: the batched server's ingress half.
//!
//! A fixed pool of reactor threads (default `min(4, cores)`) replaces
//! the one-framing-thread-per-connection design: each reactor owns an
//! epoll-style readiness loop (the vendored `mio` compat shim), a set
//! of per-connection [`ConnState`] machines, and a command queue for
//! registrations. On readiness a connection's socket is burst-read
//! nonblockingly — every complete frame is carved by the connection's
//! [`FrameReader`] (partial-frame bytes stay buffered, preserving the
//! frame-boundary semantics of the desync fix) — and the tagged frames
//! go into the shared RX ring with one `push_burst` and one doorbell
//! ring, exactly as the per-connection readers did. Ring overflow is
//! answered at drop time with empty response frames so the connection's
//! sequence numbering never develops a hole (the SD writer's reorder
//! buffer advances past every dropped frame).
//!
//! Reactor 0 additionally owns the listener, registered for readiness
//! like any other source — accepting costs an event, not a 5 ms
//! sleep-poll. New connections round-robin across the pool via
//! per-reactor command queues, kicked by a [`Waker`]. Shutdown is also
//! waker-driven: an idle server tears down in microseconds, and every
//! still-registered connection is retired with an `Eof` message so the
//! SD writer can close it.

use crate::nic::FrameRing;
use crate::sd::SdPlane;
use crate::server::{Doorbell, FrameReader, ReadReady, ServerStats, TaggedFrame, READ_CHUNK};
use crossbeam::channel::{Receiver, Sender};
use mio::{Events, Interest, Poll, Token, Waker};
use std::collections::HashMap;
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Token of each reactor's waker.
const WAKER_TOKEN: Token = Token(0);
/// Token of the listener (reactor 0 only).
const LISTENER_TOKEN: Token = Token(1);
/// Connection tokens start here: `CONN_TOKEN_BASE + conn id`.
const CONN_TOKEN_BASE: usize = 2;

/// Bytes one connection may burst-read per readiness wakeup. A firehose
/// connection yields after this much; level-triggered registration
/// re-reports it on the next poll, so nothing is lost — other
/// connections just get a turn first.
const READ_BUDGET: usize = 8 * READ_CHUNK;

/// Fallback poll timeout. Wakeups (frames, registrations, shutdown) are
/// event-driven; this only bounds how long a lost external signal could
/// go unnoticed.
const POLL_TIMEOUT: Duration = Duration::from_millis(500);

/// Everything a reactor shares with the rest of the batched topology.
#[derive(Clone)]
pub(crate) struct ReactorShared {
    pub(crate) ring: Arc<FrameRing<TaggedFrame>>,
    pub(crate) sd: Arc<SdPlane>,
    pub(crate) stats: Arc<ServerStats>,
    pub(crate) shutdown: Arc<AtomicBool>,
    pub(crate) doorbell: Arc<Doorbell>,
    /// Shrink each accepted socket's kernel send buffer (`SO_SNDBUF`)
    /// to this many bytes (`None` keeps the kernel default).
    pub(crate) sndbuf_bytes: Option<usize>,
}

/// Commands to a reactor thread (kick the waker after sending).
pub(crate) enum ReactorCmd {
    /// Adopt a freshly accepted connection's read half.
    Register { conn: u64, stream: TcpStream },
    /// Pause (`resume: false`) or resume (`resume: true`) a
    /// connection's READ interest — the SD plane's slow-consumer
    /// backpressure actuator.
    SetRead { conn: u64, resume: bool },
}

/// Resolve a configured reader count: `0` means `min(4, cores)`.
#[must_use]
pub(crate) fn effective_readers(configured: usize) -> usize {
    if configured > 0 {
        configured
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(4)
    }
}

/// The running reactor pool; join handles plus the wakers that unblock
/// each poll loop for shutdown.
pub(crate) struct ReactorPool {
    threads: Vec<std::thread::JoinHandle<()>>,
    wakers: Vec<Arc<Waker>>,
}

impl ReactorPool {
    /// Wake every reactor (used to make shutdown prompt).
    pub(crate) fn wake_all(&self) {
        for w in &self.wakers {
            let _ = w.wake();
        }
    }

    /// Join every reactor thread.
    pub(crate) fn join(&mut self) {
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// Per-connection state machine inside a reactor.
struct ConnState {
    conn: u64,
    stream: TcpStream,
    reader: FrameReader,
    /// Next sequence number to assign to a carved frame.
    seq: u64,
    /// READ interest is currently deregistered (SD backpressure).
    paused: bool,
}

/// Listener state, owned by reactor 0.
struct Acceptor {
    listener: TcpListener,
    next_conn: u64,
    /// Command queues of every reactor (index-aligned with the pool).
    peers: Vec<Sender<ReactorCmd>>,
    peer_wakers: Vec<Arc<Waker>>,
}

/// The reactor pool's polls and command queues, built *before* any
/// thread spawns so other planes (the SD egress shards) can hold
/// command handles from birth.
pub(crate) struct ReactorScaffold {
    polls: Vec<Poll>,
    wakers: Vec<Arc<Waker>>,
    cmd_txs: Vec<Sender<ReactorCmd>>,
    cmd_rxs: Vec<Receiver<ReactorCmd>>,
}

/// Cross-plane handle to the reactor pool's command queues: lets the SD
/// egress shards pause/resume a connection's READ interest without
/// touching reactor state directly.
pub(crate) struct ReactorHandles {
    cmd_txs: Vec<Sender<ReactorCmd>>,
    wakers: Vec<Arc<Waker>>,
}

impl ReactorHandles {
    /// Ask the reactor owning `conn` to pause or resume its READ
    /// interest. Routing mirrors the accept-time round-robin, so the
    /// command lands on the thread that owns the connection.
    pub(crate) fn set_read(&self, conn: u64, resume: bool) {
        let target = (conn as usize) % self.cmd_txs.len();
        if self.cmd_txs[target]
            .send(ReactorCmd::SetRead { conn, resume })
            .is_ok()
        {
            let _ = self.wakers[target].wake();
        }
    }
}

/// Build `n` reactors' polls, wakers, and command queues (no threads
/// yet). The scaffold is consumed by [`spawn_reactor_pool`]; the
/// handles go to whoever needs the command path.
pub(crate) fn build_reactor_scaffold(
    n: usize,
) -> std::io::Result<(ReactorScaffold, ReactorHandles)> {
    let n = n.max(1);
    let mut polls = Vec::with_capacity(n);
    let mut wakers = Vec::with_capacity(n);
    let mut cmd_txs = Vec::with_capacity(n);
    let mut cmd_rxs = Vec::with_capacity(n);
    for _ in 0..n {
        let poll = Poll::new()?;
        let waker = Arc::new(Waker::new(poll.registry(), WAKER_TOKEN)?);
        let (tx, rx) = crossbeam::channel::unbounded::<ReactorCmd>();
        polls.push(poll);
        wakers.push(waker);
        cmd_txs.push(tx);
        cmd_rxs.push(rx);
    }
    let handles = ReactorHandles {
        cmd_txs: cmd_txs.clone(),
        wakers: wakers.clone(),
    };
    Ok((
        ReactorScaffold {
            polls,
            wakers,
            cmd_txs,
            cmd_rxs,
        },
        handles,
    ))
}

/// Spawn the pool over a prebuilt scaffold, with the accept loop folded
/// into reactor 0.
pub(crate) fn spawn_reactor_pool(
    listener: TcpListener,
    scaffold: ReactorScaffold,
    shared: ReactorShared,
) -> std::io::Result<ReactorPool> {
    let ReactorScaffold {
        polls,
        wakers,
        cmd_txs,
        cmd_rxs,
    } = scaffold;
    let n = polls.len();
    shared.stats.reactor_threads.store(n as u64, Ordering::Relaxed);

    listener.set_nonblocking(true)?;
    polls[0]
        .registry()
        .register(&listener, LISTENER_TOKEN, Interest::READABLE)?;
    let mut acceptor = Some(Acceptor {
        listener,
        next_conn: 0,
        peers: cmd_txs,
        peer_wakers: wakers.clone(),
    });

    let mut threads = Vec::with_capacity(n);
    for (idx, (poll, cmd_rx)) in polls.into_iter().zip(cmd_rxs).enumerate() {
        let acceptor = if idx == 0 { acceptor.take() } else { None };
        let shared = shared.clone();
        threads.push(
            std::thread::Builder::new()
                .name(format!("dido-reactor-{idx}"))
                .spawn(move || run_reactor(idx, poll, cmd_rx, acceptor, &shared))?,
        );
    }
    Ok(ReactorPool { threads, wakers })
}

fn run_reactor(
    idx: usize,
    mut poll: Poll,
    cmd_rx: Receiver<ReactorCmd>,
    mut acceptor: Option<Acceptor>,
    shared: &ReactorShared,
) {
    let mut events = Events::with_capacity(1024);
    let mut ready: Vec<Token> = Vec::new();
    let mut conns: HashMap<usize, ConnState> = HashMap::new();
    let mut burst: Vec<bytes::Bytes> = Vec::new();
    let mut tagged: Vec<TaggedFrame> = Vec::new();
    loop {
        if poll.poll(&mut events, Some(POLL_TIMEOUT)).is_err() {
            // A broken selector cannot make progress; treat it like
            // shutdown so the server tears down instead of spinning.
            break;
        }
        if shared.shutdown.load(Ordering::Acquire) {
            break;
        }
        if !events.is_empty() {
            shared.stats.reactor_wakeups.fetch_add(1, Ordering::Relaxed);
        }
        ready.clear();
        ready.extend(events.iter().map(|e| e.token()));
        for &tok in &ready {
            match tok {
                WAKER_TOKEN => {} // registrations are drained below
                LISTENER_TOKEN => {
                    if let Some(a) = acceptor.as_mut() {
                        if !accept_ready(a, idx, &poll, &mut conns, shared) {
                            // Fatal listener error: stop accepting but
                            // keep serving live connections.
                            let _ = poll.registry().deregister(&a.listener);
                            acceptor = None;
                        }
                    }
                }
                Token(tok) => handle_conn_ready(
                    tok,
                    &poll,
                    &mut conns,
                    &mut burst,
                    &mut tagged,
                    shared,
                ),
            }
        }
        // Wakeups coalesce, so the command queue is drained every pass
        // rather than only on a waker event.
        while let Ok(cmd) = cmd_rx.try_recv() {
            match cmd {
                ReactorCmd::Register { conn, stream } => {
                    register_conn(&poll, &mut conns, conn, stream, shared);
                }
                ReactorCmd::SetRead { conn, resume } => {
                    set_read_interest(&poll, &mut conns, conn, resume, shared);
                }
            }
        }
    }
    // Shutdown: retire every connection (the SD writer closes each once
    // its owed responses are written), including registrations that
    // were queued but never adopted.
    let live = conns.len() as u64;
    for (_, c) in conns.drain() {
        shared.sd.send_eof(c.conn, c.seq);
    }
    shared.stats.reactor_conns.fetch_sub(live, Ordering::Relaxed);
    while let Ok(cmd) = cmd_rx.try_recv() {
        if let ReactorCmd::Register { conn, .. } = cmd {
            shared.sd.send_eof(conn, 0);
        }
    }
}

/// Apply an SD-plane backpressure command: deregister a paused
/// connection's READ interest, or re-register it on resume. A resume
/// that cannot re-register retires the connection (it would otherwise
/// be stranded forever — no readiness events, no EOF).
fn set_read_interest(
    poll: &Poll,
    conns: &mut HashMap<usize, ConnState>,
    conn: u64,
    resume: bool,
    shared: &ReactorShared,
) {
    let tok = CONN_TOKEN_BASE + conn as usize;
    let Some(c) = conns.get_mut(&tok) else {
        return; // already retired; the SD plane learns via Eof
    };
    if resume && c.paused {
        if poll
            .registry()
            .register(&c.stream, Token(tok), Interest::READABLE)
            .is_ok()
        {
            c.paused = false;
        } else {
            let c = conns.remove(&tok).expect("conn just found");
            shared.sd.send_eof(c.conn, c.seq);
            shared.stats.reactor_conns.fetch_sub(1, Ordering::Relaxed);
        }
    } else if !resume && !c.paused {
        let _ = poll.registry().deregister(&c.stream);
        c.paused = true;
    }
}

/// Accept until the listener would block. Returns whether the listener
/// is still usable.
fn accept_ready(
    a: &mut Acceptor,
    idx: usize,
    poll: &Poll,
    conns: &mut HashMap<usize, ConnState>,
    shared: &ReactorShared,
) -> bool {
    loop {
        match a.listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nodelay(true);
                if stream.set_nonblocking(true).is_err() {
                    continue; // connection dies; client sees a close
                }
                if let Some(bytes) = shared.sndbuf_bytes {
                    // Best-effort: a failed shrink just means the kernel
                    // default stays, which is always safe.
                    let _ = mio::set_send_buffer(stream.as_raw_fd(), bytes);
                }
                let Ok(write_half) = stream.try_clone() else {
                    continue;
                };
                shared.stats.connections.fetch_add(1, Ordering::Relaxed);
                let conn = a.next_conn;
                a.next_conn += 1;
                // Open must reach the SD plane before any response (or
                // drop-answer) for this connection can.
                shared.sd.send_open(conn, write_half);
                let target = (conn as usize) % a.peers.len();
                if target == idx {
                    register_conn(poll, conns, conn, stream, shared);
                } else {
                    let _ = a.peers[target].send(ReactorCmd::Register { conn, stream });
                    let _ = a.peer_wakers[target].wake();
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return true,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            // A peer that aborted while queued is its problem, not the
            // listener's: under a connect storm ECONNABORTED is routine
            // and must not retire the accept path.
            Err(e) if e.kind() == std::io::ErrorKind::ConnectionAborted => continue,
            Err(_) => return false,
        }
    }
}

fn register_conn(
    poll: &Poll,
    conns: &mut HashMap<usize, ConnState>,
    conn: u64,
    stream: TcpStream,
    shared: &ReactorShared,
) {
    let tok = CONN_TOKEN_BASE + conn as usize;
    if poll
        .registry()
        .register(&stream, Token(tok), Interest::READABLE)
        .is_err()
    {
        // Unwatchable: retire immediately so the SD writer closes it.
        shared.sd.send_eof(conn, 0);
        return;
    }
    conns.insert(
        tok,
        ConnState {
            conn,
            stream,
            reader: FrameReader::new(),
            seq: 0,
            paused: false,
        },
    );
    shared.stats.reactor_conns.fetch_add(1, Ordering::Relaxed);
}

/// RV work for one ready connection: burst-read, carve, tag, push into
/// the shared ring (drop-answering overflow), retire on EOF/error.
fn handle_conn_ready(
    tok: usize,
    poll: &Poll,
    conns: &mut HashMap<usize, ConnState>,
    burst: &mut Vec<bytes::Bytes>,
    tagged: &mut Vec<TaggedFrame>,
    shared: &ReactorShared,
) {
    let Some(c) = conns.get_mut(&tok) else {
        return; // already retired this pass (spurious/stale event)
    };
    burst.clear();
    let status = c.reader.read_ready(&mut c.stream, burst, READ_BUDGET);
    if !burst.is_empty() {
        shared.stats.record_read_burst(burst.len() as u64);
        tagged.clear();
        for frame in burst.drain(..) {
            tagged.push(TaggedFrame {
                conn: c.conn,
                seq: c.seq,
                frame,
            });
            c.seq += 1;
        }
        // One ring lock for the whole burst; the full-ring tail stays
        // in `tagged` and is answered with empty frames at drop time so
        // this connection's sequence numbering never gains a hole.
        if shared.ring.push_burst(tagged) > 0 {
            shared.doorbell.ring();
        }
        if !tagged.is_empty() {
            shared
                .stats
                .dropped_frames
                .fetch_add(tagged.len() as u64, Ordering::Relaxed);
            shared.sd.overflow_answers(c.conn, tagged);
        }
    }
    if !matches!(status, Ok(ReadReady::Open)) {
        // Clean EOF, mid-frame EOF, or a fatal read/frame error: either
        // way the connection is done producing frames.
        let c = conns.remove(&tok).expect("conn just found");
        if !c.paused {
            let _ = poll.registry().deregister(&c.stream);
        }
        shared.sd.send_eof(c.conn, c.seq);
        shared.stats.reactor_conns.fetch_sub(1, Ordering::Relaxed);
    }
}
