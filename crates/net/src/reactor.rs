//! Reactor connection plane: the batched server's ingress half.
//!
//! A fixed pool of reactor threads (default `min(4, cores)`) replaces
//! the one-framing-thread-per-connection design: each reactor owns an
//! epoll-style readiness loop (the vendored `mio` compat shim), a set
//! of per-connection [`ConnState`] machines, and a command queue for
//! registrations. On readiness a connection's socket is burst-read
//! nonblockingly — every complete frame is carved by the connection's
//! [`FrameReader`] (partial-frame bytes stay buffered, preserving the
//! frame-boundary semantics of the desync fix) — and the tagged frames
//! go into the shared RX ring with one `push_burst` and one doorbell
//! ring, exactly as the per-connection readers did. Ring overflow is
//! answered at drop time with empty response frames so the connection's
//! sequence numbering never develops a hole (the SD writer's reorder
//! buffer advances past every dropped frame).
//!
//! Reactor 0 additionally owns the listener, registered for readiness
//! like any other source — accepting costs an event, not a 5 ms
//! sleep-poll. New connections round-robin across the pool via
//! per-reactor command queues, kicked by a [`Waker`]. Shutdown is also
//! waker-driven: an idle server tears down in microseconds, and every
//! still-registered connection is retired with an `Eof` message so the
//! SD writer can close it.

use crate::codec::ProtocolKind;
use crate::nic::FrameRing;
use crate::sd::SdPlane;
use crate::server::{
    Doorbell, FrameReader, IoBackend, ReadReady, ServerStats, TaggedFrame, READ_CHUNK,
};
use crossbeam::channel::{Receiver, Sender};
use mio::{Events, Interest, Poll, Token, Waker};
use std::collections::HashMap;
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Token of each reactor's waker.
const WAKER_TOKEN: Token = Token(0);
/// Listener tokens (reactor 0 only) start here:
/// `LISTENER_TOKEN_BASE + listener index`, one per `--listen` front
/// door.
const LISTENER_TOKEN_BASE: usize = 1;
/// Most listeners one server may bind — the token space reserved for
/// them between the waker and the first connection.
pub(crate) const MAX_LISTENERS: usize = 15;
/// Connection tokens start here: `CONN_TOKEN_BASE + conn id`.
const CONN_TOKEN_BASE: usize = LISTENER_TOKEN_BASE + MAX_LISTENERS;

/// Bytes one connection may burst-read per readiness wakeup. A firehose
/// connection yields after this much; level-triggered registration
/// re-reports it on the next poll, so nothing is lost — other
/// connections just get a turn first.
const READ_BUDGET: usize = 8 * READ_CHUNK;

/// Fallback poll timeout. Wakeups (frames, registrations, shutdown) are
/// event-driven; this only bounds how long a lost external signal could
/// go unnoticed.
const POLL_TIMEOUT: Duration = Duration::from_millis(500);

/// Everything a reactor shares with the rest of the batched topology.
#[derive(Clone)]
pub(crate) struct ReactorShared {
    pub(crate) ring: Arc<FrameRing<TaggedFrame>>,
    pub(crate) sd: Arc<SdPlane>,
    pub(crate) stats: Arc<ServerStats>,
    pub(crate) shutdown: Arc<AtomicBool>,
    pub(crate) doorbell: Arc<Doorbell>,
    /// Shrink each accepted socket's kernel send buffer (`SO_SNDBUF`)
    /// to this many bytes (`None` keeps the kernel default).
    pub(crate) sndbuf_bytes: Option<usize>,
    /// Which syscall backend this plane resolved at spawn. Epoll keeps
    /// sockets nonblocking and burst-reads on readiness; uring keeps
    /// sockets **blocking** (io_uring poll-arms them internally — a
    /// nonblocking socket would complete recv SQEs with `EAGAIN`
    /// instead) and keeps one recv SQE in flight per connection.
    pub(crate) backend: IoBackend,
}

/// Commands to a reactor thread (kick the waker after sending).
pub(crate) enum ReactorCmd {
    /// Adopt a freshly accepted connection's read half, carving with
    /// its listener's protocol codec.
    Register {
        conn: u64,
        stream: TcpStream,
        proto: ProtocolKind,
    },
    /// Pause (`resume: false`) or resume (`resume: true`) a
    /// connection's READ interest — the SD plane's slow-consumer
    /// backpressure actuator.
    SetRead { conn: u64, resume: bool },
}

/// Resolve a configured reader count: `0` means `min(4, cores)`.
#[must_use]
pub(crate) fn effective_readers(configured: usize) -> usize {
    if configured > 0 {
        configured
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(4)
    }
}

/// The running reactor pool; join handles plus the wakers that unblock
/// each poll loop for shutdown.
pub(crate) struct ReactorPool {
    threads: Vec<std::thread::JoinHandle<()>>,
    wakers: Vec<Arc<Waker>>,
}

impl ReactorPool {
    /// Wake every reactor (used to make shutdown prompt).
    pub(crate) fn wake_all(&self) {
        for w in &self.wakers {
            let _ = w.wake();
        }
    }

    /// Join every reactor thread.
    pub(crate) fn join(&mut self) {
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// Per-connection state machine inside a reactor.
struct ConnState {
    conn: u64,
    stream: TcpStream,
    reader: FrameReader,
    /// The protocol the connection's listener speaks (stamped at
    /// accept time; every carved request is tagged with it).
    proto: ProtocolKind,
    /// Next sequence number to assign to a carved frame.
    seq: u64,
    /// READ interest is currently deregistered (SD backpressure).
    paused: bool,
}

/// Listener state, owned by reactor 0. `listeners` is index-aligned
/// with the registration tokens (`LISTENER_TOKEN_BASE + index`); a
/// fatally broken listener is retired in place (`None`) while the rest
/// keep accepting.
struct Acceptor {
    listeners: Vec<Option<(TcpListener, ProtocolKind)>>,
    next_conn: u64,
    /// Command queues of every reactor (index-aligned with the pool).
    peers: Vec<Sender<ReactorCmd>>,
    peer_wakers: Vec<Arc<Waker>>,
}

impl Acceptor {
    /// Whether any listener is still accepting.
    fn any_alive(&self) -> bool {
        self.listeners.iter().any(Option::is_some)
    }
}

/// The reactor pool's polls and command queues, built *before* any
/// thread spawns so other planes (the SD egress shards) can hold
/// command handles from birth.
pub(crate) struct ReactorScaffold {
    polls: Vec<Poll>,
    wakers: Vec<Arc<Waker>>,
    cmd_txs: Vec<Sender<ReactorCmd>>,
    cmd_rxs: Vec<Receiver<ReactorCmd>>,
}

/// Cross-plane handle to the reactor pool's command queues: lets the SD
/// egress shards pause/resume a connection's READ interest without
/// touching reactor state directly.
pub(crate) struct ReactorHandles {
    cmd_txs: Vec<Sender<ReactorCmd>>,
    wakers: Vec<Arc<Waker>>,
}

impl ReactorHandles {
    /// Ask the reactor owning `conn` to pause or resume its READ
    /// interest. Routing mirrors the accept-time round-robin, so the
    /// command lands on the thread that owns the connection.
    pub(crate) fn set_read(&self, conn: u64, resume: bool) {
        let target = (conn as usize) % self.cmd_txs.len();
        if self.cmd_txs[target]
            .send(ReactorCmd::SetRead { conn, resume })
            .is_ok()
        {
            let _ = self.wakers[target].wake();
        }
    }
}

/// Build `n` reactors' polls, wakers, and command queues (no threads
/// yet). The scaffold is consumed by [`spawn_reactor_pool`]; the
/// handles go to whoever needs the command path.
pub(crate) fn build_reactor_scaffold(
    n: usize,
) -> std::io::Result<(ReactorScaffold, ReactorHandles)> {
    let n = n.max(1);
    let mut polls = Vec::with_capacity(n);
    let mut wakers = Vec::with_capacity(n);
    let mut cmd_txs = Vec::with_capacity(n);
    let mut cmd_rxs = Vec::with_capacity(n);
    for _ in 0..n {
        let poll = Poll::new()?;
        let waker = Arc::new(Waker::new(poll.registry(), WAKER_TOKEN)?);
        let (tx, rx) = crossbeam::channel::unbounded::<ReactorCmd>();
        polls.push(poll);
        wakers.push(waker);
        cmd_txs.push(tx);
        cmd_rxs.push(rx);
    }
    let handles = ReactorHandles {
        cmd_txs: cmd_txs.clone(),
        wakers: wakers.clone(),
    };
    Ok((
        ReactorScaffold {
            polls,
            wakers,
            cmd_txs,
            cmd_rxs,
        },
        handles,
    ))
}

/// Spawn the pool over a prebuilt scaffold, with the accept loop folded
/// into reactor 0.
pub(crate) fn spawn_reactor_pool(
    listeners: Vec<(TcpListener, ProtocolKind)>,
    scaffold: ReactorScaffold,
    shared: ReactorShared,
) -> std::io::Result<ReactorPool> {
    let ReactorScaffold {
        polls,
        wakers,
        cmd_txs,
        cmd_rxs,
    } = scaffold;
    let n = polls.len();
    shared
        .stats
        .reactor_threads
        .store(n as u64, Ordering::Relaxed);

    debug_assert!((1..=MAX_LISTENERS).contains(&listeners.len()));
    // Listeners stay nonblocking under both backends: the epoll loop
    // accepts on readiness events, the uring loop on `POLL_ADD`
    // completions — and both accept-until-`WouldBlock`.
    for (i, (listener, _)) in listeners.iter().enumerate() {
        listener.set_nonblocking(true)?;
        if shared.backend == IoBackend::Epoll {
            polls[0].registry().register(
                listener,
                Token(LISTENER_TOKEN_BASE + i),
                Interest::READABLE,
            )?;
        }
    }
    let mut acceptor = Some(Acceptor {
        listeners: listeners.into_iter().map(Some).collect(),
        next_conn: 0,
        peers: cmd_txs,
        peer_wakers: wakers.clone(),
    });

    let mut threads = Vec::with_capacity(n);
    for (idx, (poll, cmd_rx)) in polls.into_iter().zip(cmd_rxs).enumerate() {
        let acceptor = if idx == 0 { acceptor.take() } else { None };
        let shared = shared.clone();
        let waker = Arc::clone(&wakers[idx]);
        threads.push(
            std::thread::Builder::new()
                .name(format!("dido-reactor-{idx}"))
                .spawn(move || match shared.backend {
                    IoBackend::Epoll => run_reactor(idx, poll, cmd_rx, acceptor, &shared),
                    IoBackend::Uring => {
                        run_reactor_uring(idx, poll, waker, cmd_rx, acceptor, &shared)
                    }
                })?,
        );
    }
    Ok(ReactorPool { threads, wakers })
}

fn run_reactor(
    idx: usize,
    mut poll: Poll,
    cmd_rx: Receiver<ReactorCmd>,
    mut acceptor: Option<Acceptor>,
    shared: &ReactorShared,
) {
    let mut events = Events::with_capacity(1024);
    let mut ready: Vec<Token> = Vec::new();
    let mut conns: HashMap<usize, ConnState> = HashMap::new();
    let mut burst: Vec<bytes::Bytes> = Vec::new();
    let mut tagged: Vec<TaggedFrame> = Vec::new();
    let mut adopted: Vec<(u64, TcpStream, ProtocolKind)> = Vec::new();
    loop {
        if poll.poll(&mut events, Some(POLL_TIMEOUT)).is_err() {
            // A broken selector cannot make progress; treat it like
            // shutdown so the server tears down instead of spinning.
            break;
        }
        // I/O syscalls this pass: the poll itself plus every read the
        // ready handlers issue — the epoll side of the backends'
        // syscalls-per-query comparison.
        let mut sys = 1u64;
        if shared.shutdown.load(Ordering::Acquire) {
            break;
        }
        if !events.is_empty() {
            shared.stats.reactor_wakeups.fetch_add(1, Ordering::Relaxed);
        }
        ready.clear();
        ready.extend(events.iter().map(|e| e.token()));
        for &tok in &ready {
            match tok {
                WAKER_TOKEN => {} // registrations are drained below
                Token(t) if t < CONN_TOKEN_BASE => {
                    let lidx = t - LISTENER_TOKEN_BASE;
                    if let Some(a) = acceptor.as_mut() {
                        adopted.clear();
                        let alive = accept_ready(a, lidx, idx, shared, true, &mut adopted);
                        for (conn, stream, proto) in adopted.drain(..) {
                            register_conn(&poll, &mut conns, conn, stream, proto, shared);
                        }
                        if !alive {
                            // Fatal listener error: stop accepting on
                            // this front door but keep serving live
                            // connections (and the other listeners).
                            if let Some((listener, _)) = a.listeners[lidx].take() {
                                let _ = poll.registry().deregister(&listener);
                            }
                            if !a.any_alive() {
                                acceptor = None;
                            }
                        }
                    }
                }
                Token(tok) => handle_conn_ready(
                    tok,
                    &poll,
                    &mut conns,
                    &mut burst,
                    &mut tagged,
                    shared,
                    &mut sys,
                ),
            }
        }
        shared.stats.ring_enters.fetch_add(sys, Ordering::Relaxed);
        // Wakeups coalesce, so the command queue is drained every pass
        // rather than only on a waker event.
        while let Ok(cmd) = cmd_rx.try_recv() {
            match cmd {
                ReactorCmd::Register {
                    conn,
                    stream,
                    proto,
                } => {
                    register_conn(&poll, &mut conns, conn, stream, proto, shared);
                }
                ReactorCmd::SetRead { conn, resume } => {
                    set_read_interest(&poll, &mut conns, conn, resume, shared);
                }
            }
        }
    }
    // Shutdown: retire every connection (the SD writer closes each once
    // its owed responses are written), including registrations that
    // were queued but never adopted.
    let live = conns.len() as u64;
    for (_, c) in conns.drain() {
        shared.sd.send_eof(c.conn, c.seq);
    }
    shared
        .stats
        .reactor_conns
        .fetch_sub(live, Ordering::Relaxed);
    while let Ok(cmd) = cmd_rx.try_recv() {
        if let ReactorCmd::Register { conn, .. } = cmd {
            shared.sd.send_eof(conn, 0);
        }
    }
}

/// Apply an SD-plane backpressure command: deregister a paused
/// connection's READ interest, or re-register it on resume. A resume
/// that cannot re-register retires the connection (it would otherwise
/// be stranded forever — no readiness events, no EOF).
fn set_read_interest(
    poll: &Poll,
    conns: &mut HashMap<usize, ConnState>,
    conn: u64,
    resume: bool,
    shared: &ReactorShared,
) {
    let tok = CONN_TOKEN_BASE + conn as usize;
    let Some(c) = conns.get_mut(&tok) else {
        return; // already retired; the SD plane learns via Eof
    };
    if resume && c.paused {
        if poll
            .registry()
            .register(&c.stream, Token(tok), Interest::READABLE)
            .is_ok()
        {
            c.paused = false;
        } else {
            let c = conns.remove(&tok).expect("conn just found");
            shared.sd.send_eof(c.conn, c.seq);
            shared.stats.reactor_conns.fetch_sub(1, Ordering::Relaxed);
        }
    } else if !resume && !c.paused {
        let _ = poll.registry().deregister(&c.stream);
        c.paused = true;
    }
}

/// Accept until listener `lidx` would block, routing each connection to
/// its round-robin owner: remote reactors get a `Register` command,
/// this reactor's own share lands in `adopted` for the caller to
/// register backend-appropriately. Every accepted connection is stamped
/// with the listener's [`ProtocolKind`]. `nonblocking` selects the
/// accepted socket's mode (epoll needs nonblocking reads; the uring
/// backend must keep sockets blocking so recv SQEs poll-arm instead of
/// completing with `EAGAIN`). Returns whether the listener is still
/// usable.
fn accept_ready(
    a: &mut Acceptor,
    lidx: usize,
    idx: usize,
    shared: &ReactorShared,
    nonblocking: bool,
    adopted: &mut Vec<(u64, TcpStream, ProtocolKind)>,
) -> bool {
    let Some((listener, proto)) = a.listeners.get(lidx).and_then(Option::as_ref) else {
        return false; // stale event for a retired listener
    };
    let proto = *proto;
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nodelay(true);
                // accept(2) does not inherit the listener's nonblocking
                // flag on Linux, so each mode sets what it needs.
                if nonblocking && stream.set_nonblocking(true).is_err() {
                    continue; // connection dies; client sees a close
                }
                if let Some(bytes) = shared.sndbuf_bytes {
                    // Best-effort: a failed shrink just means the kernel
                    // default stays, which is always safe.
                    let _ = mio::set_send_buffer(stream.as_raw_fd(), bytes);
                }
                let Ok(write_half) = stream.try_clone() else {
                    continue;
                };
                shared.stats.connections.fetch_add(1, Ordering::Relaxed);
                shared.stats.proto_conns[proto.index()].fetch_add(1, Ordering::Relaxed);
                let conn = a.next_conn;
                a.next_conn += 1;
                // Open must reach the SD plane before any response (or
                // drop-answer) for this connection can.
                shared.sd.send_open(conn, write_half);
                let target = (conn as usize) % a.peers.len();
                if target == idx {
                    adopted.push((conn, stream, proto));
                } else {
                    let _ = a.peers[target].send(ReactorCmd::Register {
                        conn,
                        stream,
                        proto,
                    });
                    let _ = a.peer_wakers[target].wake();
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return true,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            // A peer that aborted while queued is its problem, not the
            // listener's: under a connect storm ECONNABORTED is routine
            // and must not retire the accept path.
            Err(e) if e.kind() == std::io::ErrorKind::ConnectionAborted => continue,
            Err(_) => return false,
        }
    }
}

fn register_conn(
    poll: &Poll,
    conns: &mut HashMap<usize, ConnState>,
    conn: u64,
    stream: TcpStream,
    proto: ProtocolKind,
    shared: &ReactorShared,
) {
    let tok = CONN_TOKEN_BASE + conn as usize;
    if poll
        .registry()
        .register(&stream, Token(tok), Interest::READABLE)
        .is_err()
    {
        // Unwatchable: retire immediately so the SD writer closes it.
        shared.sd.send_eof(conn, 0);
        return;
    }
    conns.insert(
        tok,
        ConnState {
            conn,
            stream,
            reader: FrameReader::with_proto(proto),
            proto,
            seq: 0,
            paused: false,
        },
    );
    shared.stats.reactor_conns.fetch_add(1, Ordering::Relaxed);
}

/// Tag a carved burst with sequence numbers and push it into the
/// shared RX ring with one lock and one doorbell ring; the full-ring
/// tail stays in `tagged` and is answered with empty frames at drop
/// time so the connection's sequence numbering never gains a hole.
/// Shared verbatim by both backends — only how bytes reach the
/// [`FrameReader`] differs.
fn publish_burst(
    conn: u64,
    proto: ProtocolKind,
    seq: &mut u64,
    burst: &mut Vec<bytes::Bytes>,
    tagged: &mut Vec<TaggedFrame>,
    shared: &ReactorShared,
) {
    if burst.is_empty() {
        return;
    }
    shared.stats.record_read_burst(burst.len() as u64);
    tagged.clear();
    for frame in burst.drain(..) {
        tagged.push(TaggedFrame {
            conn,
            seq: *seq,
            proto,
            frame,
        });
        *seq += 1;
    }
    if shared.ring.push_burst(tagged) > 0 {
        shared.doorbell.ring();
    }
    if !tagged.is_empty() {
        shared
            .stats
            .dropped_frames
            .fetch_add(tagged.len() as u64, Ordering::Relaxed);
        shared.sd.overflow_answers(conn, tagged);
    }
}

/// RV work for one ready connection: burst-read, carve, tag, push into
/// the shared ring (drop-answering overflow), retire on EOF/error.
#[allow(clippy::too_many_arguments)]
fn handle_conn_ready(
    tok: usize,
    poll: &Poll,
    conns: &mut HashMap<usize, ConnState>,
    burst: &mut Vec<bytes::Bytes>,
    tagged: &mut Vec<TaggedFrame>,
    shared: &ReactorShared,
    sys: &mut u64,
) {
    let Some(c) = conns.get_mut(&tok) else {
        return; // already retired this pass (spurious/stale event)
    };
    burst.clear();
    let status = c.reader.read_ready(&mut c.stream, burst, READ_BUDGET, sys);
    publish_burst(c.conn, c.proto, &mut c.seq, burst, tagged, shared);
    if !matches!(status, Ok(ReadReady::Open)) {
        // Clean EOF, mid-frame EOF, or a fatal read/frame error: either
        // way the connection is done producing frames.
        let c = conns.remove(&tok).expect("conn just found");
        if !c.paused {
            let _ = poll.registry().deregister(&c.stream);
        }
        shared.sd.send_eof(c.conn, c.seq);
        shared.stats.reactor_conns.fetch_sub(1, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------
// io_uring backend: batched-submission RV loop.
//
// Where the epoll loop pays one `epoll_wait` plus one `read` per ready
// connection per wakeup, this loop keeps one recv SQE in flight per
// connection (targeting the connection's `FrameReader` window) and
// reaps a whole batch of completions with a single `io_uring_enter`.
// The waker eventfd and the listener are folded into the same ring via
// one-shot `POLL_ADD` SQEs, re-armed after each completion, so the
// thread blocks in exactly one place. Everything downstream of the
// reader — carving, tagging, `push_burst`, overflow answering, EOF
// retirement — is shared verbatim with the epoll path.

/// CQE user-data kind tags (top 8 bits; low 56 bits carry the conn id
/// for `RECV`).
const UD_KIND_SHIFT: u32 = 56;
const UD_DATA_MASK: u64 = (1 << UD_KIND_SHIFT) - 1;
const UD_WAKER: u64 = 1;
const UD_LISTENER: u64 = 2;
const UD_RECV: u64 = 3;
const UD_CANCEL: u64 = 4;

fn ud(kind: u64, data: u64) -> u64 {
    (kind << UD_KIND_SHIFT) | (data & UD_DATA_MASK)
}

// Raw errnos the CQE paths discriminate on (CQE `res` is a negated
// errno; there is no `io::Error` to match kinds against).
const ECANCELED: i32 = 125;
const EAGAIN: i32 = 11;
const EINTR_RAW: i32 = 4;

/// SQ slots per reactor ring. Arms (recv re-arms, poll re-arms,
/// cancels) are pushed incrementally and flushed whenever the queue
/// fills, so this bounds batching, not connection count.
const URING_SQ: u32 = 1024;
/// CQ slots; sized above the SQ so completion bursts from thousands of
/// armed connections do not hit the kernel's overflow path in steady
/// state (`FEAT_NODROP` keeps even that lossless).
const URING_CQ: u32 = 4096;

/// Per-connection state in the uring reactor. No `paused`/epoll
/// registration pair here: backpressure simply stops re-arming the
/// recv, and resume arms it again.
struct UringConn {
    conn: u64,
    stream: TcpStream,
    reader: FrameReader,
    /// The protocol the connection's listener speaks.
    proto: ProtocolKind,
    /// Next sequence number to assign to a carved frame.
    seq: u64,
    /// READ interest paused by SD backpressure: completions still
    /// commit (one in-flight window may land after the pause), but the
    /// recv is not re-armed until resume.
    paused: bool,
    /// A recv SQE is in flight; its window owns the reader's tail.
    recv_inflight: bool,
}

/// Push a recv SQE for `c`'s next reader window, flushing the SQ when
/// full. An `Err` means the ring itself is broken (fatal for the
/// reactor).
fn arm_recv(ring: &mut uring::Uring, c: &mut UringConn, inflight: &mut u64) -> std::io::Result<()> {
    let (ptr, len) = c.reader.begin_recv();
    let fd = c.stream.as_raw_fd();
    // SAFETY: the window stays valid until the CQE is handled —
    // `recv_inflight` gates every other touch of this reader, and
    // teardown drains in-flight ops before freeing connections.
    while !unsafe { ring.push_recv(fd, ptr, len, ud(UD_RECV, c.conn)) } {
        ring.submit()?;
    }
    c.recv_inflight = true;
    *inflight += 1;
    Ok(())
}

/// Push a one-shot `POLL_ADD` readable watch, flushing the SQ when
/// full.
fn arm_poll_in(
    ring: &mut uring::Uring,
    fd: std::os::fd::RawFd,
    user_data: u64,
    inflight: &mut u64,
) -> std::io::Result<()> {
    while !ring.push_poll_add(fd, uring::POLL_IN, user_data) {
        ring.submit()?;
    }
    *inflight += 1;
    Ok(())
}

/// Retire a uring-side connection: EOF to the SD plane (which owns the
/// write half and the close) and drop the read state.
fn retire_uring_conn(conns: &mut HashMap<u64, UringConn>, conn: u64, shared: &ReactorShared) {
    if let Some(c) = conns.remove(&conn) {
        shared.sd.send_eof(c.conn, c.seq);
        shared.stats.reactor_conns.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Adopt a connection into the uring reactor: insert state and arm its
/// first recv. A ring failure retires it immediately (EOF) so the SD
/// plane closes the socket.
#[allow(clippy::too_many_arguments)]
fn register_conn_uring(
    ring: &mut uring::Uring,
    conns: &mut HashMap<u64, UringConn>,
    conn: u64,
    stream: TcpStream,
    proto: ProtocolKind,
    shared: &ReactorShared,
    inflight: &mut u64,
) {
    let mut c = UringConn {
        conn,
        stream,
        reader: FrameReader::with_proto(proto),
        proto,
        seq: 0,
        paused: false,
        recv_inflight: false,
    };
    if arm_recv(ring, &mut c, inflight).is_err() {
        shared.sd.send_eof(conn, 0);
        return;
    }
    conns.insert(conn, c);
    shared.stats.reactor_conns.fetch_add(1, Ordering::Relaxed);
}

/// Handle one recv completion: commit the window, publish the carved
/// burst, and re-arm — or retire on EOF/error. Mirrors
/// `handle_conn_ready` outcome-for-outcome so the reactor-plane test
/// suite holds on both backends.
#[allow(clippy::too_many_arguments)]
fn handle_recv_cqe(
    ring: &mut uring::Uring,
    conns: &mut HashMap<u64, UringConn>,
    conn: u64,
    res: i32,
    burst: &mut Vec<bytes::Bytes>,
    tagged: &mut Vec<TaggedFrame>,
    shared: &ReactorShared,
    inflight: &mut u64,
) {
    let Some(c) = conns.get_mut(&conn) else {
        return; // raced with retirement (e.g. a canceled teardown op)
    };
    c.recv_inflight = false;
    if res < 0 {
        c.reader.abort_recv();
        match -res {
            // Canceled: pause/teardown decided this recv should not
            // land; the conn stays (teardown retires it separately).
            ECANCELED => return,
            // Spurious wakeups: re-arm unless paused.
            EAGAIN | EINTR_RAW => {
                if !c.paused && arm_recv(ring, c, inflight).is_err() {
                    retire_uring_conn(conns, conn, shared);
                }
                return;
            }
            // Fatal socket error (reset, aborted, …): done producing.
            _ => {
                retire_uring_conn(conns, conn, shared);
                return;
            }
        }
    }
    burst.clear();
    let status = c.reader.complete_recv(res as usize, burst);
    publish_burst(c.conn, c.proto, &mut c.seq, burst, tagged, shared);
    match status {
        Ok(ReadReady::Open) => {
            if !c.paused && arm_recv(ring, c, inflight).is_err() {
                retire_uring_conn(conns, conn, shared);
            }
        }
        // Clean EOF, mid-frame EOF, or a frame error: retire, exactly
        // like the epoll path.
        _ => retire_uring_conn(conns, conn, shared),
    }
}

/// The uring reactor loop. `_poll` is kept alive (unused) so the
/// scaffold's waker registration outlives the thread; the waker's
/// eventfd is watched through the ring instead.
fn run_reactor_uring(
    idx: usize,
    _poll: Poll,
    waker: Arc<Waker>,
    cmd_rx: Receiver<ReactorCmd>,
    mut acceptor: Option<Acceptor>,
    shared: &ReactorShared,
) {
    let mut conns: HashMap<u64, UringConn> = HashMap::new();
    let mut burst: Vec<bytes::Bytes> = Vec::new();
    let mut tagged: Vec<TaggedFrame> = Vec::new();
    let mut adopted: Vec<(u64, TcpStream, ProtocolKind)> = Vec::new();
    let mut cqes: Vec<uring::Cqe> = Vec::with_capacity(URING_CQ as usize);
    // Outstanding SQEs (recvs + poll watches + cancels): teardown must
    // drain this to zero before connection buffers may be freed.
    let mut inflight: u64 = 0;
    let waker_fd = waker.as_raw_fd();

    // The probe passed at spawn, so ring setup failing here is a local
    // resource problem (fd limits); behave like an immediate shutdown
    // so accepted work is EOF'd rather than wedged.
    let ring = uring::Uring::new(URING_SQ, URING_CQ);
    let mut ring = match ring {
        Ok(r) => r,
        Err(_) => {
            for (_, c) in conns.drain() {
                shared.sd.send_eof(c.conn, c.seq);
            }
            while let Ok(cmd) = cmd_rx.try_recv() {
                if let ReactorCmd::Register { conn, .. } = cmd {
                    shared.sd.send_eof(conn, 0);
                }
            }
            return;
        }
    };

    let mut fatal = arm_poll_in(&mut ring, waker_fd, ud(UD_WAKER, 0), &mut inflight).is_err();
    if !fatal {
        if let Some(a) = acceptor.as_ref() {
            // One POLL_ADD per front door; the CQE's user-data low bits
            // carry the listener index.
            for (lidx, slot) in a.listeners.iter().enumerate() {
                if let Some((listener, _)) = slot {
                    if arm_poll_in(
                        &mut ring,
                        listener.as_raw_fd(),
                        ud(UD_LISTENER, lidx as u64),
                        &mut inflight,
                    )
                    .is_err()
                    {
                        fatal = true;
                        break;
                    }
                }
            }
        }
    }

    while !fatal {
        let enters_before = ring.enters();
        if ring.submit_and_wait(1, Some(POLL_TIMEOUT)).is_err() {
            break;
        }
        cqes.clear();
        ring.reap(&mut cqes);
        shared
            .stats
            .ring_enters
            .fetch_add(ring.enters() - enters_before, Ordering::Relaxed);
        if !cqes.is_empty() {
            shared.stats.reactor_wakeups.fetch_add(1, Ordering::Relaxed);
            shared.stats.record_cqe_batch(cqes.len() as u64);
        }
        if shared.shutdown.load(Ordering::Acquire) {
            // The just-reaped batch is not getting processed; settle
            // its accounting so the teardown drain below terminates as
            // soon as the remaining (truly in-flight) ops complete.
            for cqe in &cqes {
                inflight -= 1;
                if cqe.user_data >> UD_KIND_SHIFT == UD_RECV {
                    if let Some(c) = conns.get_mut(&(cqe.user_data & UD_DATA_MASK)) {
                        c.recv_inflight = false;
                        c.reader.abort_recv();
                    }
                }
            }
            break;
        }
        let mut rearm_waker = false;
        // Bitmask of listener indices whose POLL_ADD completed this
        // pass (MAX_LISTENERS ≤ 15, so a u64 is plenty).
        let mut rearm_listeners = 0u64;
        for &cqe in &cqes {
            inflight -= 1;
            match cqe.user_data >> UD_KIND_SHIFT {
                UD_WAKER => {
                    // POLL_ADD consumes nothing: reset the eventfd by
                    // hand, then re-arm below (after the drain, so a
                    // wake posted in between still completes promptly —
                    // readiness is level-based at arm time).
                    uring::drain_notify_fd(waker_fd);
                    rearm_waker = true;
                }
                UD_LISTENER => rearm_listeners |= 1 << (cqe.user_data & UD_DATA_MASK),
                UD_RECV => handle_recv_cqe(
                    &mut ring,
                    &mut conns,
                    cqe.user_data & UD_DATA_MASK,
                    cqe.res,
                    &mut burst,
                    &mut tagged,
                    shared,
                    &mut inflight,
                ),
                _ => {} // a cancel op's own completion
            }
        }
        for lidx in 0..MAX_LISTENERS {
            if rearm_listeners & (1 << lidx) == 0 {
                continue;
            }
            let Some(a) = acceptor.as_mut() else { break };
            adopted.clear();
            let alive = accept_ready(a, lidx, idx, shared, false, &mut adopted);
            for (conn, stream, proto) in adopted.drain(..) {
                register_conn_uring(
                    &mut ring,
                    &mut conns,
                    conn,
                    stream,
                    proto,
                    shared,
                    &mut inflight,
                );
            }
            if !alive {
                // Retire this front door; the rest keep accepting.
                a.listeners[lidx] = None;
                if !a.any_alive() {
                    acceptor = None;
                }
            } else if let Some((listener, _)) = a.listeners[lidx].as_ref() {
                if arm_poll_in(
                    &mut ring,
                    listener.as_raw_fd(),
                    ud(UD_LISTENER, lidx as u64),
                    &mut inflight,
                )
                .is_err()
                {
                    fatal = true;
                }
            }
        }
        if rearm_waker && arm_poll_in(&mut ring, waker_fd, ud(UD_WAKER, 0), &mut inflight).is_err()
        {
            fatal = true;
        }
        // Commands are drained every pass (wakeups coalesce), exactly
        // like the epoll loop.
        while let Ok(cmd) = cmd_rx.try_recv() {
            match cmd {
                ReactorCmd::Register {
                    conn,
                    stream,
                    proto,
                } => {
                    register_conn_uring(
                        &mut ring,
                        &mut conns,
                        conn,
                        stream,
                        proto,
                        shared,
                        &mut inflight,
                    );
                }
                ReactorCmd::SetRead { conn, resume } => {
                    if let Some(c) = conns.get_mut(&conn) {
                        if resume && c.paused {
                            c.paused = false;
                            if !c.recv_inflight && arm_recv(&mut ring, c, &mut inflight).is_err() {
                                retire_uring_conn(&mut conns, conn, shared);
                            }
                        } else if !resume {
                            c.paused = true;
                        }
                    }
                }
            }
        }
    }

    // Teardown. The kernel owns every in-flight recv's buffer until its
    // CQE arrives (even a canceled op completes), so: cancel everything,
    // drain the ring to zero in-flight, and only then drop connection
    // state. If the drain cannot finish, the affected readers are
    // leaked rather than freed out from under a pending DMA-style
    // write.
    let mut cancels: Vec<u64> = Vec::new();
    cancels.push(ud(UD_WAKER, 0));
    if let Some(a) = acceptor.as_ref() {
        for (lidx, slot) in a.listeners.iter().enumerate() {
            if slot.is_some() {
                cancels.push(ud(UD_LISTENER, lidx as u64));
            }
        }
    }
    for c in conns.values() {
        if c.recv_inflight {
            cancels.push(ud(UD_RECV, c.conn));
        }
    }
    for target in cancels {
        while !ring.push_cancel(target, ud(UD_CANCEL, 0)) {
            if ring.submit().is_err() {
                break;
            }
        }
        inflight += 1;
    }
    let deadline = std::time::Instant::now() + Duration::from_secs(2);
    while inflight > 0 && std::time::Instant::now() < deadline {
        if ring
            .submit_and_wait(1, Some(Duration::from_millis(100)))
            .is_err()
        {
            break;
        }
        cqes.clear();
        ring.reap(&mut cqes);
        for cqe in &cqes {
            inflight = inflight.saturating_sub(1);
            if cqe.user_data >> UD_KIND_SHIFT == UD_RECV {
                if let Some(c) = conns.get_mut(&(cqe.user_data & UD_DATA_MASK)) {
                    // Close the window; the bytes (if any) are moot —
                    // dispatchers drain the ring after reactors join,
                    // but this conn is about to be EOF'd at its current
                    // seq anyway.
                    c.recv_inflight = false;
                    c.reader.abort_recv();
                }
            }
        }
    }
    let live = conns.len() as u64;
    for (_, c) in conns.drain() {
        shared.sd.send_eof(c.conn, c.seq);
        if c.recv_inflight {
            // Undrained in-flight op: leak the reader so its window
            // stays allocated for as long as the process lives.
            std::mem::forget(c.reader);
        }
    }
    shared
        .stats
        .reactor_conns
        .fetch_sub(live, Ordering::Relaxed);
    while let Ok(cmd) = cmd_rx.try_recv() {
        if let ReactorCmd::Register { conn, .. } = cmd {
            shared.sd.send_eof(conn, 0);
        }
    }
}
