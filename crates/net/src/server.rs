//! A real TCP front-end for the key-value store.
//!
//! The simulator models the paper's UDP/10GbE data path; this module
//! makes the store usable as an actual network service: query frames
//! (the same wire format as [`crate::parse_frame`]) travel over TCP with
//! a 4-byte little-endian length prefix, and each request frame is
//! answered by one response frame.
//!
//! The server is deliberately simple — blocking I/O, one thread per
//! connection — because the interesting concurrency lives in the
//! pipeline executors, not the socket layer.

use crate::protocol::{encode_responses, parse_frame, ProtocolError};
use bytes::Bytes;
use dido_model::{Query, Response};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Maximum accepted frame size (prevents a bad client from making the
/// server allocate unboundedly).
pub const MAX_FRAME_BYTES: usize = 4 << 20;

/// Server statistics.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Connections accepted.
    pub connections: AtomicU64,
    /// Query frames served.
    pub frames: AtomicU64,
    /// Individual queries answered.
    pub queries: AtomicU64,
    /// Malformed frames rejected.
    pub bad_frames: AtomicU64,
}

/// A running key-value TCP server.
///
/// The `handler` receives each decoded query batch and returns the
/// responses in order — typically a closure over a
/// `dido_pipeline::KvEngine` or a `dido::DidoSystem`.
pub struct KvServer {
    addr: SocketAddr,
    stats: Arc<ServerStats>,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl KvServer {
    /// Bind to `addr` (use port 0 for an ephemeral port) and start
    /// serving with `handler`.
    pub fn start<F>(addr: &str, handler: F) -> std::io::Result<KvServer>
    where
        F: Fn(Vec<Query>) -> Vec<Response> + Send + Sync + 'static,
    {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stats = Arc::new(ServerStats::default());
        let shutdown = Arc::new(AtomicBool::new(false));
        let handler = Arc::new(handler);

        let accept_stats = Arc::clone(&stats);
        let accept_shutdown = Arc::clone(&shutdown);
        let accept_thread = std::thread::spawn(move || {
            // Nonblocking accept loop so shutdown is observed promptly.
            listener
                .set_nonblocking(true)
                .expect("nonblocking listener");
            let mut workers = Vec::new();
            while !accept_shutdown.load(Ordering::Acquire) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        accept_stats.connections.fetch_add(1, Ordering::Relaxed);
                        let stats = Arc::clone(&accept_stats);
                        let handler = Arc::clone(&handler);
                        let shutdown = Arc::clone(&accept_shutdown);
                        workers.push(std::thread::spawn(move || {
                            let _ = serve_connection(stream, &stats, &shutdown, &*handler);
                        }));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(std::time::Duration::from_millis(5));
                    }
                    Err(_) => break,
                }
            }
            for w in workers {
                let _ = w.join();
            }
        });

        Ok(KvServer {
            addr: local,
            stats,
            shutdown,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (resolves ephemeral ports).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Server statistics.
    #[must_use]
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// Signal shutdown and wait for the accept loop to finish.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::Release);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for KvServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

fn serve_connection<F>(
    mut stream: TcpStream,
    stats: &ServerStats,
    shutdown: &AtomicBool,
    handler: &F,
) -> std::io::Result<()>
where
    F: Fn(Vec<Query>) -> Vec<Response>,
{
    stream.set_read_timeout(Some(std::time::Duration::from_millis(100)))?;
    loop {
        if shutdown.load(Ordering::Acquire) {
            return Ok(());
        }
        let frame = match read_frame(&mut stream) {
            Ok(Some(f)) => f,
            Ok(None) => return Ok(()), // clean EOF
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue
            }
            Err(e) => return Err(e),
        };
        match parse_frame(&frame) {
            Ok(queries) => {
                stats.frames.fetch_add(1, Ordering::Relaxed);
                stats
                    .queries
                    .fetch_add(queries.len() as u64, Ordering::Relaxed);
                let responses = handler(queries);
                write_frame(&mut stream, &encode_responses(&responses))?;
            }
            Err(_) => {
                stats.bad_frames.fetch_add(1, Ordering::Relaxed);
                // Answer malformed frames with an empty response frame
                // rather than killing the connection.
                write_frame(&mut stream, &encode_responses(&[]))?;
            }
        }
    }
}

fn read_frame(stream: &mut TcpStream) -> std::io::Result<Option<Bytes>> {
    let mut len_buf = [0u8; 4];
    match stream.read(&mut len_buf)? {
        0 => return Ok(None),
        4 => {}
        mut got => {
            // Short read of the prefix: finish it (blocking-ish).
            while got < 4 {
                let n = stream.read(&mut len_buf[got..])?;
                if n == 0 {
                    return Ok(None);
                }
                got += n;
            }
        }
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "frame too large",
        ));
    }
    let mut buf = vec![0u8; len];
    let mut read = 0;
    while read < len {
        match stream.read(&mut buf[read..]) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "mid-frame EOF",
                ))
            }
            Ok(n) => read += n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue
            }
            Err(e) => return Err(e),
        }
    }
    Ok(Some(Bytes::from(buf)))
}

fn write_frame(stream: &mut TcpStream, frame: &Bytes) -> std::io::Result<()> {
    stream.write_all(&(frame.len() as u32).to_le_bytes())?;
    stream.write_all(frame)?;
    stream.flush()
}

/// A blocking client for [`KvServer`].
#[derive(Debug)]
pub struct KvClient {
    stream: TcpStream,
}

impl KvClient {
    /// Connect to a server.
    pub fn connect(addr: SocketAddr) -> std::io::Result<KvClient> {
        Ok(KvClient {
            stream: TcpStream::connect(addr)?,
        })
    }

    /// Send a batch of queries and wait for the responses.
    pub fn request(&mut self, queries: &[Query]) -> std::io::Result<Vec<Response>> {
        let frame = {
            let mut b = crate::protocol::FrameBuilder::with_capacity(MAX_FRAME_BYTES);
            for q in queries {
                if !b.push(q) {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidInput,
                        "batch exceeds the maximum frame size",
                    ));
                }
            }
            b.finish()
        };
        write_frame(&mut self.stream, &frame)?;
        let reply = read_frame(&mut self.stream)?.ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "server closed")
        })?;
        crate::protocol::parse_responses(&reply).map_err(|e: ProtocolError| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, format!("{e:?}"))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dido_model::{QueryOp, ResponseStatus};
    use parking_lot::Mutex;
    use std::collections::HashMap;

    fn echo_store_server() -> KvServer {
        // A tiny in-memory map suffices to exercise the wire path.
        let map: Mutex<HashMap<Vec<u8>, Vec<u8>>> = Mutex::new(HashMap::new());
        KvServer::start("127.0.0.1:0", move |queries| {
            let mut map = map.lock();
            queries
                .iter()
                .map(|q| match q.op {
                    QueryOp::Set => {
                        map.insert(q.key.to_vec(), q.value.to_vec());
                        Response::ok()
                    }
                    QueryOp::Get => match map.get(&q.key.to_vec()) {
                        Some(v) => Response::hit(v.clone()),
                        None => Response::not_found(),
                    },
                    QueryOp::Delete => {
                        if map.remove(&q.key.to_vec()).is_some() {
                            Response::ok()
                        } else {
                            Response::not_found()
                        }
                    }
                })
                .collect()
        })
        .expect("bind ephemeral port")
    }

    #[test]
    fn round_trip_over_tcp() {
        let server = echo_store_server();
        let mut client = KvClient::connect(server.addr()).unwrap();
        let rs = client
            .request(&[
                Query::set("tcp-key", "tcp-value"),
                Query::get("tcp-key"),
                Query::get("absent"),
                Query::delete("tcp-key"),
            ])
            .unwrap();
        assert_eq!(rs.len(), 4);
        assert_eq!(rs[0].status, ResponseStatus::Ok);
        assert_eq!(&rs[1].value[..], b"tcp-value");
        assert_eq!(rs[2].status, ResponseStatus::NotFound);
        assert_eq!(rs[3].status, ResponseStatus::Ok);
        assert_eq!(server.stats().queries.load(Ordering::Relaxed), 4);
        server.shutdown();
    }

    #[test]
    fn multiple_clients_share_one_store() {
        let server = echo_store_server();
        let mut a = KvClient::connect(server.addr()).unwrap();
        let mut b = KvClient::connect(server.addr()).unwrap();
        a.request(&[Query::set("shared", "from-a")]).unwrap();
        let rs = b.request(&[Query::get("shared")]).unwrap();
        assert_eq!(&rs[0].value[..], b"from-a");
        assert_eq!(server.stats().connections.load(Ordering::Relaxed), 2);
        server.shutdown();
    }

    #[test]
    fn malformed_frames_get_empty_response_not_disconnect() {
        let server = echo_store_server();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        // A frame claiming 1 record but truncated.
        let garbage = [1u8, 0]; // count=1, nothing else
        stream
            .write_all(&(garbage.len() as u32).to_le_bytes())
            .unwrap();
        stream.write_all(&garbage).unwrap();
        stream.flush().unwrap();
        let reply = read_frame(&mut stream).unwrap().expect("empty frame reply");
        let rs = crate::protocol::parse_responses(&reply).unwrap();
        assert!(rs.is_empty());
        assert_eq!(server.stats().bad_frames.load(Ordering::Relaxed), 1);
        // Connection still usable.
        let mut client = KvClient { stream };
        let rs = client.request(&[Query::get("x")]).unwrap();
        assert_eq!(rs[0].status, ResponseStatus::NotFound);
        server.shutdown();
    }

    #[test]
    fn oversized_batches_are_rejected_client_side() {
        let server = echo_store_server();
        let mut client = KvClient::connect(server.addr()).unwrap();
        let huge: Vec<Query> = (0..8)
            .map(|i| Query::set(format!("k{i}"), vec![b'x'; MAX_FRAME_BYTES / 4]))
            .collect();
        let err = client.request(&huge).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
        server.shutdown();
    }
}
