//! A real TCP front-end for the key-value store.
//!
//! Query frames (the same wire format as [`crate::parse_frame`]) travel
//! over TCP with a 4-byte little-endian length prefix, and each request
//! frame is answered by exactly one response frame, in order.
//!
//! Two data paths are offered (see [`DispatchMode`]):
//!
//! * **Per-connection** — the seed design: blocking I/O, one thread per
//!   connection, each frame runs the whole pipeline alone. Simple, and
//!   the baseline the `netpath` harness measures against.
//! * **Batched** — the paper's RV/SD topology mapped onto TCP.
//!   A fixed pool of reactor threads (see [`crate::reactor`]) does
//!   framing *only* (the `RV` task): each reactor runs a readiness
//!   loop over its share of the connections, burst-reads every ready
//!   socket nonblockingly, and pushes `(conn, seq, frame)` into a
//!   shared [`FrameRing`]; dispatcher threads drain the ring across
//!   *all* connections, decode one
//!   combined wavefront-aligned query batch, run the engine **once**,
//!   and scatter encoded responses into per-SD-shard run batches.
//!   A sharded egress plane (the `SD` task — see [`crate::sd`])
//!   restores per-connection order by sequence number and coalesces
//!   every ready response into vectored writes, with write-side
//!   readiness, pooled response buffers, and slow-consumer
//!   backpressure. An adaptive drain
//!   window trades batch size against latency exactly like the paper's
//!   Figures 9–10: dispatch immediately once at least one wavefront of
//!   queries is pending, else wait up to
//!   [`BatchConfig::max_batch_delay`] for more frames.

use crate::codec::{
    decode_request, encode_reply_into, request_query_estimate, ProtocolKind, RequestMeta,
    PROTOCOL_KINDS,
};
use crate::nic::FrameRing;
use crate::protocol::ProtocolError;
use crate::sd::{ResponseRun, RunBatch, SdPlane};
use bytes::{Bytes, BytesMut};
use dido_model::{Query, Response, SharedClock, SystemClock};
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, VecDeque};
use std::io::{IoSlice, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Maximum accepted frame size (prevents a bad client from making the
/// server allocate unboundedly).
pub const MAX_FRAME_BYTES: usize = 4 << 20;

/// Buckets of the dispatch batch-size histogram: frames per dispatch in
/// `1, 2, 3–4, 5–8, 9–16, 17–32, 33–64, 65+`.
pub const BATCH_HIST_BUCKETS: usize = 8;

/// Read-timeout used to poll the shutdown flag between frames.
const READ_POLL: Duration = Duration::from_millis(100);

/// How long an idle dispatcher sleeps between doorbell checks.
const IDLE_WAIT: Duration = Duration::from_millis(5);

/// Bytes one socket read may pull into the frame reader's buffer. Large
/// enough that a pipelined client's whole burst of small frames arrives
/// in one syscall.
pub(crate) const READ_CHUNK: usize = 16 << 10;

/// Longest a blocking-style writer (the per-connection path and
/// [`KvClient`]) parks waiting for a stalled socket to become writable
/// again, mirroring the SD plane's default per-connection stall
/// deadline: a wedged peer costs its own writer thread five seconds,
/// then only that connection is retired (counted in
/// [`ServerStats::write_stall_retired`]). The batched path's SD egress
/// plane does **not** use this — it parks stalled connections on
/// WRITABLE readiness with the per-connection
/// [`BatchConfig::sd_stall_timeout`] deadline instead.
const WRITE_STALL: Duration = Duration::from_secs(5);

fn is_poll_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// Server statistics. All counters are cumulative since start; take a
/// [`ServerStats::snapshot`] and diff to get per-interval rates.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Connections accepted.
    pub connections: AtomicU64,
    /// Query frames served.
    pub frames: AtomicU64,
    /// Individual queries answered.
    pub queries: AtomicU64,
    /// Malformed frames rejected.
    pub bad_frames: AtomicU64,
    /// Frames dropped because the shared RX ring was full (batched
    /// mode; each one is answered with an empty response frame so the
    /// client's request/response accounting stays aligned).
    pub dropped_frames: AtomicU64,
    /// Dispatcher drains executed (batched mode).
    pub dispatches: AtomicU64,
    /// Frames aggregated across all dispatches.
    pub dispatched_frames: AtomicU64,
    /// Queries aggregated across all dispatches.
    pub dispatched_queries: AtomicU64,
    /// Deepest RX-ring occupancy observed at drain time.
    pub ring_depth_max: AtomicU64,
    /// Dispatches that waited out the full drain window without
    /// accumulating a wavefront (the latency-bound regime of Fig. 9).
    pub delayed_dispatches: AtomicU64,
    /// Reactor threads serving the batched data path (set at spawn; 0
    /// in per-connection mode).
    pub reactor_threads: AtomicU64,
    /// Readiness wakeups across all reactors (poll returns with at
    /// least one event).
    pub reactor_wakeups: AtomicU64,
    /// Connections currently registered with a reactor (a gauge, not a
    /// cumulative counter).
    pub reactor_conns: AtomicU64,
    /// Connections currently open inside the SD writer (a gauge): every
    /// accepted connection enters here and leaves when it is retired,
    /// so a steady value under churn means no reorder-buffer leak.
    pub sd_open_conns: AtomicU64,
    /// Response runs the SD writer freed without putting them on the
    /// wire: the socket died mid-stream, or runs were still parked in
    /// the reorder buffer when the connection was retired or the server
    /// shut down. A leak-detector counter — these bytes used to linger
    /// in `pending` until teardown.
    pub sd_pending_dropped: AtomicU64,
    /// SD egress shard threads (set at spawn; 0 in per-connection
    /// mode). A gauge, like `reactor_threads`.
    pub sd_writer_threads: AtomicU64,
    /// Connections retired because they stayed unwritable past
    /// [`BatchConfig::sd_stall_timeout`].
    pub sd_stall_retired: AtomicU64,
    /// Times a connection's write hit `WouldBlock` and was parked on
    /// WRITABLE readiness instead of blocking its SD shard.
    pub sd_writable_parks: AtomicU64,
    /// Times slow-consumer backpressure paused a connection's READ
    /// interest (pending bytes crossed the high-water mark).
    pub sd_read_pauses: AtomicU64,
    /// Encode buffers served from an SD shard's reuse ring.
    pub sd_buf_hits: AtomicU64,
    /// Encode buffers that had to be freshly allocated (ring dry).
    pub sd_buf_misses: AtomicU64,
    /// Deepest per-connection pending-bytes backlog observed by the SD
    /// plane (folds by max, like `ring_depth_max`).
    pub sd_pending_bytes_hiwater: AtomicU64,
    /// Which I/O backend the batched plane resolved at spawn (a gauge:
    /// 0 = epoll, 1 = io_uring; see [`IoBackend`]).
    pub io_backend: AtomicU64,
    /// I/O-plane syscalls issued by reactors and SD shards: every
    /// `io_uring_enter` on the uring backend; every `epoll_wait`,
    /// `read`, and `writev` on the epoll backend. Divide by `queries`
    /// for the syscalls-per-query estimate the connpath harness
    /// reports.
    pub ring_enters: AtomicU64,
    /// Per-connection-mode peers retired because a response write
    /// stayed unwritable past the 5 s stall deadline (the batched
    /// plane's counterpart is `sd_stall_retired`).
    pub write_stall_retired: AtomicU64,
    /// Connections accepted per protocol, indexed by
    /// [`ProtocolKind::index`].
    pub proto_conns: [AtomicU64; PROTOCOL_KINDS],
    /// Queries decoded per protocol (a multi-key `get`/`MGET` counts
    /// once per key), indexed by [`ProtocolKind::index`].
    pub proto_queries: [AtomicU64; PROTOCOL_KINDS],
    /// Requests rejected with a per-protocol error reply (malformed
    /// frame, bad command line, bad data chunk), indexed by
    /// [`ProtocolKind::index`].
    pub proto_parse_errors: [AtomicU64; PROTOCOL_KINDS],
    batch_hist: [AtomicU64; BATCH_HIST_BUCKETS],
    read_burst_hist: [AtomicU64; BATCH_HIST_BUCKETS],
    cqe_per_enter_hist: [AtomicU64; BATCH_HIST_BUCKETS],
}

fn hist_bucket(frames: u64) -> usize {
    if frames <= 1 {
        0
    } else {
        ((64 - (frames - 1).leading_zeros()) as usize).min(BATCH_HIST_BUCKETS - 1)
    }
}

impl ServerStats {
    pub(crate) fn record_dispatch(
        &self,
        frames: u64,
        queries: u64,
        ring_depth: u64,
        delayed: bool,
    ) {
        self.dispatches.fetch_add(1, Ordering::Relaxed);
        self.dispatched_frames.fetch_add(frames, Ordering::Relaxed);
        self.dispatched_queries
            .fetch_add(queries, Ordering::Relaxed);
        self.ring_depth_max.fetch_max(ring_depth, Ordering::Relaxed);
        if delayed {
            self.delayed_dispatches.fetch_add(1, Ordering::Relaxed);
        }
        self.batch_hist[hist_bucket(frames)].fetch_add(1, Ordering::Relaxed);
    }

    /// The dispatch batch-size histogram (frames per dispatch, bucketed
    /// `1, 2, 3–4, …, 65+`).
    #[must_use]
    pub fn batch_histogram(&self) -> [u64; BATCH_HIST_BUCKETS] {
        std::array::from_fn(|i| self.batch_hist[i].load(Ordering::Relaxed))
    }

    pub(crate) fn record_read_burst(&self, frames: u64) {
        self.read_burst_hist[hist_bucket(frames)].fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_cqe_batch(&self, cqes: u64) {
        self.cqe_per_enter_hist[hist_bucket(cqes)].fetch_add(1, Ordering::Relaxed);
    }

    /// The uring backend's completions-per-enter histogram (CQEs reaped
    /// per `io_uring_enter`, bucketed like
    /// [`ServerStats::batch_histogram`]). All zeros on the epoll
    /// backend. High buckets mean one ring enter is amortizing many
    /// per-connection reads/writes.
    #[must_use]
    pub fn cqe_per_enter_histogram(&self) -> [u64; BATCH_HIST_BUCKETS] {
        std::array::from_fn(|i| self.cqe_per_enter_hist[i].load(Ordering::Relaxed))
    }

    /// The reactor read-burst histogram: frames carved per readiness
    /// read, bucketed like [`ServerStats::batch_histogram`]. High
    /// buckets mean readiness reads are amortizing framing well.
    #[must_use]
    pub fn read_burst_histogram(&self) -> [u64; BATCH_HIST_BUCKETS] {
        std::array::from_fn(|i| self.read_burst_hist[i].load(Ordering::Relaxed))
    }

    /// Mean frames aggregated per dispatch (0 when nothing dispatched).
    #[must_use]
    pub fn mean_batch_frames(&self) -> f64 {
        let d = self.dispatches.load(Ordering::Relaxed);
        if d == 0 {
            0.0
        } else {
            self.dispatched_frames.load(Ordering::Relaxed) as f64 / d as f64
        }
    }

    /// Plain-value copy of every counter, for diffing and for folding
    /// into `dido::Metrics`.
    #[must_use]
    pub fn snapshot(&self) -> NetStatsSnapshot {
        NetStatsSnapshot {
            connections: self.connections.load(Ordering::Relaxed),
            frames: self.frames.load(Ordering::Relaxed),
            queries: self.queries.load(Ordering::Relaxed),
            bad_frames: self.bad_frames.load(Ordering::Relaxed),
            dropped_frames: self.dropped_frames.load(Ordering::Relaxed),
            dispatches: self.dispatches.load(Ordering::Relaxed),
            dispatched_frames: self.dispatched_frames.load(Ordering::Relaxed),
            dispatched_queries: self.dispatched_queries.load(Ordering::Relaxed),
            ring_depth_max: self.ring_depth_max.load(Ordering::Relaxed),
            delayed_dispatches: self.delayed_dispatches.load(Ordering::Relaxed),
            reactor_threads: self.reactor_threads.load(Ordering::Relaxed),
            reactor_wakeups: self.reactor_wakeups.load(Ordering::Relaxed),
            reactor_conns: self.reactor_conns.load(Ordering::Relaxed),
            sd_open_conns: self.sd_open_conns.load(Ordering::Relaxed),
            sd_pending_dropped: self.sd_pending_dropped.load(Ordering::Relaxed),
            sd_writer_threads: self.sd_writer_threads.load(Ordering::Relaxed),
            sd_stall_retired: self.sd_stall_retired.load(Ordering::Relaxed),
            sd_writable_parks: self.sd_writable_parks.load(Ordering::Relaxed),
            sd_read_pauses: self.sd_read_pauses.load(Ordering::Relaxed),
            sd_buf_hits: self.sd_buf_hits.load(Ordering::Relaxed),
            sd_buf_misses: self.sd_buf_misses.load(Ordering::Relaxed),
            sd_pending_bytes_hiwater: self.sd_pending_bytes_hiwater.load(Ordering::Relaxed),
            io_backend: self.io_backend.load(Ordering::Relaxed),
            ring_enters: self.ring_enters.load(Ordering::Relaxed),
            write_stall_retired: self.write_stall_retired.load(Ordering::Relaxed),
            proto_conns: std::array::from_fn(|i| self.proto_conns[i].load(Ordering::Relaxed)),
            proto_queries: std::array::from_fn(|i| self.proto_queries[i].load(Ordering::Relaxed)),
            proto_parse_errors: std::array::from_fn(|i| {
                self.proto_parse_errors[i].load(Ordering::Relaxed)
            }),
            batch_hist: self.batch_histogram(),
            read_burst_hist: self.read_burst_histogram(),
            cqe_per_enter_hist: self.cqe_per_enter_histogram(),
        }
    }
}

/// Plain-value snapshot of [`ServerStats`] (see
/// [`ServerStats::snapshot`]).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct NetStatsSnapshot {
    /// Connections accepted.
    pub connections: u64,
    /// Query frames served.
    pub frames: u64,
    /// Individual queries answered.
    pub queries: u64,
    /// Malformed frames rejected.
    pub bad_frames: u64,
    /// Frames dropped on RX-ring overflow.
    pub dropped_frames: u64,
    /// Dispatcher drains executed.
    pub dispatches: u64,
    /// Frames aggregated across all dispatches.
    pub dispatched_frames: u64,
    /// Queries aggregated across all dispatches.
    pub dispatched_queries: u64,
    /// Deepest RX-ring occupancy observed at drain time.
    pub ring_depth_max: u64,
    /// Dispatches that waited out the full drain window.
    pub delayed_dispatches: u64,
    /// Reactor threads serving the batched data path.
    pub reactor_threads: u64,
    /// Readiness wakeups across all reactors.
    pub reactor_wakeups: u64,
    /// Connections registered with a reactor at snapshot time (gauge).
    pub reactor_conns: u64,
    /// Connections open inside the SD writer at snapshot time (gauge).
    pub sd_open_conns: u64,
    /// Response runs freed by the SD writer without being written.
    pub sd_pending_dropped: u64,
    /// SD egress shard threads (gauge).
    pub sd_writer_threads: u64,
    /// Connections retired by the per-connection stall deadline.
    pub sd_stall_retired: u64,
    /// Writes parked on WRITABLE readiness after `WouldBlock`.
    pub sd_writable_parks: u64,
    /// READ-interest pauses from slow-consumer backpressure.
    pub sd_read_pauses: u64,
    /// Encode buffers served from the SD reuse rings.
    pub sd_buf_hits: u64,
    /// Encode buffers freshly allocated (rings dry).
    pub sd_buf_misses: u64,
    /// Deepest per-connection pending-bytes backlog (folds by max).
    pub sd_pending_bytes_hiwater: u64,
    /// Resolved I/O backend (gauge: 0 = epoll, 1 = io_uring).
    pub io_backend: u64,
    /// I/O-plane syscalls (ring enters on uring; `epoll_wait` + `read`
    /// + `writev` on epoll).
    pub ring_enters: u64,
    /// Per-connection-mode peers retired at the write stall deadline.
    pub write_stall_retired: u64,
    /// Connections accepted per protocol ([`ProtocolKind::index`]).
    pub proto_conns: [u64; PROTOCOL_KINDS],
    /// Queries decoded per protocol ([`ProtocolKind::index`]).
    pub proto_queries: [u64; PROTOCOL_KINDS],
    /// Per-protocol parse-error replies ([`ProtocolKind::index`]).
    pub proto_parse_errors: [u64; PROTOCOL_KINDS],
    /// Frames-per-dispatch histogram (buckets `1, 2, 3–4, …, 65+`).
    pub batch_hist: [u64; BATCH_HIST_BUCKETS],
    /// Frames-per-readiness-read histogram (same buckets).
    pub read_burst_hist: [u64; BATCH_HIST_BUCKETS],
    /// CQEs-reaped-per-enter histogram (same buckets; uring only).
    pub cqe_per_enter_hist: [u64; BATCH_HIST_BUCKETS],
}

impl NetStatsSnapshot {
    /// Counter deltas since `earlier` (`ring_depth_max` and
    /// `sd_pending_bytes_hiwater` keep the max, not a difference;
    /// gauges — `reactor_threads`, `reactor_conns`, `sd_open_conns`,
    /// `sd_writer_threads`, `io_backend` — keep their current value).
    /// Use to fold
    /// per-interval activity into `dido::Metrics` without
    /// double-counting.
    #[must_use]
    pub fn delta_since(&self, earlier: &NetStatsSnapshot) -> NetStatsSnapshot {
        NetStatsSnapshot {
            connections: self.connections - earlier.connections,
            frames: self.frames - earlier.frames,
            queries: self.queries - earlier.queries,
            bad_frames: self.bad_frames - earlier.bad_frames,
            dropped_frames: self.dropped_frames - earlier.dropped_frames,
            dispatches: self.dispatches - earlier.dispatches,
            dispatched_frames: self.dispatched_frames - earlier.dispatched_frames,
            dispatched_queries: self.dispatched_queries - earlier.dispatched_queries,
            ring_depth_max: self.ring_depth_max.max(earlier.ring_depth_max),
            delayed_dispatches: self.delayed_dispatches - earlier.delayed_dispatches,
            reactor_threads: self.reactor_threads,
            reactor_wakeups: self.reactor_wakeups - earlier.reactor_wakeups,
            reactor_conns: self.reactor_conns,
            sd_open_conns: self.sd_open_conns,
            sd_pending_dropped: self.sd_pending_dropped - earlier.sd_pending_dropped,
            sd_writer_threads: self.sd_writer_threads,
            sd_stall_retired: self.sd_stall_retired - earlier.sd_stall_retired,
            sd_writable_parks: self.sd_writable_parks - earlier.sd_writable_parks,
            sd_read_pauses: self.sd_read_pauses - earlier.sd_read_pauses,
            sd_buf_hits: self.sd_buf_hits - earlier.sd_buf_hits,
            sd_buf_misses: self.sd_buf_misses - earlier.sd_buf_misses,
            sd_pending_bytes_hiwater: self
                .sd_pending_bytes_hiwater
                .max(earlier.sd_pending_bytes_hiwater),
            io_backend: self.io_backend,
            ring_enters: self.ring_enters - earlier.ring_enters,
            write_stall_retired: self.write_stall_retired - earlier.write_stall_retired,
            proto_conns: std::array::from_fn(|i| self.proto_conns[i] - earlier.proto_conns[i]),
            proto_queries: std::array::from_fn(|i| {
                self.proto_queries[i] - earlier.proto_queries[i]
            }),
            proto_parse_errors: std::array::from_fn(|i| {
                self.proto_parse_errors[i] - earlier.proto_parse_errors[i]
            }),
            batch_hist: std::array::from_fn(|i| self.batch_hist[i] - earlier.batch_hist[i]),
            read_burst_hist: std::array::from_fn(|i| {
                self.read_burst_hist[i] - earlier.read_burst_hist[i]
            }),
            cqe_per_enter_hist: std::array::from_fn(|i| {
                self.cqe_per_enter_hist[i] - earlier.cqe_per_enter_hist[i]
            }),
        }
    }
}

/// Which syscall backend the batched I/O plane should use.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum IoBackendChoice {
    /// Probe at spawn: io_uring when the kernel exposes a fully usable
    /// ring, else the epoll shim. The `DIDO_IO_BACKEND` environment
    /// variable (`uring` / `epoll`) overrides the probe, so test and
    /// CI runs can pin a backend without touching configs.
    #[default]
    Auto,
    /// Readiness-driven plane over the vendored epoll shim
    /// (`compat-mio`).
    Epoll,
    /// Batched-submission plane over the vendored io_uring binding
    /// (`compat-uring`); spawning fails with `Unsupported` when the
    /// kernel lacks io_uring rather than silently falling back.
    Uring,
}

/// The backend [`IoBackendChoice`] resolved to at spawn. Encoded into
/// the [`ServerStats::io_backend`] gauge as its discriminant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoBackend {
    /// Readiness-driven epoll plane (gauge value 0).
    Epoll = 0,
    /// Batched-submission io_uring plane (gauge value 1).
    Uring = 1,
}

impl IoBackend {
    /// Stable lowercase name (`"epoll"` / `"uring"`), as recorded in
    /// bench reports.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            IoBackend::Epoll => "epoll",
            IoBackend::Uring => "uring",
        }
    }

    /// Decode the [`ServerStats::io_backend`] gauge back to a name.
    #[must_use]
    pub fn name_of(gauge: u64) -> &'static str {
        if gauge == IoBackend::Uring as u64 {
            "uring"
        } else {
            "epoll"
        }
    }
}

impl From<IoBackend> for IoBackendChoice {
    /// Pin a resolved backend back into a config choice (never
    /// `Auto`), for harnesses that sweep both backends explicitly.
    fn from(backend: IoBackend) -> IoBackendChoice {
        match backend {
            IoBackend::Epoll => IoBackendChoice::Epoll,
            IoBackend::Uring => IoBackendChoice::Uring,
        }
    }
}

/// Whether the running kernel exposes a fully usable io_uring (cached
/// probe: setup, required features and opcodes, NOP round-trip).
#[must_use]
pub fn uring_available() -> bool {
    uring::available()
}

/// The backend matrix test suites and bench harnesses sweep: always
/// [`IoBackend::Epoll`], plus [`IoBackend::Uring`] when the kernel
/// probe finds a usable ring. Prints a skip notice to stderr when the
/// uring leg is dropped, so a green matrix log can't silently mean
/// "epoll passed twice".
///
/// `DIDO_IO_BACKEND=epoll|uring` pins the matrix to one leg — the CI
/// escape hatch (e.g. an epoll-only sanitizer run, or forcing the
/// uring leg so its skip is loud). A pinned `uring` on a kernel
/// without io_uring falls back to epoll with a notice: matrix callers
/// are test suites that must still run.
#[must_use]
pub fn backend_matrix() -> Vec<IoBackend> {
    match std::env::var("DIDO_IO_BACKEND").as_deref() {
        Ok("epoll") => return vec![IoBackend::Epoll],
        Ok("uring") => {
            if uring::available() {
                return vec![IoBackend::Uring];
            }
            eprintln!(
                "note: DIDO_IO_BACKEND=uring but kernel has no usable io_uring ({}); \
                 running the epoll leg only",
                uring::probe().reason
            );
            return vec![IoBackend::Epoll];
        }
        _ => {}
    }
    let mut backends = vec![IoBackend::Epoll];
    if uring::available() {
        backends.push(IoBackend::Uring);
    } else {
        eprintln!(
            "note: skipping io_uring matrix leg ({})",
            uring::probe().reason
        );
    }
    backends
}

/// Resolve a backend choice against the environment and the kernel
/// probe. `Auto` honors `DIDO_IO_BACKEND` before probing; an explicit
/// `Uring` on a kernel without io_uring is an error.
pub(crate) fn resolve_backend(choice: IoBackendChoice) -> std::io::Result<IoBackend> {
    let choice = if choice == IoBackendChoice::Auto {
        match std::env::var("DIDO_IO_BACKEND").as_deref() {
            Ok("uring") => IoBackendChoice::Uring,
            Ok("epoll") => IoBackendChoice::Epoll,
            _ => IoBackendChoice::Auto,
        }
    } else {
        choice
    };
    match choice {
        IoBackendChoice::Epoll => Ok(IoBackend::Epoll),
        IoBackendChoice::Uring => {
            if uring::available() {
                Ok(IoBackend::Uring)
            } else {
                Err(std::io::Error::new(
                    std::io::ErrorKind::Unsupported,
                    format!("io_uring backend unavailable: {}", uring::probe().reason),
                ))
            }
        }
        IoBackendChoice::Auto => Ok(if uring::available() {
            IoBackend::Uring
        } else {
            IoBackend::Epoll
        }),
    }
}

/// Knobs of the batched data path.
#[derive(Debug, Clone, Copy)]
pub struct BatchConfig {
    /// Shared RX ring slots; a full ring drops frames (counted in
    /// [`ServerStats::dropped_frames`]) like real NIC hardware.
    pub ring_slots: usize,
    /// Most frames one dispatch may aggregate.
    pub frame_budget: usize,
    /// Dispatch immediately once this many queries are pending (one
    /// probe wavefront by default, matching the vectorized hot path).
    pub wavefront_queries: usize,
    /// Longest a dispatcher waits below a wavefront before dispatching
    /// what it has — the batch-size/latency knob of Figures 9–10.
    pub max_batch_delay: Duration,
    /// Quiescence close: while below a wavefront, if no new frame lands
    /// within this long the dispatcher ships what it has instead of
    /// waiting out the whole drain window. A lightly loaded link pays
    /// (at most) one quiet beat of extra latency, not `max_batch_delay`;
    /// a busy link keeps refilling the batch and never trips it.
    pub quiet_delay: Duration,
    /// Dispatcher thread count. Per-connection response order is kept
    /// by sequence numbers, so >1 is safe, but on few cores one is
    /// usually right.
    pub dispatchers: usize,
    /// Reactor (framing reader) thread count; `0` means
    /// `min(4, available cores)`. Connections are spread across the
    /// pool round-robin at accept time, so the thread count stays fixed
    /// no matter how many connections are open.
    pub readers: usize,
    /// SD egress shard count; `0` means `min(2, cores/2)` (floor one).
    /// Connections map to shards by connection id, and each shard owns
    /// its connections' write halves, reorder buffers, and readiness
    /// loop.
    pub sd_writers: usize,
    /// Longest a connection may stay unwritable (parked on WRITABLE
    /// readiness with no progress) before the SD plane retires it —
    /// the per-connection replacement for the old global 30 s stall.
    pub sd_stall_timeout: Duration,
    /// Per-connection pending-bytes high-water mark: crossing it pauses
    /// the connection's READ interest in its reactor (resumed at half
    /// this value), bounding memory under un-drained clients.
    pub sd_hiwater_bytes: usize,
    /// Shrink each accepted socket's kernel send buffer (`SO_SNDBUF`)
    /// to this many bytes. `None` keeps the kernel default. Tests and
    /// benches use small values to make write-side backpressure
    /// deterministic.
    pub sndbuf_bytes: Option<usize>,
    /// Which syscall backend drives the reactor RX and SD egress
    /// planes (see [`IoBackendChoice`]).
    pub io_backend: IoBackendChoice,
}

impl Default for BatchConfig {
    fn default() -> BatchConfig {
        BatchConfig {
            ring_slots: 4096,
            frame_budget: 512,
            wavefront_queries: 64,
            max_batch_delay: Duration::from_micros(200),
            quiet_delay: Duration::from_micros(30),
            dispatchers: 1,
            readers: 0,
            sd_writers: 0,
            sd_stall_timeout: Duration::from_secs(5),
            sd_hiwater_bytes: 1 << 20,
            sndbuf_bytes: None,
            io_backend: IoBackendChoice::default(),
        }
    }
}

/// Which data path [`KvServer::start_with`] runs.
#[derive(Debug, Clone, Copy, Default)]
pub enum DispatchMode {
    /// Seed behavior: one blocking thread per connection, one pipeline
    /// invocation per frame.
    #[default]
    PerConnection,
    /// Cross-connection RV-ring → dispatcher → SD-writer topology.
    Batched(BatchConfig),
}

/// A carved request tagged with its connection, per-connection sequence
/// number, and the protocol its listener speaks, as carried by the
/// shared RX ring. `frame` is the request payload the connection's
/// codec carved: the body of a length-prefixed frame for
/// [`ProtocolKind::Dido`], the full request text (terminators included)
/// for the line protocols.
#[derive(Debug)]
pub(crate) struct TaggedFrame {
    pub(crate) conn: u64,
    pub(crate) seq: u64,
    pub(crate) proto: ProtocolKind,
    pub(crate) frame: Bytes,
}

/// Wakes dispatchers when frames arrive. The generation counter closes
/// the missed-notify race: observe before draining, and `wait_past`
/// returns immediately if anything rang in between.
#[derive(Default)]
pub(crate) struct Doorbell {
    gen: Mutex<u64>,
    cv: Condvar,
}

impl Doorbell {
    pub(crate) fn ring(&self) {
        *self.gen.lock() += 1;
        self.cv.notify_all();
    }

    fn observe(&self) -> u64 {
        *self.gen.lock()
    }

    fn wait_past(&self, seen: u64, timeout: Duration) {
        let mut gen = self.gen.lock();
        if *gen == seen {
            let _ = self.cv.wait_for(&mut gen, timeout);
        }
    }
}

/// A running key-value TCP server.
///
/// The `handler` receives a *lane* plus each decoded query batch and
/// returns the responses in order — typically a closure over a
/// `dido_pipeline::KvEngine` or a `dido::ServingCore`. In batched mode
/// one handler call covers queries from *many* connections, so
/// cross-connection traffic shares the vectorized wavefront path, and
/// the lane is the calling dispatcher's index (`0..dispatchers`) —
/// concurrent serving cores use it to stripe their profiling
/// accumulators per dispatcher. In per-connection mode the lane is the
/// connection's accept index.
pub struct KvServer {
    addrs: Vec<SocketAddr>,
    stats: Arc<ServerStats>,
    shutdown: Arc<AtomicBool>,
    doorbell: Option<Arc<Doorbell>>,
    topology: Topology,
}

/// The server's thread topology, held so [`KvServer::stop`] can join
/// every thread it spawned — a shutdown that returns proves no reader,
/// reactor, dispatcher, or SD thread is still running.
enum Topology {
    /// Accept threads (one per listener) that in turn join their
    /// per-connection workers.
    PerConnection {
        accept: Vec<std::thread::JoinHandle<()>>,
    },
    /// Reactor pool → dispatchers → SD egress shards. Teardown runs in
    /// that order: reactors stop producing and post EOF marks,
    /// dispatchers drain the ring dry, and each SD shard exits once the
    /// last [`SdPlane`] handle (held by reactors and dispatchers) is
    /// dropped — the plane's drop closes and wakes every shard.
    Batched {
        reactors: crate::reactor::ReactorPool,
        dispatchers: Vec<std::thread::JoinHandle<()>>,
        sd: Vec<std::thread::JoinHandle<()>>,
    },
}

impl KvServer {
    /// Bind to `addr` (use port 0 for an ephemeral port) and serve with
    /// the per-connection data path.
    pub fn start<F>(addr: &str, handler: F) -> std::io::Result<KvServer>
    where
        F: Fn(usize, Vec<Query>) -> Vec<Response> + Send + Sync + 'static,
    {
        KvServer::start_with(addr, DispatchMode::PerConnection, handler)
    }

    /// Bind to `addr` and serve with the batched data path.
    pub fn start_batched<F>(addr: &str, cfg: BatchConfig, handler: F) -> std::io::Result<KvServer>
    where
        F: Fn(usize, Vec<Query>) -> Vec<Response> + Send + Sync + 'static,
    {
        KvServer::start_with(addr, DispatchMode::Batched(cfg), handler)
    }

    /// Bind to `addr` and serve with an explicit [`DispatchMode`].
    pub fn start_with<F>(addr: &str, mode: DispatchMode, handler: F) -> std::io::Result<KvServer>
    where
        F: Fn(usize, Vec<Query>) -> Vec<Response> + Send + Sync + 'static,
    {
        KvServer::start_multi(&[(addr, ProtocolKind::Dido)], mode, handler)
    }

    /// Bind one listener per `(addr, protocol)` pair and serve them all
    /// over one shared data path: every connection is stamped with its
    /// listener's [`ProtocolKind`] at accept time, requests from all
    /// protocols aggregate through the same RX ring and dispatcher
    /// batches (batched mode), and one handler answers the decoded
    /// queries regardless of which front door they came through.
    ///
    /// At most 15 listeners (the batched reactor's listener token
    /// space); at least one is required.
    pub fn start_multi<F>(
        listeners: &[(&str, ProtocolKind)],
        mode: DispatchMode,
        handler: F,
    ) -> std::io::Result<KvServer>
    where
        F: Fn(usize, Vec<Query>) -> Vec<Response> + Send + Sync + 'static,
    {
        KvServer::start_multi_with_clock(listeners, mode, Arc::new(SystemClock), handler)
    }

    /// [`KvServer::start_multi`] with an explicit clock. The clock
    /// anchors memcached's absolute-exptime conversion at decode time;
    /// pass the same clock the engine expires against so wire TTLs and
    /// store deadlines agree (tests use a `MockClock` to cross expiry
    /// boundaries without sleeping).
    pub fn start_multi_with_clock<F>(
        listeners: &[(&str, ProtocolKind)],
        mode: DispatchMode,
        clock: SharedClock,
        handler: F,
    ) -> std::io::Result<KvServer>
    where
        F: Fn(usize, Vec<Query>) -> Vec<Response> + Send + Sync + 'static,
    {
        if listeners.is_empty() || listeners.len() > crate::reactor::MAX_LISTENERS {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!(
                    "listener count must be 1..={} (got {})",
                    crate::reactor::MAX_LISTENERS,
                    listeners.len()
                ),
            ));
        }
        let mut bound = Vec::with_capacity(listeners.len());
        let mut addrs = Vec::with_capacity(listeners.len());
        for &(addr, proto) in listeners {
            let listener = TcpListener::bind(addr)?;
            // std binds with a backlog of 128, which a connection-scale
            // fleet opening all at once overflows (the kernel silently
            // drops handshake ACKs; surplus clients wedge half-open
            // until they transmit). Re-listen with a deeper queue,
            // capped by `net.core.somaxconn`; best-effort on exotic
            // platforms.
            {
                use std::os::fd::AsRawFd;
                let _ = mio::set_backlog(listener.as_raw_fd(), 4096);
            }
            addrs.push(listener.local_addr()?);
            bound.push((listener, proto));
        }
        let stats = Arc::new(ServerStats::default());
        let shutdown = Arc::new(AtomicBool::new(false));
        let handler = Arc::new(handler);

        let (doorbell, topology) = match mode {
            DispatchMode::PerConnection => {
                let accept = bound
                    .into_iter()
                    .enumerate()
                    .map(|(idx, (listener, proto))| {
                        spawn_per_connection(
                            listener,
                            proto,
                            idx,
                            listeners.len(),
                            &stats,
                            &shutdown,
                            Arc::clone(&clock),
                            Arc::clone(&handler),
                        )
                    })
                    .collect();
                (None, Topology::PerConnection { accept })
            }
            DispatchMode::Batched(cfg) => {
                let doorbell = Arc::new(Doorbell::default());
                let topo =
                    spawn_batched(bound, cfg, &stats, &shutdown, &doorbell, clock, handler)?;
                (Some(doorbell), topo)
            }
        };

        Ok(KvServer {
            addrs,
            stats,
            shutdown,
            doorbell,
            topology,
        })
    }

    /// The first listener's bound address (resolves ephemeral ports).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addrs[0]
    }

    /// Every listener's bound address, in [`KvServer::start_multi`]
    /// order.
    #[must_use]
    pub fn addrs(&self) -> &[SocketAddr] {
        &self.addrs
    }

    /// Server statistics.
    #[must_use]
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// A shared handle to the server statistics, for observers that
    /// outlive borrows of the server (e.g. folding snapshots into
    /// `dido::Metrics` from the request handler).
    #[must_use]
    pub fn stats_handle(&self) -> Arc<ServerStats> {
        Arc::clone(&self.stats)
    }

    /// Signal shutdown and wait for the accept loop to finish.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        match &mut self.topology {
            Topology::PerConnection { accept } => {
                for t in accept.drain(..) {
                    let _ = t.join();
                }
            }
            Topology::Batched {
                reactors,
                dispatchers,
                sd,
            } => {
                // Reactors first: waking their poll loops makes them
                // observe the flag, retire every connection with an EOF
                // mark, and exit — so no new frames enter the ring.
                reactors.wake_all();
                reactors.join();
                // Dispatchers next: ring the doorbell so idle ones wake
                // and drain the ring dry (every consumed frame still
                // gets its response).
                if let Some(d) = &self.doorbell {
                    d.ring();
                }
                for t in dispatchers.drain(..) {
                    let _ = t.join();
                }
                // The reactors and dispatchers held the only `SdPlane`
                // handles; with both joined the plane drops, closing and
                // waking every shard, which drains its backlog,
                // disconnects every client, and exits.
                for t in sd.drain(..) {
                    let _ = t.join();
                }
            }
        }
    }
}

impl Drop for KvServer {
    fn drop(&mut self) {
        self.stop();
    }
}

#[allow(clippy::too_many_arguments)]
fn spawn_per_connection<F>(
    listener: TcpListener,
    proto: ProtocolKind,
    listener_idx: usize,
    n_listeners: usize,
    stats: &Arc<ServerStats>,
    shutdown: &Arc<AtomicBool>,
    clock: SharedClock,
    handler: Arc<F>,
) -> std::thread::JoinHandle<()>
where
    F: Fn(usize, Vec<Query>) -> Vec<Response> + Send + Sync + 'static,
{
    let stats = Arc::clone(stats);
    let shutdown = Arc::clone(shutdown);
    std::thread::spawn(move || {
        // Nonblocking accept loop so shutdown is observed promptly.
        listener
            .set_nonblocking(true)
            .expect("nonblocking listener");
        let mut workers = Vec::new();
        // Stride lanes by listener so concurrent accept loops never
        // hand out the same lane to two live connections.
        let mut next_lane = listener_idx;
        while !shutdown.load(Ordering::Acquire) {
            match listener.accept() {
                Ok((stream, _)) => {
                    let _ = stream.set_nodelay(true);
                    stats.connections.fetch_add(1, Ordering::Relaxed);
                    stats.proto_conns[proto.index()].fetch_add(1, Ordering::Relaxed);
                    let stats = Arc::clone(&stats);
                    let handler = Arc::clone(&handler);
                    let shutdown = Arc::clone(&shutdown);
                    let clock = Arc::clone(&clock);
                    let lane = next_lane;
                    next_lane = next_lane.wrapping_add(n_listeners);
                    workers.push(std::thread::spawn(move || {
                        let _ = serve_connection(
                            stream, proto, &stats, &shutdown, lane, &clock, &*handler,
                        );
                    }));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(_) => break,
            }
        }
        for w in workers {
            let _ = w.join();
        }
    })
}

/// Spawn the batched topology: reactor scaffold, SD egress shards,
/// dispatchers, then the reactor pool (which owns the listener and the
/// accept path). RV framing runs on the fixed reactor pool — see
/// [`crate::reactor`] — not on per-connection threads. The reactor
/// scaffold (polls + command queues) is built *before* the SD shards
/// spawn because backpressure needs the reactor command handles.
#[allow(clippy::too_many_arguments)]
fn spawn_batched<F>(
    listeners: Vec<(TcpListener, ProtocolKind)>,
    cfg: BatchConfig,
    stats: &Arc<ServerStats>,
    shutdown: &Arc<AtomicBool>,
    doorbell: &Arc<Doorbell>,
    clock: SharedClock,
    handler: Arc<F>,
) -> std::io::Result<Topology>
where
    F: Fn(usize, Vec<Query>) -> Vec<Response> + Send + Sync + 'static,
{
    let backend = resolve_backend(cfg.io_backend)?;
    stats.io_backend.store(backend as u64, Ordering::Relaxed);
    let ring: Arc<FrameRing<TaggedFrame>> = Arc::new(FrameRing::new(cfg.ring_slots.max(1)));
    let (scaffold, handles) =
        crate::reactor::build_reactor_scaffold(crate::reactor::effective_readers(cfg.readers))?;
    let handles = Arc::new(handles);

    let n_sd = crate::sd::effective_sd_writers(cfg.sd_writers);
    let (plane, parts) = crate::sd::build_sd_plane(n_sd)?;
    let plane = Arc::new(plane);
    stats
        .sd_writer_threads
        .store(n_sd as u64, Ordering::Relaxed);
    let shard_cfg = crate::sd::SdShardCfg::new(cfg.sd_stall_timeout, cfg.sd_hiwater_bytes, backend);
    let mut sd = Vec::with_capacity(n_sd);
    for (idx, part) in parts.into_iter().enumerate() {
        let reactors = Arc::clone(&handles);
        let stats = Arc::clone(stats);
        let spawned = std::thread::Builder::new()
            .name(format!("dido-sd-{idx}"))
            .spawn(move || crate::sd::run_sd_shard(part, shard_cfg, reactors, stats));
        match spawned {
            Ok(t) => sd.push(t),
            Err(e) => {
                // Closing the plane wakes the shards already running.
                drop(plane);
                for t in sd {
                    let _ = t.join();
                }
                return Err(e);
            }
        }
    }

    let mut dispatchers = Vec::with_capacity(cfg.dispatchers.max(1));
    for lane in 0..cfg.dispatchers.max(1) {
        let ring = Arc::clone(&ring);
        let t_plane = Arc::clone(&plane);
        let t_stats = Arc::clone(stats);
        let t_shutdown = Arc::clone(shutdown);
        let t_doorbell = Arc::clone(doorbell);
        let t_clock = Arc::clone(&clock);
        let handler = Arc::clone(&handler);
        let spawned = std::thread::Builder::new()
            .name(format!("dido-dispatch-{lane}"))
            .spawn(move || {
                run_dispatcher(
                    &ring,
                    &t_plane,
                    &t_stats,
                    &t_shutdown,
                    &t_doorbell,
                    cfg,
                    lane,
                    &t_clock,
                    &*handler,
                );
            });
        match spawned {
            Ok(t) => dispatchers.push(t),
            Err(e) => {
                unwind_batched_spawn(shutdown, doorbell, dispatchers, plane, sd);
                return Err(e);
            }
        }
    }

    let shared = crate::reactor::ReactorShared {
        ring,
        sd: Arc::clone(&plane),
        stats: Arc::clone(stats),
        shutdown: Arc::clone(shutdown),
        doorbell: Arc::clone(doorbell),
        sndbuf_bytes: cfg.sndbuf_bytes,
        backend,
    };
    // After the pool spawns, only reactors and dispatchers hold
    // `SdPlane` handles (the local one drops below), which is what lets
    // the SD shards exit once both groups are joined.
    match crate::reactor::spawn_reactor_pool(listeners, scaffold, shared) {
        Ok(reactors) => Ok(Topology::Batched {
            reactors,
            dispatchers,
            sd,
        }),
        Err(e) => {
            // Unwind the threads already running so a failed start
            // leaks nothing.
            unwind_batched_spawn(shutdown, doorbell, dispatchers, plane, sd);
            Err(e)
        }
    }
}

/// Tear down a partially spawned batched topology: stop and join the
/// dispatchers, then drop the last local plane handle so the SD shards
/// observe the disconnect and join.
fn unwind_batched_spawn(
    shutdown: &AtomicBool,
    doorbell: &Doorbell,
    dispatchers: Vec<std::thread::JoinHandle<()>>,
    plane: Arc<SdPlane>,
    sd: Vec<std::thread::JoinHandle<()>>,
) {
    shutdown.store(true, Ordering::Release);
    doorbell.ring();
    for t in dispatchers {
        let _ = t.join();
    }
    drop(plane);
    for t in sd {
        let _ = t.join();
    }
}

/// Dispatcher: drain the ring across all connections, widen the batch
/// through the adaptive drain window, run the engine once, scatter.
#[allow(clippy::too_many_arguments)]
fn run_dispatcher<F>(
    ring: &FrameRing<TaggedFrame>,
    sd: &SdPlane,
    stats: &ServerStats,
    shutdown: &AtomicBool,
    doorbell: &Doorbell,
    cfg: BatchConfig,
    lane: usize,
    clock: &SharedClock,
    handler: &F,
) where
    F: Fn(usize, Vec<Query>) -> Vec<Response>,
{
    let budget = cfg.frame_budget.max(1);
    let mut frames: Vec<TaggedFrame> = Vec::with_capacity(budget);
    let mut scatter = SdScatter::new(sd.n_shards());
    while !shutdown.load(Ordering::Acquire) {
        let seen = doorbell.observe();
        let depth = ring.len() as u64;
        frames.clear();
        ring.pop_into(budget, &mut frames);
        if frames.is_empty() {
            doorbell.wait_past(seen, IDLE_WAIT);
            continue;
        }
        let mut queries: usize = frames.iter().map(|t| request_query_estimate(t.proto, &t.frame)).sum();
        let mut delayed = false;
        if queries < cfg.wavefront_queries && frames.len() < budget {
            // Below a wavefront: hold the batch open up to the drain
            // window, dispatching early the moment enough work arrives
            // — or as soon as the wire goes quiet (nothing new within
            // `quiet_delay`), because an idle link will not fill the
            // wavefront no matter how long we hold.
            let deadline = Instant::now() + cfg.max_batch_delay;
            while queries < cfg.wavefront_queries
                && frames.len() < budget
                && !shutdown.load(Ordering::Acquire)
            {
                let now = Instant::now();
                if now >= deadline {
                    delayed = true;
                    break;
                }
                let seen = doorbell.observe();
                let before = frames.len();
                if ring.pop_into(budget - frames.len(), &mut frames) == 0 {
                    doorbell.wait_past(seen, (deadline - now).min(cfg.quiet_delay));
                    if ring.pop_into(budget - frames.len(), &mut frames) == 0 {
                        break; // quiescent: ship what we have
                    }
                }
                queries += frames[before..]
                    .iter()
                    .map(|t| request_query_estimate(t.proto, &t.frame))
                    .sum::<usize>();
            }
        }
        stats.record_dispatch(
            frames.len() as u64,
            queries as u64,
            depth.max(frames.len() as u64),
            delayed,
        );
        dispatch_batch(&frames, sd, stats, lane, clock, handler, &mut scatter);
    }
    // Shutdown: drain whatever is left so pipelined clients still get
    // every response they are owed.
    loop {
        frames.clear();
        if ring.pop_into(budget, &mut frames) == 0 {
            break;
        }
        stats.record_dispatch(
            frames.len() as u64,
            frames
                .iter()
                .map(|t| request_query_estimate(t.proto, &t.frame))
                .sum::<usize>() as u64,
            frames.len() as u64,
            false,
        );
        dispatch_batch(&frames, sd, stats, lane, clock, handler, &mut scatter);
    }
}

/// One request's place in a dispatch: which connection/sequence it came
/// from, which response range answers it, and the decoded
/// [`RequestMeta`] its reply is encoded through (one client request may
/// fan out to several queries — a memcached multi-key `get`, a RESP
/// `MGET` — whose responses re-aggregate into a single wire reply).
struct Slot {
    conn: u64,
    seq: u64,
    start: usize,
    len: usize,
    meta: RequestMeta,
}

/// Reusable dispatch→SD scatter state. Runs are partitioned by SD shard
/// *at coalesce time* — each shard receives exactly one pooled
/// [`RunBatch`] per dispatch, so dispatch cost stays one send + one
/// wakeup per shard (not per run), and the scratch (slot list, open-run
/// index, batch slots) keeps its capacity across dispatches: the hot
/// path performs no per-dispatch scatter allocation after warmup.
struct SdScatter {
    slots: Vec<Slot>,
    /// conn → index of its open (last) run inside its shard's batch.
    open: HashMap<u64, usize>,
    /// One pending batch slot per SD shard.
    batches: Vec<Option<RunBatch>>,
}

impl SdScatter {
    fn new(n_shards: usize) -> SdScatter {
        SdScatter {
            slots: Vec::new(),
            open: HashMap::new(),
            batches: (0..n_shards).map(|_| None).collect(),
        }
    }
}

/// Decode a drained batch into one cross-connection query vector, run
/// the handler once, and scatter encoded response runs to the SD
/// shards — one coalesced batch per shard.
#[allow(clippy::too_many_arguments)]
fn dispatch_batch<F>(
    frames: &[TaggedFrame],
    sd: &SdPlane,
    stats: &ServerStats,
    lane: usize,
    clock: &SharedClock,
    handler: &F,
    scatter: &mut SdScatter,
) where
    F: Fn(usize, Vec<Query>) -> Vec<Response>,
{
    let estimate: usize = frames
        .iter()
        .map(|t| request_query_estimate(t.proto, &t.frame))
        .sum();
    let mut batch: Vec<Query> = Vec::with_capacity(estimate);
    let slots = &mut scatter.slots;
    slots.clear();
    let mut good_frames = 0u64;
    let mut proto_queries = [0u64; PROTOCOL_KINDS];
    let mut proto_errors = [0u64; PROTOCOL_KINDS];
    // One clock sample per dispatch: every request in the batch decodes
    // against the same `now`, like one pipeline batch expires against
    // one `now`.
    let now = clock.now_secs();
    for t in frames {
        let start = batch.len();
        let meta = decode_request(t.proto, &t.frame, now, &mut batch);
        let len = batch.len() - start;
        if meta.is_parse_error() {
            stats.bad_frames.fetch_add(1, Ordering::Relaxed);
            proto_errors[t.proto.index()] += 1;
        } else {
            good_frames += 1;
        }
        proto_queries[t.proto.index()] += len as u64;
        slots.push(Slot {
            conn: t.conn,
            seq: t.seq,
            start,
            len,
            meta,
        });
    }
    stats.frames.fetch_add(good_frames, Ordering::Relaxed);
    stats
        .queries
        .fetch_add(batch.len() as u64, Ordering::Relaxed);
    for i in 0..PROTOCOL_KINDS {
        if proto_queries[i] > 0 {
            stats.proto_queries[i].fetch_add(proto_queries[i], Ordering::Relaxed);
        }
        if proto_errors[i] > 0 {
            stats.proto_parse_errors[i].fetch_add(proto_errors[i], Ordering::Relaxed);
        }
    }
    let responses = if batch.is_empty() {
        Vec::new()
    } else {
        handler(lane, batch)
    };
    // Coalesce the scatter per connection into runs of consecutive
    // sequence numbers, each encoded into one contiguous wire buffer
    // drawn from the owning shard's reuse ring. A run must break at any
    // sequence gap — the missing frame was dropped (answered by the
    // reader) or drained by another dispatcher, and will fill the gap
    // on its own.
    for s in slots.iter() {
        let end = (s.start + s.len).min(responses.len());
        let rs = responses.get(s.start..end).unwrap_or(&[]);
        let shard = sd.shard_of(s.conn);
        let batch = scatter.batches[shard].get_or_insert_with(|| sd.take_batch(shard));
        match scatter.open.get(&s.conn) {
            Some(&i) if batch[i].1.first_seq + batch[i].1.count == s.seq => {
                encode_reply_into(&mut batch[i].1.bytes, &s.meta, rs);
                batch[i].1.count += 1;
            }
            _ => {
                let mut bytes = sd.get_buf(shard);
                encode_reply_into(&mut bytes, &s.meta, rs);
                batch.push((
                    s.conn,
                    ResponseRun {
                        first_seq: s.seq,
                        count: 1,
                        bytes,
                    },
                ));
                scatter.open.insert(s.conn, batch.len() - 1);
            }
        }
    }
    scatter.open.clear();
    for (shard, slot) in scatter.batches.iter_mut().enumerate() {
        if let Some(batch) = slot.take() {
            sd.send_batch(shard, batch);
        }
    }
}

fn serve_connection<F>(
    mut stream: TcpStream,
    proto: ProtocolKind,
    stats: &ServerStats,
    shutdown: &AtomicBool,
    lane: usize,
    clock: &SharedClock,
    handler: &F,
) -> std::io::Result<()>
where
    F: Fn(usize, Vec<Query>) -> Vec<Response>,
{
    stream.set_read_timeout(Some(READ_POLL))?;
    let mut reader = FrameReader::with_proto(proto);
    let mut queries: Vec<Query> = Vec::new();
    let mut reply = BytesMut::new();
    loop {
        if shutdown.load(Ordering::Acquire) {
            return Ok(());
        }
        let payload = match reader.read_frame(&mut stream) {
            Ok(Some(f)) => f,
            Ok(None) => return Ok(()), // clean EOF
            Err(e) if is_poll_timeout(&e) => continue,
            Err(e) => return Err(e),
        };
        queries.clear();
        let meta = decode_request(proto, &payload, clock.now_secs(), &mut queries);
        if meta.is_parse_error() {
            // Answer malformed requests with the protocol's error reply
            // (an empty dido response frame, `CLIENT_ERROR …`, `-ERR …`)
            // rather than killing the connection.
            stats.bad_frames.fetch_add(1, Ordering::Relaxed);
            stats.proto_parse_errors[proto.index()].fetch_add(1, Ordering::Relaxed);
        } else {
            stats.frames.fetch_add(1, Ordering::Relaxed);
        }
        stats
            .queries
            .fetch_add(queries.len() as u64, Ordering::Relaxed);
        stats.proto_queries[proto.index()].fetch_add(queries.len() as u64, Ordering::Relaxed);
        let responses = if queries.is_empty() {
            Vec::new()
        } else {
            handler(lane, std::mem::take(&mut queries))
        };
        reply.truncate(0);
        encode_reply_into(&mut reply, &meta, &responses);
        if reply.is_empty() {
            continue; // e.g. a memcached `noreply` store
        }
        let write = write_all_vectored(&mut stream, &[&reply]).and_then(|()| stream.flush());
        if let Err(e) = write {
            // A write that sat at the stall deadline retires only this
            // peer (its thread exits; the rest of the server is
            // untouched) — the per-connection mirror of the SD plane's
            // `sd_stall_retired`.
            if e.kind() == std::io::ErrorKind::TimedOut {
                stats.write_stall_retired.fetch_add(1, Ordering::Relaxed);
            }
            return Err(e);
        }
    }
}

/// Streaming request reader with a reusable per-connection buffer,
/// carving on the connection's [`ProtocolKind`] codec.
///
/// The socket is read in [`READ_CHUNK`]-sized chunks and every complete
/// request the chunk contains is carved out at once (the RV "burst"): a
/// pipelined client's back-to-back small requests cost roughly one
/// `read` syscall for the whole burst instead of two per request.
/// Carved requests are zero-copy slices of one frozen block; a partial
/// request's bytes stay buffered for the next read. What a carved
/// payload *is* depends on the codec: the frame body (prefix stripped)
/// for [`ProtocolKind::Dido`], the full request text for the line
/// protocols — see [`crate::codec::carve_one`].
#[derive(Debug, Default)]
pub(crate) struct FrameReader {
    /// The codec that finds request boundaries in the byte stream.
    proto: ProtocolKind,
    /// Raw bytes not yet carved — at most one partial request.
    buf: BytesMut,
    /// Complete request payloads carved but not yet handed to the
    /// caller.
    pending: VecDeque<Bytes>,
    /// Start of the in-flight recv window ([`FrameReader::begin_recv`])
    /// relative to `buf`; only meaningful between `begin_recv` and the
    /// matching `complete_recv`/`abort_recv`.
    recv_base: usize,
    /// Scratch payload ranges of the current carve pass (kept across
    /// calls for its capacity).
    scratch: Vec<(usize, usize)>,
}

/// Outcome of a [`FrameReader::read_ready`] pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ReadReady {
    /// The socket is still open; more data may arrive later.
    Open,
    /// Clean EOF at a frame boundary.
    Closed,
}

impl FrameReader {
    /// A reader for the default dido length-prefixed framing.
    pub(crate) fn new() -> FrameReader {
        FrameReader::default()
    }

    /// A reader carving request boundaries with `proto`'s codec.
    pub(crate) fn with_proto(proto: ProtocolKind) -> FrameReader {
        FrameReader {
            proto,
            ..FrameReader::default()
        }
    }

    /// Read one frame. Returns `Ok(None)` on clean EOF at a frame
    /// boundary.
    ///
    /// A `WouldBlock`/`TimedOut` escapes **only** at a frame boundary
    /// (no byte of the next frame buffered), where callers using a read
    /// timeout poll for shutdown and retry safely. Once any byte of a
    /// frame has arrived the reader retries internally, keeping the
    /// consumed bytes — propagating the timeout there and restarting
    /// (the seed behavior) silently dropped 1–3 prefix bytes and
    /// desynced the stream for good.
    pub(crate) fn read_frame(&mut self, stream: &mut TcpStream) -> std::io::Result<Option<Bytes>> {
        loop {
            if let Some(frame) = self.pending.pop_front() {
                return Ok(Some(frame));
            }
            if !self.fill(stream)? {
                return Ok(None);
            }
        }
    }

    /// Nonblocking burst read for readiness-driven callers: pull up to
    /// `budget` bytes from a nonblocking socket, appending every
    /// complete frame carved to `out` — on **every** exit path, so
    /// frames framed before an EOF or error are never lost.
    ///
    /// Returns [`ReadReady::Open`] when the socket drained
    /// (`WouldBlock`) or the budget ran out — level-triggered
    /// registration re-reports leftover data on the next poll — and
    /// [`ReadReady::Closed`] on clean EOF at a frame boundary. Mid-frame
    /// EOF and oversized/short frames are errors; either way the caller
    /// retires the connection. The frame-boundary invariant of
    /// [`FrameReader::read_frame`] holds structurally here: a partial
    /// frame's bytes simply stay buffered across readiness events.
    pub(crate) fn read_ready(
        &mut self,
        stream: &mut TcpStream,
        out: &mut Vec<Bytes>,
        budget: usize,
        syscalls: &mut u64,
    ) -> std::io::Result<ReadReady> {
        let mut pulled = 0usize;
        let status = loop {
            if pulled >= budget {
                break ReadReady::Open;
            }
            let old = self.buf.len();
            self.buf.resize(old + READ_CHUNK, 0);
            *syscalls += 1;
            match stream.read(&mut self.buf[old..]) {
                Ok(0) => {
                    self.buf.resize(old, 0);
                    if old == 0 {
                        break ReadReady::Closed;
                    }
                    out.extend(self.pending.drain(..));
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "EOF inside a frame",
                    ));
                }
                Ok(n) => {
                    self.buf.resize(old + n, 0);
                    pulled += n;
                    if let Err(e) = self.carve() {
                        out.extend(self.pending.drain(..));
                        return Err(e);
                    }
                }
                Err(e) => {
                    self.buf.resize(old, 0);
                    match e.kind() {
                        std::io::ErrorKind::Interrupted => continue,
                        std::io::ErrorKind::WouldBlock => break ReadReady::Open,
                        _ => {
                            out.extend(self.pending.drain(..));
                            return Err(e);
                        }
                    }
                }
            }
        };
        out.extend(self.pending.drain(..));
        Ok(status)
    }

    /// Open a recv window for the uring backend: reserve
    /// [`READ_CHUNK`] writable bytes at the tail of `buf` (zeroed, same
    /// cost as the epoll path's resize) and return the pointer/len a
    /// `RECV` SQE should target. The window — and the whole reader —
    /// must stay untouched until [`FrameReader::complete_recv`] or
    /// [`FrameReader::abort_recv`] closes it; the reactor guarantees
    /// this by keeping at most one recv in flight per connection.
    pub(crate) fn begin_recv(&mut self) -> (*mut u8, u32) {
        let old = self.buf.len();
        self.buf.resize(old + READ_CHUNK, 0);
        self.recv_base = old;
        (unsafe { self.buf.as_mut_ptr().add(old) }, READ_CHUNK as u32)
    }

    /// Commit `n` received bytes into the window opened by
    /// [`FrameReader::begin_recv`], carve every complete frame into
    /// `out`, and report the socket state exactly like
    /// [`FrameReader::read_ready`] (`n == 0` is EOF: clean at a frame
    /// boundary, an error mid-frame).
    pub(crate) fn complete_recv(
        &mut self,
        n: usize,
        out: &mut Vec<Bytes>,
    ) -> std::io::Result<ReadReady> {
        let base = self.recv_base;
        debug_assert!(n <= READ_CHUNK);
        self.buf.truncate(base + n);
        if n == 0 {
            if base == 0 {
                return Ok(ReadReady::Closed);
            }
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "EOF inside a frame",
            ));
        }
        let carved = self.carve();
        out.extend(self.pending.drain(..));
        carved?;
        Ok(ReadReady::Open)
    }

    /// Close an in-flight recv window without committing any bytes
    /// (the op was canceled or failed); buffered partial-frame bytes
    /// are preserved.
    pub(crate) fn abort_recv(&mut self) {
        let base = self.recv_base;
        self.buf.truncate(base);
    }

    /// One socket read into the tail of `buf`, then carve. `Ok(false)`
    /// is clean EOF at a frame boundary; mid-frame timeouts retry
    /// internally so buffered bytes are never abandoned.
    fn fill(&mut self, stream: &mut TcpStream) -> std::io::Result<bool> {
        loop {
            let old = self.buf.len();
            self.buf.resize(old + READ_CHUNK, 0);
            let r = stream.read(&mut self.buf[old..]);
            let n = match r {
                Ok(n) => n,
                Err(e) => {
                    self.buf.resize(old, 0);
                    match e {
                        e if e.kind() == std::io::ErrorKind::Interrupted => continue,
                        e if is_poll_timeout(&e) && old == 0 => return Err(e),
                        e if is_poll_timeout(&e) => continue, // mid-frame: keep bytes, retry
                        e => return Err(e),
                    }
                }
            };
            self.buf.resize(old + n, 0);
            if n == 0 {
                return if old == 0 {
                    Ok(false)
                } else {
                    Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "EOF inside a frame",
                    ))
                };
            }
            self.carve()?;
            return Ok(true);
        }
    }

    /// Carve every complete request out of `buf` into `pending`, as
    /// zero-copy slices of one frozen block, using the connection's
    /// codec to find request boundaries. On a fatal carve error
    /// (oversized frame, unbounded line, corrupt RESP header) the
    /// requests carved *before* the bad bytes are still delivered —
    /// every exit path drains `pending` to the caller — and the error
    /// retires the connection.
    fn carve(&mut self) -> std::io::Result<()> {
        self.scratch.clear();
        let mut consumed = 0usize;
        let mut fatal = None;
        loop {
            match crate::codec::carve_one(self.proto, &self.buf[consumed..]) {
                Ok(crate::codec::Carve::Partial) => break,
                Ok(crate::codec::Carve::Request { total, skip }) => {
                    self.scratch.push((consumed + skip, consumed + total));
                    consumed += total;
                }
                Err(e) => {
                    fatal = Some(e);
                    break;
                }
            }
        }
        if consumed > 0 {
            let block = self.buf.split_to(consumed).freeze();
            for &(start, end) in &self.scratch {
                self.pending.push_back(block.slice(start..end));
            }
        }
        match fatal {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

/// Put `frames` on the wire, interleaving length prefixes and bodies
/// into one vectored write (retried on partial writes) and one flush —
/// the seed's three syscalls per frame become ~one per batch.
fn write_frames(stream: &mut TcpStream, frames: &[Bytes]) -> std::io::Result<()> {
    let prefixes: Vec<[u8; 4]> = frames
        .iter()
        .map(|f| (f.len() as u32).to_le_bytes())
        .collect();
    let mut bufs: Vec<&[u8]> = Vec::with_capacity(frames.len() * 2);
    for (p, f) in prefixes.iter().zip(frames) {
        bufs.push(p);
        bufs.push(f);
    }
    write_all_vectored(stream, &bufs)?;
    stream.flush()
}

fn write_frame(stream: &mut TcpStream, frame: &Bytes) -> std::io::Result<()> {
    write_frames(stream, std::slice::from_ref(frame))
}

/// `write_all` over a list of buffers using `write_vectored`,
/// re-slicing past whatever each call consumed. (The std helper
/// `write_all_vectored` is unstable; this is its stable equivalent.)
///
/// Handles `WouldBlock` by parking on writability, so it stays correct
/// even on a stream someone made nonblocking. (The sharded SD egress
/// plane has its own readiness-driven path — `sd::write_queue` — this
/// is the per-connection topology's and the tests' blocking writer.)
fn write_all_vectored(stream: &mut TcpStream, bufs: &[&[u8]]) -> std::io::Result<()> {
    let mut idx = 0usize; // first buffer not fully written
    let mut off = 0usize; // bytes of bufs[idx] already written
    while idx < bufs.len() {
        if off >= bufs[idx].len() {
            idx += 1;
            off = 0;
            continue;
        }
        let mut slices: Vec<IoSlice<'_>> = Vec::with_capacity(bufs.len() - idx);
        slices.push(IoSlice::new(&bufs[idx][off..]));
        slices.extend(bufs[idx + 1..].iter().map(|b| IoSlice::new(b)));
        let n = match stream.write_vectored(&slices) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::WriteZero,
                    "wrote zero bytes",
                ))
            }
            Ok(n) => n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                match mio::wait_writable(stream.as_raw_fd(), Some(WRITE_STALL)) {
                    Ok(true) => continue,
                    Ok(false) => {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::TimedOut,
                            "peer unwritable past the stall deadline",
                        ))
                    }
                    Err(e) => return Err(e),
                }
            }
            Err(e) => return Err(e),
        };
        let mut advanced = n;
        while advanced > 0 {
            let avail = bufs[idx].len() - off;
            if advanced >= avail {
                advanced -= avail;
                idx += 1;
                off = 0;
            } else {
                off += advanced;
                advanced = 0;
            }
        }
    }
    Ok(())
}

/// A blocking client for [`KvServer`].
///
/// Supports both call-and-response ([`KvClient::request`]) and
/// pipelined use: issue several [`KvClient::send`]s back-to-back, then
/// collect each reply with [`KvClient::recv`] — the server answers
/// every frame in order under both dispatch modes.
#[derive(Debug)]
pub struct KvClient {
    stream: TcpStream,
    reader: FrameReader,
}

impl KvClient {
    /// Connect to a server.
    pub fn connect(addr: SocketAddr) -> std::io::Result<KvClient> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(KvClient::from_stream(stream))
    }

    /// Wrap an already-connected stream.
    #[must_use]
    pub fn from_stream(stream: TcpStream) -> KvClient {
        KvClient {
            stream,
            reader: FrameReader::new(),
        }
    }

    /// Send one query frame without waiting for the response.
    pub fn send(&mut self, queries: &[Query]) -> std::io::Result<()> {
        use crate::protocol::{FrameBuilder, FRAME_HEADER};
        let need: usize = FRAME_HEADER + queries.iter().map(FrameBuilder::wire_size).sum::<usize>();
        if need > MAX_FRAME_BYTES {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "batch exceeds the maximum frame size",
            ));
        }
        // Exact-size builder: every query fits by construction, and the
        // send never reserves more than the frame actually needs.
        let mut b = FrameBuilder::with_capacity(need);
        for q in queries {
            let ok = b.push(q);
            debug_assert!(ok, "exactly-sized frame accepts every record");
        }
        write_frame(&mut self.stream, &b.finish())
    }

    /// Send pre-encoded wire frames (4-byte length prefixes included,
    /// e.g. from [`crate::protocol::encode_queries_wire_into`]) in one
    /// vectored write. Pipelined load generators use this to amortize
    /// the send syscall across a window of in-flight frames. The caller
    /// is responsible for keeping each frame within `MAX_FRAME_BYTES`.
    pub fn send_wire(&mut self, frames: &[Bytes]) -> std::io::Result<()> {
        let bufs: Vec<&[u8]> = frames.iter().map(|f| &f[..]).collect();
        write_all_vectored(&mut self.stream, &bufs)?;
        self.stream.flush()
    }

    /// Receive the next response frame without decoding its records —
    /// framing only. Load generators use this to keep per-frame client
    /// CPU out of the measurement; callers that need the records decode
    /// with [`crate::parse_responses`] or call
    /// [`recv`](KvClient::recv).
    pub fn recv_frame(&mut self) -> std::io::Result<Bytes> {
        self.reader
            .read_frame(&mut self.stream)?
            .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "server closed"))
    }

    /// Receive the next response frame.
    pub fn recv(&mut self) -> std::io::Result<Vec<Response>> {
        let reply = self.recv_frame()?;
        crate::protocol::parse_responses(&reply).map_err(|e: ProtocolError| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, format!("{e:?}"))
        })
    }

    /// Send a batch of queries and wait for the responses.
    pub fn request(&mut self, queries: &[Query]) -> std::io::Result<Vec<Response>> {
        self.send(queries)?;
        self.recv()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dido_model::{QueryOp, ResponseStatus};
    use parking_lot::Mutex;
    use std::collections::HashMap;

    fn echo_store_handler() -> impl Fn(usize, Vec<Query>) -> Vec<Response> + Send + Sync + 'static {
        // A tiny in-memory map suffices to exercise the wire path.
        let map: Mutex<HashMap<Vec<u8>, Vec<u8>>> = Mutex::new(HashMap::new());
        move |_lane, queries| {
            let mut map = map.lock();
            queries
                .iter()
                .map(|q| match q.op {
                    QueryOp::Set => {
                        map.insert(q.key.to_vec(), q.value.to_vec());
                        Response::ok()
                    }
                    QueryOp::Get => match map.get(&q.key.to_vec()) {
                        Some(v) => Response::hit(v.clone()),
                        None => Response::not_found(),
                    },
                    QueryOp::Delete => {
                        if map.remove(&q.key.to_vec()).is_some() {
                            Response::ok()
                        } else {
                            Response::not_found()
                        }
                    }
                })
                .collect()
        }
    }

    fn echo_store_server() -> KvServer {
        KvServer::start("127.0.0.1:0", echo_store_handler()).expect("bind ephemeral port")
    }

    fn echo_store_server_batched(cfg: BatchConfig) -> KvServer {
        KvServer::start_batched("127.0.0.1:0", cfg, echo_store_handler())
            .expect("bind ephemeral port")
    }

    #[test]
    fn round_trip_over_tcp() {
        let server = echo_store_server();
        let mut client = KvClient::connect(server.addr()).unwrap();
        let rs = client
            .request(&[
                Query::set("tcp-key", "tcp-value"),
                Query::get("tcp-key"),
                Query::get("absent"),
                Query::delete("tcp-key"),
            ])
            .unwrap();
        assert_eq!(rs.len(), 4);
        assert_eq!(rs[0].status, ResponseStatus::Ok);
        assert_eq!(&rs[1].value[..], b"tcp-value");
        assert_eq!(rs[2].status, ResponseStatus::NotFound);
        assert_eq!(rs[3].status, ResponseStatus::Ok);
        assert_eq!(server.stats().queries.load(Ordering::Relaxed), 4);
        server.shutdown();
    }

    #[test]
    fn round_trip_over_tcp_batched() {
        let server = echo_store_server_batched(BatchConfig::default());
        let mut client = KvClient::connect(server.addr()).unwrap();
        let rs = client
            .request(&[
                Query::set("tcp-key", "tcp-value"),
                Query::get("tcp-key"),
                Query::get("absent"),
                Query::delete("tcp-key"),
            ])
            .unwrap();
        assert_eq!(rs.len(), 4);
        assert_eq!(rs[0].status, ResponseStatus::Ok);
        assert_eq!(&rs[1].value[..], b"tcp-value");
        assert_eq!(rs[2].status, ResponseStatus::NotFound);
        assert_eq!(rs[3].status, ResponseStatus::Ok);
        let stats = server.stats().snapshot();
        assert_eq!(stats.queries, 4);
        assert!(stats.dispatches >= 1);
        assert_eq!(stats.dispatched_frames, 1);
        server.shutdown();
    }

    #[test]
    fn multiple_clients_share_one_store() {
        let server = echo_store_server();
        let mut a = KvClient::connect(server.addr()).unwrap();
        let mut b = KvClient::connect(server.addr()).unwrap();
        a.request(&[Query::set("shared", "from-a")]).unwrap();
        let rs = b.request(&[Query::get("shared")]).unwrap();
        assert_eq!(&rs[0].value[..], b"from-a");
        assert_eq!(server.stats().connections.load(Ordering::Relaxed), 2);
        server.shutdown();
    }

    #[test]
    fn multiple_clients_share_one_store_batched() {
        let server = echo_store_server_batched(BatchConfig::default());
        let mut a = KvClient::connect(server.addr()).unwrap();
        let mut b = KvClient::connect(server.addr()).unwrap();
        a.request(&[Query::set("shared", "from-a")]).unwrap();
        let rs = b.request(&[Query::get("shared")]).unwrap();
        assert_eq!(&rs[0].value[..], b"from-a");
        assert_eq!(server.stats().connections.load(Ordering::Relaxed), 2);
        server.shutdown();
    }

    #[test]
    fn malformed_frames_get_empty_response_not_disconnect() {
        let server = echo_store_server();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        // A frame claiming 1 record but truncated.
        let garbage = [1u8, 0]; // count=1, nothing else
        stream
            .write_all(&(garbage.len() as u32).to_le_bytes())
            .unwrap();
        stream.write_all(&garbage).unwrap();
        stream.flush().unwrap();
        let mut client = KvClient::from_stream(stream);
        let rs = client.recv().unwrap();
        assert!(rs.is_empty());
        assert_eq!(server.stats().bad_frames.load(Ordering::Relaxed), 1);
        // Connection still usable.
        let rs = client.request(&[Query::get("x")]).unwrap();
        assert_eq!(rs[0].status, ResponseStatus::NotFound);
        server.shutdown();
    }

    #[test]
    fn malformed_frames_get_empty_response_batched() {
        let server = echo_store_server_batched(BatchConfig::default());
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        let garbage = [1u8, 0];
        stream
            .write_all(&(garbage.len() as u32).to_le_bytes())
            .unwrap();
        stream.write_all(&garbage).unwrap();
        stream.flush().unwrap();
        let mut client = KvClient::from_stream(stream);
        let rs = client.recv().unwrap();
        assert!(rs.is_empty());
        assert_eq!(server.stats().bad_frames.load(Ordering::Relaxed), 1);
        let rs = client.request(&[Query::get("x")]).unwrap();
        assert_eq!(rs[0].status, ResponseStatus::NotFound);
        server.shutdown();
    }

    #[test]
    fn oversized_batches_are_rejected_client_side() {
        let server = echo_store_server();
        let mut client = KvClient::connect(server.addr()).unwrap();
        let huge: Vec<Query> = (0..8)
            .map(|i| Query::set(format!("k{i}"), vec![b'x'; MAX_FRAME_BYTES / 4]))
            .collect();
        let err = client.request(&huge).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
        server.shutdown();
    }

    #[test]
    fn cross_connection_frames_aggregate_into_one_dispatch() {
        // Hold the drain window wide open, fill the ring from two
        // connections, and check the dispatcher batched them together.
        let server = echo_store_server_batched(BatchConfig {
            wavefront_queries: 64,
            max_batch_delay: Duration::from_millis(250),
            ..BatchConfig::default()
        });
        let mut a = KvClient::connect(server.addr()).unwrap();
        let mut b = KvClient::connect(server.addr()).unwrap();
        a.send(&[Query::set("a", "1")]).unwrap();
        b.send(&[Query::set("b", "2")]).unwrap();
        assert_eq!(a.recv().unwrap()[0].status, ResponseStatus::Ok);
        assert_eq!(b.recv().unwrap()[0].status, ResponseStatus::Ok);
        let stats = server.stats().snapshot();
        assert_eq!(stats.frames, 2);
        // Both frames were below one wavefront, so the drain window held
        // them open; at least one dispatch must have carried >1 frame
        // unless scheduling delivered them far apart — accept either but
        // require the histogram and dispatch counters to be consistent.
        assert_eq!(stats.dispatched_frames, 2);
        assert!(stats.dispatches <= 2);
        let hist_total: u64 = stats.batch_hist.iter().sum();
        assert_eq!(hist_total, stats.dispatches);
        server.shutdown();
    }

    #[test]
    fn batch_histogram_buckets() {
        assert_eq!(hist_bucket(1), 0);
        assert_eq!(hist_bucket(2), 1);
        assert_eq!(hist_bucket(3), 2);
        assert_eq!(hist_bucket(4), 2);
        assert_eq!(hist_bucket(5), 3);
        assert_eq!(hist_bucket(8), 3);
        assert_eq!(hist_bucket(16), 4);
        assert_eq!(hist_bucket(64), 6);
        assert_eq!(hist_bucket(65), 7);
        assert_eq!(hist_bucket(100_000), 7);
    }

    #[test]
    fn snapshot_delta_subtracts_counters_and_keeps_depth_max() {
        let a = NetStatsSnapshot {
            frames: 10,
            queries: 100,
            dispatches: 4,
            ring_depth_max: 7,
            sd_stall_retired: 1,
            sd_writable_parks: 3,
            sd_buf_hits: 50,
            sd_pending_bytes_hiwater: 9000,
            ..NetStatsSnapshot::default()
        };
        let b = NetStatsSnapshot {
            frames: 25,
            queries: 260,
            dispatches: 9,
            ring_depth_max: 5,
            sd_writer_threads: 2,
            sd_stall_retired: 4,
            sd_writable_parks: 10,
            sd_buf_hits: 80,
            sd_pending_bytes_hiwater: 4000,
            ..NetStatsSnapshot::default()
        };
        let d = b.delta_since(&a);
        assert_eq!(d.frames, 15);
        assert_eq!(d.queries, 160);
        assert_eq!(d.dispatches, 5);
        assert_eq!(d.ring_depth_max, 7);
        // New egress counters subtract; the pending-bytes high water
        // folds by max and the thread count carries the current gauge.
        assert_eq!(d.sd_stall_retired, 3);
        assert_eq!(d.sd_writable_parks, 7);
        assert_eq!(d.sd_buf_hits, 30);
        assert_eq!(d.sd_pending_bytes_hiwater, 9000);
        assert_eq!(d.sd_writer_threads, 2);
    }

    /// A three-request burst for each protocol, with the decode
    /// payloads the reader must carve out of it.
    fn carve_burst(proto: ProtocolKind) -> (Vec<u8>, Vec<Vec<u8>>) {
        match proto {
            ProtocolKind::Dido => {
                let mut stream = BytesMut::new();
                let mut payloads = Vec::new();
                for batch in [
                    vec![Query::set("alpha", "1"), Query::get("alpha")],
                    vec![Query::get("beta")],
                    vec![Query::delete("alpha")],
                ] {
                    let before = stream.len();
                    crate::protocol::encode_queries_wire_into(&mut stream, &batch);
                    payloads.push(stream[before + 4..].to_vec());
                }
                (stream.to_vec(), payloads)
            }
            ProtocolKind::Memcached => {
                let requests: [&[u8]; 3] = [
                    b"set alpha 0 0 3\r\none\r\n",
                    b"get alpha beta\r\n",
                    b"delete alpha noreply\r\n",
                ];
                let stream = requests.concat();
                (stream, requests.iter().map(|r| r.to_vec()).collect())
            }
            ProtocolKind::Resp => {
                let requests: [&[u8]; 3] = [
                    b"*3\r\n$3\r\nSET\r\n$5\r\nalpha\r\n$3\r\none\r\n",
                    b"*2\r\n$3\r\nGET\r\n$5\r\nalpha\r\n",
                    b"PING\r\n",
                ];
                let stream = requests.concat();
                (stream, requests.iter().map(|r| r.to_vec()).collect())
            }
        }
    }

    /// Feed `stream` to a fresh reader in two pieces cut at `split`,
    /// carving after each piece, and return every payload delivered.
    fn carve_in_two(proto: ProtocolKind, stream: &[u8], split: usize) -> Vec<Vec<u8>> {
        let mut reader = FrameReader::with_proto(proto);
        let mut got = Vec::new();
        for piece in [&stream[..split], &stream[split..]] {
            reader.buf.extend_from_slice(piece);
            reader.carve().expect("valid stream must carve");
            got.extend(reader.pending.drain(..).map(|p| p.to_vec()));
        }
        assert!(
            reader.buf.is_empty(),
            "no bytes may linger after a complete {proto} burst"
        );
        got
    }

    #[test]
    fn every_codec_carves_the_same_burst_at_every_split_boundary() {
        // The frame-boundary invariant, exhaustively: wherever a read
        // happens to end, the carved request sequence is identical.
        for proto in ProtocolKind::all() {
            let (stream, expected) = carve_burst(proto);
            for split in 0..=stream.len() {
                let got = carve_in_two(proto, &stream, split);
                assert_eq!(got, expected, "{proto} burst split at byte {split}");
            }
        }
    }

    #[test]
    fn oversized_frames_are_connection_fatal_for_every_codec() {
        // A length field beyond MAX_FRAME_BYTES (or an unbounded line)
        // can never resync, so carve must error — retiring the conn —
        // instead of buffering forever.
        let poison: [(ProtocolKind, Vec<u8>); 4] = [
            (
                ProtocolKind::Dido,
                ((MAX_FRAME_BYTES + 1) as u32).to_le_bytes().to_vec(),
            ),
            (
                ProtocolKind::Memcached,
                format!("set k 0 0 {}\r\n", MAX_FRAME_BYTES + 1).into_bytes(),
            ),
            (
                ProtocolKind::Memcached,
                vec![b'g'; crate::codec::MAX_LINE_BYTES + 1],
            ),
            (
                ProtocolKind::Resp,
                format!("*{}\r\n", crate::codec::MAX_RESP_ARRAY + 1).into_bytes(),
            ),
        ];
        for (proto, bytes) in poison {
            let mut reader = FrameReader::with_proto(proto);
            reader.buf.extend_from_slice(&bytes);
            assert!(
                reader.carve().is_err(),
                "{proto} must retire the connection on oversized input"
            );
        }
    }

    #[test]
    fn requests_carved_before_a_fatal_error_are_still_delivered() {
        // A pipelined burst whose tail is poison: the good head must
        // reach the dispatcher so its replies go out before the close.
        let (head, expected) = carve_burst(ProtocolKind::Memcached);
        let mut reader = FrameReader::with_proto(ProtocolKind::Memcached);
        reader.buf.extend_from_slice(&head);
        reader
            .buf
            .extend_from_slice(format!("set k 0 0 {}\r\n", MAX_FRAME_BYTES + 1).as_bytes());
        assert!(reader.carve().is_err());
        let got: Vec<Vec<u8>> = reader.pending.drain(..).map(|p| p.to_vec()).collect();
        assert_eq!(got, expected);
    }
}
