//! SD egress plane: sharded, readiness-driven response writers.
//!
//! PR 3's SD stage was one blocking thread that serviced every socket:
//! a single stalled peer parked the whole server in `wait_writable` for
//! up to 30 s, every wakeup re-deduplicated touched connections with a
//! linear scan, and every dispatch allocated fresh response buffers and
//! iovec scratch. This module replaces it with a small fixed pool of
//! *shards* (see [`effective_sd_writers`]): connections map to shards
//! by id, and each shard owns its connections' write halves, reorder
//! buffers, and a `compat-mio` [`Poll`] instance of its own.
//!
//! Three properties the old writer lacked:
//!
//! * **Write-side readiness.** A socket that returns `WouldBlock` is
//!   registered for WRITABLE interest and its pending runs stay parked
//!   per-connection; the shard keeps servicing every other socket. The
//!   blanket 30 s stall becomes a per-connection deadline
//!   ([`BatchConfig::sd_stall_timeout`]) that retires only the stalled
//!   peer (counted in `ServerStats::sd_stall_retired`).
//! * **Buffer-reuse rings.** Encoded-response `BytesMut` buffers cycle
//!   through a per-shard [`BufRing`] (pelikan `buf_ring` style):
//!   dispatchers draw recycled buffers when encoding, the shard returns
//!   them after the bytes hit the wire, and the vectored-write scratch
//!   is a stack array — steady-state egress performs zero allocations
//!   (audited by `crates/net/tests/sd_alloc.rs`).
//! * **Slow-consumer backpressure.** Each connection's not-yet-written
//!   bytes are tracked; crossing [`BatchConfig::sd_hiwater_bytes`]
//!   pauses that connection's READ interest in its reactor (resumed at
//!   half the mark), so an un-drained client is bounded by the
//!   watermark plus in-flight frames instead of growing without limit.
//!
//! The ordering contract is unchanged: `Open` reaches a shard's channel
//! before any run or `Eof` for that connection can (the reactor sends
//! `Open` before registering the read half), and the channel is FIFO,
//! so per-connection sequence numbers still reorder exactly as before.

use crate::protocol::encode_responses_wire_into;
use crate::reactor::ReactorHandles;
use crate::server::{ServerStats, TaggedFrame};
use bytes::BytesMut;
use crossbeam::channel::{self, Receiver, Sender, TryRecvError};
use mio::{Events, Interest, Poll, Token, Waker};
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::{IoSlice, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Token of each shard's waker.
const WAKER_TOKEN: Token = Token(0);
/// Connection tokens start here: `CONN_TOKEN_BASE + conn id`.
const CONN_TOKEN_BASE: usize = 1;

/// Fallback poll timeout: wakeups are event-driven, this only bounds
/// how long a lost signal (or the teardown disconnect, which cannot
/// wake an already-parked poll) could go unnoticed.
const POLL_TIMEOUT: Duration = Duration::from_millis(500);

/// Most buffers one vectored write submits. `IoSlice` is `Copy`, so the
/// scratch is a stack array — no heap iovec per write (satellite of the
/// zero-allocation audit).
const SD_IOV_MAX: usize = 64;

/// Recycled buffers one shard's ring retains.
const BUF_RING_SLOTS: usize = 1024;

/// Largest buffer the ring recycles; responses that ballooned past this
/// are dropped so one huge frame cannot pin its capacity forever.
const BUF_MAX_RECYCLE: usize = 256 << 10;

/// Recycled dispatch-batch vectors one shard retains.
const MSG_POOL_SLOTS: usize = 32;

/// Resolve a configured SD writer count: `0` means `min(2, cores/2)`
/// with a floor of one — egress is cheaper than framing or dispatch, so
/// it gets a small slice of the machine by default.
#[must_use]
pub(crate) fn effective_sd_writers(configured: usize) -> usize {
    if configured > 0 {
        configured
    } else {
        (std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            / 2)
        .clamp(1, 2)
    }
}

/// A contiguous range of response frames for one connection, already in
/// wire form (length prefixes included): frames `first_seq ..
/// first_seq + count` back-to-back in `bytes`. The buffer is drawn from
/// and returned to a shard's [`BufRing`].
pub(crate) struct ResponseRun {
    pub(crate) first_seq: u64,
    pub(crate) count: u64,
    pub(crate) bytes: BytesMut,
}

/// One dispatch's output for a single shard: `(conn, run)` pairs in
/// slot order. The vector itself is pooled (see [`SdPlane::take_batch`])
/// so the dispatch hot path allocates nothing.
pub(crate) type RunBatch = Vec<(u64, ResponseRun)>;

/// Messages to one SD shard.
pub(crate) enum SdMsg {
    /// A connection was accepted; `stream` is its write half.
    Open { conn: u64, stream: TcpStream },
    /// Response runs for one connection (reactor overflow answers).
    Runs { conn: u64, runs: Vec<ResponseRun> },
    /// One dispatch's runs for this shard's connections.
    Batch(RunBatch),
    /// The reactor consumed `frames_read` frames total and retired the
    /// read side; the connection closes once every response below that
    /// is on the wire.
    Eof { conn: u64, frames_read: u64 },
}

/// A pool of recycled `BytesMut` buffers (pelikan `buf_ring` style).
/// `get` pops a cleared buffer whose capacity survived its last trip to
/// the wire; `put` returns one, dropping it if the ring is full or the
/// buffer outgrew [`BUF_MAX_RECYCLE`]-style bounds. Hit/miss counters
/// feed the egress gauges.
pub struct BufRing {
    free: Mutex<Vec<BytesMut>>,
    slots: usize,
    max_recycle: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl BufRing {
    /// Ring retaining up to `slots` buffers of at most `max_recycle`
    /// capacity each.
    #[must_use]
    pub fn new(slots: usize, max_recycle: usize) -> BufRing {
        BufRing {
            free: Mutex::new(Vec::with_capacity(slots)),
            slots,
            max_recycle,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Pop a recycled buffer (cleared, capacity preserved), or a fresh
    /// empty one if the ring is dry.
    #[must_use]
    pub fn get(&self) -> BytesMut {
        match self.free.lock().pop() {
            Some(mut b) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                b.clear();
                b
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                BytesMut::new()
            }
        }
    }

    /// Return a buffer to the ring. Buffers that never grew a capacity,
    /// outgrew the recycle bound, or arrive with the ring full are
    /// simply dropped.
    pub fn put(&self, buf: BytesMut) {
        if buf.capacity() == 0 || buf.capacity() > self.max_recycle {
            return;
        }
        let mut free = self.free.lock();
        if free.len() < self.slots {
            free.push(buf);
        }
    }

    /// Buffers served from the ring.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Buffers that had to be freshly allocated.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

/// Per-shard handle held by the plane: the channel, the waker that
/// unparks the shard's poll, and the shard's buffer pools (shared with
/// dispatchers, which draw from them when encoding).
struct SdShardHandle {
    tx: Sender<SdMsg>,
    waker: Arc<Waker>,
    bufs: Arc<BufRing>,
    msgs: Arc<Mutex<Vec<RunBatch>>>,
}

/// The dispatchers' and reactors' handle to the egress plane: routes
/// per-connection traffic to the owning shard. Dropping the last clone
/// closes every shard's channel and wakes it, which is what lets the
/// shard threads exit at teardown.
pub(crate) struct SdPlane {
    shards: Vec<SdShardHandle>,
}

impl SdPlane {
    #[must_use]
    pub(crate) fn n_shards(&self) -> usize {
        self.shards.len()
    }

    #[must_use]
    pub(crate) fn shard_of(&self, conn: u64) -> usize {
        (conn % self.shards.len() as u64) as usize
    }

    /// Draw a recycled encode buffer from `shard`'s ring.
    #[must_use]
    pub(crate) fn get_buf(&self, shard: usize) -> BytesMut {
        self.shards[shard].bufs.get()
    }

    /// Draw a recycled dispatch-batch vector for `shard`.
    #[must_use]
    pub(crate) fn take_batch(&self, shard: usize) -> RunBatch {
        self.shards[shard].msgs.lock().pop().unwrap_or_default()
    }

    /// Send one dispatch's runs to `shard` and wake it.
    pub(crate) fn send_batch(&self, shard: usize, batch: RunBatch) {
        let h = &self.shards[shard];
        if h.tx.send(SdMsg::Batch(batch)).is_ok() {
            let _ = h.waker.wake();
        }
    }

    /// Announce an accepted connection's write half to its shard. Must
    /// happen before the read half registers with a reactor, so the
    /// FIFO channel delivers `Open` before any run or `Eof`.
    pub(crate) fn send_open(&self, conn: u64, stream: TcpStream) {
        let h = &self.shards[self.shard_of(conn)];
        if h.tx.send(SdMsg::Open { conn, stream }).is_ok() {
            let _ = h.waker.wake();
        }
    }

    /// Mark a connection's read side done after `frames_read` frames.
    pub(crate) fn send_eof(&self, conn: u64, frames_read: u64) {
        let h = &self.shards[self.shard_of(conn)];
        if h.tx.send(SdMsg::Eof { conn, frames_read }).is_ok() {
            let _ = h.waker.wake();
        }
    }

    /// Answer ring-overflow drops with empty response frames, one per
    /// dropped request, so the connection's sequence numbering never
    /// develops a hole (see `ServerStats::dropped_frames`). Buffers come
    /// from the owning shard's ring like every other run.
    pub(crate) fn overflow_answers(&self, conn: u64, tagged: &mut Vec<TaggedFrame>) {
        let shard = self.shard_of(conn);
        let runs: Vec<ResponseRun> = tagged
            .drain(..)
            .map(|t| {
                let mut bytes = self.get_buf(shard);
                encode_responses_wire_into(&mut bytes, &[]);
                ResponseRun {
                    first_seq: t.seq,
                    count: 1,
                    bytes,
                }
            })
            .collect();
        let h = &self.shards[shard];
        if h.tx.send(SdMsg::Runs { conn, runs }).is_ok() {
            let _ = h.waker.wake();
        }
    }
}

impl Drop for SdPlane {
    fn drop(&mut self) {
        // Close each shard's channel *before* waking it: shard threads
        // hold their own waker clones, so the eventfd outlives this
        // handle and a parked shard observes the disconnect promptly
        // instead of after the fallback poll timeout.
        for h in self.shards.drain(..) {
            let SdShardHandle { tx, waker, .. } = h;
            drop(tx);
            let _ = waker.wake();
        }
    }
}

/// Everything one shard thread needs, built before any thread spawns.
pub(crate) struct SdShardPart {
    poll: Poll,
    rx: Receiver<SdMsg>,
    waker: Arc<Waker>,
    bufs: Arc<BufRing>,
    msgs: Arc<Mutex<Vec<RunBatch>>>,
}

/// Shard-loop knobs resolved from `BatchConfig`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SdShardCfg {
    /// Per-connection unwritable deadline before the peer is retired.
    pub(crate) stall: Duration,
    /// Pending-bytes mark that pauses the connection's reactor reads.
    pub(crate) hiwater: usize,
    /// Mark below which paused reads resume (half the high water).
    pub(crate) lowater: usize,
}

impl SdShardCfg {
    pub(crate) fn new(stall: Duration, hiwater: usize) -> SdShardCfg {
        let hiwater = hiwater.max(1);
        SdShardCfg {
            stall,
            hiwater,
            lowater: hiwater / 2,
        }
    }
}

/// Build the plane and its per-shard parts (one [`Poll`] + waker +
/// channel + buffer pools each). Shard threads are spawned by the
/// caller from the returned parts.
pub(crate) fn build_sd_plane(n: usize) -> std::io::Result<(SdPlane, Vec<SdShardPart>)> {
    let n = n.max(1);
    let mut shards = Vec::with_capacity(n);
    let mut parts = Vec::with_capacity(n);
    for _ in 0..n {
        let poll = Poll::new()?;
        let waker = Arc::new(Waker::new(poll.registry(), WAKER_TOKEN)?);
        let (tx, rx) = channel::unbounded::<SdMsg>();
        let bufs = Arc::new(BufRing::new(BUF_RING_SLOTS, BUF_MAX_RECYCLE));
        let msgs = Arc::new(Mutex::new(Vec::with_capacity(MSG_POOL_SLOTS)));
        shards.push(SdShardHandle {
            tx,
            waker: Arc::clone(&waker),
            bufs: Arc::clone(&bufs),
            msgs: Arc::clone(&msgs),
        });
        parts.push(SdShardPart {
            poll,
            rx,
            waker,
            bufs,
            msgs,
        });
    }
    Ok((SdPlane { shards }, parts))
}

/// Per-connection state inside one SD shard.
struct SdConn {
    stream: TcpStream,
    /// Next sequence number owed to the client.
    next: u64,
    /// Total frames the reader consumed, once known.
    eof: Option<u64>,
    /// Out-of-order runs: first_seq → (frame count, wire bytes). The
    /// in-order common case bypasses this map entirely (runs go
    /// straight to `queue`), keeping the steady state allocation-free.
    pending: BTreeMap<u64, (u64, BytesMut)>,
    /// In-order runs not yet (fully) written; front buffer may be
    /// partially consumed (`head_written`).
    queue: VecDeque<BytesMut>,
    /// Bytes of `queue.front()` already on the wire.
    head_written: usize,
    /// Bytes parked or queued but not yet written (backpressure input).
    unsent: usize,
    /// Registered for WRITABLE interest since this instant (the socket
    /// returned `WouldBlock` and made no progress after).
    parked: Option<Instant>,
    /// This connection's reactor READ interest is currently paused.
    read_paused: bool,
    /// A write failed; stop writing but keep consuming messages until
    /// EOF so the connection can still be retired.
    dead: bool,
    /// Already queued for service this wakeup (O(1) touch dedupe —
    /// the old writer's `touched.contains` scan was quadratic in the
    /// number of touched connections per wakeup).
    touched: bool,
}

impl SdConn {
    /// Whether every response owed to the client is on the wire (or the
    /// socket died), so the connection can be closed.
    fn done(&self) -> bool {
        match self.eof {
            Some(total) => self.dead || (self.next >= total && self.queue.is_empty()),
            None => false,
        }
    }
}

/// Everything `service_conn` and friends need besides the connection.
struct ShardCtx<'a> {
    registry: &'a mio::Registry,
    bufs: &'a BufRing,
    reactors: &'a ReactorHandles,
    stats: &'a ServerStats,
    cfg: SdShardCfg,
}

/// One shard's event loop: drain the channel, service touched
/// connections, poll for writability, sweep stall deadlines.
pub(crate) fn run_sd_shard(
    part: SdShardPart,
    cfg: SdShardCfg,
    reactors: Arc<ReactorHandles>,
    stats: Arc<ServerStats>,
) {
    let SdShardPart {
        mut poll,
        rx,
        waker: _waker, // keeps the eventfd alive past the plane's drop
        bufs,
        msgs,
    } = part;
    let mut events = Events::with_capacity(1024);
    let mut ready: Vec<Token> = Vec::new();
    let mut conns: HashMap<u64, SdConn> = HashMap::new();
    let mut touched: Vec<u64> = Vec::new();
    // Earliest instant any parked connection could hit its stall
    // deadline; `None` while nothing is parked.
    let mut next_sweep: Option<Instant> = None;
    // Ring counters fold into the shared stats as deltas so multiple
    // shards (and the dispatchers drawing from their rings) sum.
    let (mut last_hits, mut last_misses) = (0u64, 0u64);
    let mut disconnected = false;
    loop {
        // Apply every queued message, then service each touched
        // connection once.
        touched.clear();
        loop {
            match rx.try_recv() {
                Ok(msg) => apply_msg(
                    msg,
                    &mut conns,
                    &mut touched,
                    &msgs,
                    &ShardCtx {
                        registry: poll.registry(),
                        bufs: &bufs,
                        reactors: &reactors,
                        stats: &stats,
                        cfg,
                    },
                ),
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    disconnected = true;
                    break;
                }
            }
        }
        for &conn in &touched {
            let ctx = ShardCtx {
                registry: poll.registry(),
                bufs: &bufs,
                reactors: &reactors,
                stats: &stats,
                cfg,
            };
            service_and_maybe_retire(conn, &mut conns, &ctx, &mut next_sweep);
        }
        fold_ring_stats(&bufs, &stats, &mut last_hits, &mut last_misses);
        if disconnected {
            break;
        }
        let timeout = match next_sweep {
            Some(at) => at
                .saturating_duration_since(Instant::now())
                .min(POLL_TIMEOUT),
            None => POLL_TIMEOUT,
        };
        if poll.poll(&mut events, Some(timeout)).is_err() {
            break; // broken selector: tear down rather than spin
        }
        ready.clear();
        ready.extend(events.iter().map(|e| e.token()));
        for &tok in &ready {
            if tok == WAKER_TOKEN {
                continue; // channel is drained at the top of the loop
            }
            let conn = (tok.0 - CONN_TOKEN_BASE) as u64;
            let ctx = ShardCtx {
                registry: poll.registry(),
                bufs: &bufs,
                reactors: &reactors,
                stats: &stats,
                cfg,
            };
            service_and_maybe_retire(conn, &mut conns, &ctx, &mut next_sweep);
        }
        if next_sweep.is_some_and(|at| Instant::now() >= at) {
            let ctx = ShardCtx {
                registry: poll.registry(),
                bufs: &bufs,
                reactors: &reactors,
                stats: &stats,
                cfg,
            };
            next_sweep = sweep_stalls(&mut conns, &ctx);
        }
    }
    // Teardown (all plane handles dropped): every queued message has
    // been applied and every touched connection serviced once above.
    // Retire the survivors so gauges and leak counters stay truthful,
    // then drop the write halves to disconnect the clients.
    for (_, mut c) in conns.drain() {
        free_unwritten(&mut c, &ShardCtx {
            registry: poll.registry(),
            bufs: &bufs,
            reactors: &reactors,
            stats: &stats,
            cfg,
        });
        stats.sd_open_conns.fetch_sub(1, Ordering::Relaxed);
    }
    fold_ring_stats(&bufs, &stats, &mut last_hits, &mut last_misses);
}

/// Fold the ring's cumulative hit/miss counters into the shared stats
/// as deltas (dispatchers bump the ring from their side, so the shard
/// is the single folder per ring).
fn fold_ring_stats(bufs: &BufRing, stats: &ServerStats, last_hits: &mut u64, last_misses: &mut u64) {
    let (h, m) = (bufs.hits(), bufs.misses());
    if h != *last_hits {
        stats.sd_buf_hits.fetch_add(h - *last_hits, Ordering::Relaxed);
        *last_hits = h;
    }
    if m != *last_misses {
        stats
            .sd_buf_misses
            .fetch_add(m - *last_misses, Ordering::Relaxed);
        *last_misses = m;
    }
}

fn apply_msg(
    msg: SdMsg,
    conns: &mut HashMap<u64, SdConn>,
    touched: &mut Vec<u64>,
    msg_pool: &Mutex<Vec<RunBatch>>,
    ctx: &ShardCtx<'_>,
) {
    match msg {
        SdMsg::Open { conn, stream } => {
            ctx.stats.sd_open_conns.fetch_add(1, Ordering::Relaxed);
            conns.insert(
                conn,
                SdConn {
                    stream,
                    next: 0,
                    eof: None,
                    pending: BTreeMap::new(),
                    queue: VecDeque::new(),
                    head_written: 0,
                    unsent: 0,
                    parked: None,
                    read_paused: false,
                    dead: false,
                    touched: false,
                },
            );
        }
        SdMsg::Runs { conn, runs } => {
            if let Some(c) = conns.get_mut(&conn) {
                for r in runs {
                    park_run(c, r, ctx);
                }
                touch(conn, c, touched);
            } else {
                ctx.stats
                    .sd_pending_dropped
                    .fetch_add(runs.len() as u64, Ordering::Relaxed);
                for r in runs {
                    ctx.bufs.put(r.bytes);
                }
            }
        }
        SdMsg::Batch(mut batch) => {
            for (conn, run) in batch.drain(..) {
                match conns.get_mut(&conn) {
                    Some(c) => {
                        park_run(c, run, ctx);
                        touch(conn, c, touched);
                    }
                    None => {
                        // Already retired (e.g. stall-retired while the
                        // dispatch was in flight); the run can never be
                        // delivered.
                        ctx.stats
                            .sd_pending_dropped
                            .fetch_add(1, Ordering::Relaxed);
                        ctx.bufs.put(run.bytes);
                    }
                }
            }
            // Return the emptied vector so the dispatcher's next
            // scatter reuses its capacity.
            let mut pool = msg_pool.lock();
            if pool.len() < MSG_POOL_SLOTS {
                pool.push(batch);
            }
        }
        SdMsg::Eof { conn, frames_read } => {
            if let Some(c) = conns.get_mut(&conn) {
                c.eof = Some(frames_read);
                touch(conn, c, touched);
            }
        }
    }
}

fn touch(conn: u64, c: &mut SdConn, touched: &mut Vec<u64>) {
    if !c.touched {
        c.touched = true;
        touched.push(conn);
    }
}

/// Park one response run: straight onto the write queue when it is the
/// next run in sequence (the common case — no tree node churn), into
/// the reorder map otherwise. Runs for a dead socket are freed at once.
fn park_run(c: &mut SdConn, run: ResponseRun, ctx: &ShardCtx<'_>) {
    if c.dead {
        ctx.stats
            .sd_pending_dropped
            .fetch_add(1, Ordering::Relaxed);
        ctx.bufs.put(run.bytes);
        return;
    }
    c.unsent += run.bytes.len();
    if run.first_seq == c.next && c.pending.is_empty() {
        c.next += run.count;
        c.queue.push_back(run.bytes);
    } else {
        c.pending.insert(run.first_seq, (run.count, run.bytes));
    }
}

/// Service one connection (promote, write, park/unpark, backpressure)
/// and retire it when done.
fn service_and_maybe_retire(
    conn: u64,
    conns: &mut HashMap<u64, SdConn>,
    ctx: &ShardCtx<'_>,
    next_sweep: &mut Option<Instant>,
) {
    let Some(c) = conns.get_mut(&conn) else {
        return; // stale event or double touch after retire
    };
    c.touched = false;
    service_conn(conn, c, ctx, next_sweep);
    if c.done() {
        let mut c = conns.remove(&conn).expect("conn just found");
        free_unwritten(&mut c, ctx);
        ctx.stats.sd_open_conns.fetch_sub(1, Ordering::Relaxed);
        // The write half drops here: the client sees EOF.
    }
}

fn service_conn(
    conn: u64,
    c: &mut SdConn,
    ctx: &ShardCtx<'_>,
    next_sweep: &mut Option<Instant>,
) {
    // Promote every in-order run from the reorder map to the queue.
    while let Some((count, bytes)) = c.pending.remove(&c.next) {
        c.next += count;
        c.queue.push_back(bytes);
    }
    if !c.dead && !c.queue.is_empty() {
        match write_queue(&mut c.stream, &mut c.queue, &mut c.head_written, ctx.bufs) {
            Ok((written, blocked)) => {
                c.unsent -= written;
                if blocked {
                    if c.parked.is_none() {
                        if ctx
                            .registry
                            .register(
                                &c.stream,
                                Token(CONN_TOKEN_BASE + conn as usize),
                                Interest::WRITABLE,
                            )
                            .is_ok()
                        {
                            ctx.stats
                                .sd_writable_parks
                                .fetch_add(1, Ordering::Relaxed);
                            c.parked = Some(Instant::now());
                        } else {
                            mark_dead(conn, c, ctx);
                        }
                    } else if written > 0 {
                        // Partial progress restarts the stall clock:
                        // the deadline measures *continuous* stall.
                        c.parked = Some(Instant::now());
                    }
                    if let Some(since) = c.parked {
                        let deadline = since + ctx.cfg.stall;
                        *next_sweep = Some(match *next_sweep {
                            Some(at) => at.min(deadline),
                            None => deadline,
                        });
                    }
                } else {
                    let _ = c.stream.flush();
                    if c.parked.take().is_some() {
                        let _ = ctx.registry.deregister(&c.stream);
                    }
                }
            }
            Err(_) => mark_dead(conn, c, ctx),
        }
    }
    if !c.dead {
        ctx.stats
            .sd_pending_bytes_hiwater
            .fetch_max(c.unsent as u64, Ordering::Relaxed);
        if !c.read_paused && c.unsent > ctx.cfg.hiwater {
            c.read_paused = true;
            ctx.stats.sd_read_pauses.fetch_add(1, Ordering::Relaxed);
            ctx.reactors.set_read(conn, false);
        } else if c.read_paused && c.unsent <= ctx.cfg.lowater {
            c.read_paused = false;
            ctx.reactors.set_read(conn, true);
        }
    }
}

/// The socket can take no more responses (write error, or retired by
/// the stall sweep): free everything parked, undo watch/pause state,
/// and shut the socket down both ways so the reactor — which still owns
/// the shared file description's read half — observes it and posts the
/// `Eof` that lets the connection retire.
fn mark_dead(conn: u64, c: &mut SdConn, ctx: &ShardCtx<'_>) {
    c.dead = true;
    free_unwritten(c, ctx);
    if c.read_paused {
        c.read_paused = false;
        // Resume reads so the paused (deregistered) read half gets
        // re-registered and the reactor can observe the shutdown.
        ctx.reactors.set_read(conn, true);
    }
    let _ = c.stream.shutdown(Shutdown::Both);
}

/// Count and free every run this connection will never deliver,
/// returning the buffers to the shard's ring.
fn free_unwritten(c: &mut SdConn, ctx: &ShardCtx<'_>) {
    let undelivered = (c.queue.len() + c.pending.len()) as u64;
    if undelivered > 0 {
        ctx.stats
            .sd_pending_dropped
            .fetch_add(undelivered, Ordering::Relaxed);
    }
    for bytes in c.queue.drain(..) {
        ctx.bufs.put(bytes);
    }
    let pending = std::mem::take(&mut c.pending);
    for (_, (_, bytes)) in pending {
        ctx.bufs.put(bytes);
    }
    c.head_written = 0;
    c.unsent = 0;
    if c.parked.take().is_some() {
        let _ = ctx.registry.deregister(&c.stream);
    }
}

/// Retire every connection whose stall deadline passed; returns the
/// next deadline still outstanding.
fn sweep_stalls(conns: &mut HashMap<u64, SdConn>, ctx: &ShardCtx<'_>) -> Option<Instant> {
    let now = Instant::now();
    let mut next: Option<Instant> = None;
    let mut retire: Vec<u64> = Vec::new();
    for (&conn, c) in conns.iter_mut() {
        let Some(since) = c.parked else { continue };
        let deadline = since + ctx.cfg.stall;
        if now >= deadline {
            ctx.stats.sd_stall_retired.fetch_add(1, Ordering::Relaxed);
            mark_dead(conn, c, ctx);
            if c.done() {
                retire.push(conn);
            }
        } else {
            next = Some(match next {
                Some(at) => at.min(deadline),
                None => deadline,
            });
        }
    }
    for conn in retire {
        if let Some(mut c) = conns.remove(&conn) {
            free_unwritten(&mut c, ctx);
            ctx.stats.sd_open_conns.fetch_sub(1, Ordering::Relaxed);
        }
    }
    next
}

/// Write as much of `queue` as the socket will take in vectored chunks
/// of up to [`SD_IOV_MAX`] buffers, returning fully written buffers to
/// `pool`. Returns `(bytes_written, blocked)`; `blocked` means the
/// socket returned `WouldBlock` with data still queued. The iovec
/// scratch is a stack array (`IoSlice` is `Copy`), so this performs no
/// allocation.
#[doc(hidden)]
pub fn write_queue(
    stream: &mut TcpStream,
    queue: &mut VecDeque<BytesMut>,
    head_written: &mut usize,
    pool: &BufRing,
) -> std::io::Result<(usize, bool)> {
    let mut total = 0usize;
    while !queue.is_empty() {
        let mut iov = [IoSlice::new(&[]); SD_IOV_MAX];
        let mut n_iov = 0usize;
        for (i, b) in queue.iter().enumerate().take(SD_IOV_MAX) {
            iov[n_iov] = IoSlice::new(if i == 0 { &b[*head_written..] } else { &b[..] });
            n_iov += 1;
        }
        let n = match stream.write_vectored(&iov[..n_iov]) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::WriteZero,
                    "wrote zero bytes",
                ))
            }
            Ok(n) => n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok((total, true)),
            Err(e) => return Err(e),
        };
        total += n;
        let mut advanced = n;
        while advanced > 0 {
            let avail = queue.front().expect("bytes written from a buffer").len()
                - *head_written;
            if advanced >= avail {
                advanced -= avail;
                *head_written = 0;
                pool.put(queue.pop_front().expect("front just measured"));
            } else {
                *head_written += advanced;
                advanced = 0;
            }
        }
    }
    Ok((total, false))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buf_ring_recycles_and_counts() {
        let ring = BufRing::new(2, 1024);
        let mut a = ring.get();
        assert_eq!(ring.misses(), 1);
        a.extend_from_slice(&[7u8; 100]);
        let cap = a.capacity();
        ring.put(a);
        let b = ring.get();
        assert_eq!(ring.hits(), 1);
        assert!(b.is_empty(), "recycled buffers come back cleared");
        assert_eq!(b.capacity(), cap, "capacity survives the round trip");
        // Oversized buffers are not retained.
        let mut big = BytesMut::new();
        big.resize(4096, 0);
        ring.put(big);
        let _ = ring.get();
        let _ = ring.get();
        assert_eq!(ring.misses(), 3, "oversized buffer was dropped, not pooled");
    }

    #[test]
    fn effective_sd_writers_resolution() {
        assert_eq!(effective_sd_writers(3), 3);
        let auto = effective_sd_writers(0);
        assert!((1..=2).contains(&auto));
    }
}
