//! SD egress plane: sharded, readiness-driven response writers.
//!
//! PR 3's SD stage was one blocking thread that serviced every socket:
//! a single stalled peer parked the whole server in `wait_writable` for
//! up to 30 s, every wakeup re-deduplicated touched connections with a
//! linear scan, and every dispatch allocated fresh response buffers and
//! iovec scratch. This module replaces it with a small fixed pool of
//! *shards* (see [`effective_sd_writers`]): connections map to shards
//! by id, and each shard owns its connections' write halves, reorder
//! buffers, and a `compat-mio` [`Poll`] instance of its own.
//!
//! Three properties the old writer lacked:
//!
//! * **Write-side readiness.** A socket that returns `WouldBlock` is
//!   registered for WRITABLE interest and its pending runs stay parked
//!   per-connection; the shard keeps servicing every other socket. The
//!   blanket 30 s stall becomes a per-connection deadline
//!   ([`BatchConfig::sd_stall_timeout`]) that retires only the stalled
//!   peer (counted in `ServerStats::sd_stall_retired`).
//! * **Buffer-reuse rings.** Encoded-response `BytesMut` buffers cycle
//!   through a per-shard [`BufRing`] (pelikan `buf_ring` style):
//!   dispatchers draw recycled buffers when encoding, the shard returns
//!   them after the bytes hit the wire, and the vectored-write scratch
//!   is a stack array — steady-state egress performs zero allocations
//!   (audited by `crates/net/tests/sd_alloc.rs`).
//! * **Slow-consumer backpressure.** Each connection's not-yet-written
//!   bytes are tracked; crossing [`BatchConfig::sd_hiwater_bytes`]
//!   pauses that connection's READ interest in its reactor (resumed at
//!   half the mark), so an un-drained client is bounded by the
//!   watermark plus in-flight frames instead of growing without limit.
//!
//! The ordering contract is unchanged: `Open` reaches a shard's channel
//! before any run or `Eof` for that connection can (the reactor sends
//! `Open` before registering the read half), and the channel is FIFO,
//! so per-connection sequence numbers still reorder exactly as before.
//!
//! With [`IoBackend::Uring`] the shard trades the epoll loop for a
//! batched-submission one: each connection keeps at most one `writev`
//! SQE in flight (its iovec array pinned until the CQE lands), a full
//! dispatch's worth of submissions is flushed with a single
//! `io_uring_enter`, and the CQE's arrival doubles as the writability
//! notification — a short write means the socket buffer filled, which
//! is the uring analogue of `WouldBlock`. Reorder, backpressure, stall
//! and teardown semantics are identical across backends.

use crate::codec::encode_overflow_into;
use crate::reactor::ReactorHandles;
use crate::server::{IoBackend, ServerStats, TaggedFrame};
use bytes::BytesMut;
use crossbeam::channel::{self, Receiver, Sender, TryRecvError};
use mio::{Events, Interest, Poll, Token, Waker};
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::io::{IoSlice, Write};
use std::net::{Shutdown, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Token of each shard's waker.
const WAKER_TOKEN: Token = Token(0);
/// Connection tokens start here: `CONN_TOKEN_BASE + conn id`.
const CONN_TOKEN_BASE: usize = 1;

/// Fallback poll timeout: wakeups are event-driven, this only bounds
/// how long a lost signal (or the teardown disconnect, which cannot
/// wake an already-parked poll) could go unnoticed.
const POLL_TIMEOUT: Duration = Duration::from_millis(500);

/// Most buffers one vectored write submits. `IoSlice` is `Copy`, so the
/// scratch is a stack array — no heap iovec per write (satellite of the
/// zero-allocation audit).
const SD_IOV_MAX: usize = 64;

/// Recycled buffers one shard's ring retains.
const BUF_RING_SLOTS: usize = 1024;

/// Largest buffer the ring recycles; responses that ballooned past this
/// are dropped so one huge frame cannot pin its capacity forever.
const BUF_MAX_RECYCLE: usize = 256 << 10;

/// Recycled dispatch-batch vectors one shard retains.
const MSG_POOL_SLOTS: usize = 32;

// io_uring backend knobs (see `run_sd_shard_uring`). User-data tags
// mirror the reactor's scheme: kind in the top 8 bits, conn id below.
const UD_KIND_SHIFT: u32 = 56;
const UD_DATA_MASK: u64 = (1 << UD_KIND_SHIFT) - 1;
const UD_WAKER: u64 = 1;
const UD_WRITE: u64 = 3;
const UD_CANCEL: u64 = 4;

fn ud(kind: u64, data: u64) -> u64 {
    (kind << UD_KIND_SHIFT) | (data & UD_DATA_MASK)
}

// Raw errnos the write-CQE path discriminates on (`res` is a negated
// errno).
const ECANCELED: i32 = 125;
const EINTR_RAW: i32 = 4;

/// SQ slots per SD shard ring: one dispatch submits at most one writev
/// per touched connection, flushed incrementally when the queue fills.
const SD_URING_SQ: u32 = 1024;
/// CQ slots, sized above the SQ for completion bursts.
const SD_URING_CQ: u32 = 2048;

/// Resolve a configured SD writer count: `0` means `min(2, cores/2)`
/// with a floor of one — egress is cheaper than framing or dispatch, so
/// it gets a small slice of the machine by default.
#[must_use]
pub(crate) fn effective_sd_writers(configured: usize) -> usize {
    if configured > 0 {
        configured
    } else {
        (std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            / 2)
        .clamp(1, 2)
    }
}

/// A contiguous range of response frames for one connection, already in
/// wire form (length prefixes included): frames `first_seq ..
/// first_seq + count` back-to-back in `bytes`. The buffer is drawn from
/// and returned to a shard's [`BufRing`].
pub(crate) struct ResponseRun {
    pub(crate) first_seq: u64,
    pub(crate) count: u64,
    pub(crate) bytes: BytesMut,
}

/// One dispatch's output for a single shard: `(conn, run)` pairs in
/// slot order. The vector itself is pooled (see [`SdPlane::take_batch`])
/// so the dispatch hot path allocates nothing.
pub(crate) type RunBatch = Vec<(u64, ResponseRun)>;

/// Messages to one SD shard.
pub(crate) enum SdMsg {
    /// A connection was accepted; `stream` is its write half.
    Open { conn: u64, stream: TcpStream },
    /// Response runs for one connection (reactor overflow answers).
    Runs { conn: u64, runs: Vec<ResponseRun> },
    /// One dispatch's runs for this shard's connections.
    Batch(RunBatch),
    /// The reactor consumed `frames_read` frames total and retired the
    /// read side; the connection closes once every response below that
    /// is on the wire.
    Eof { conn: u64, frames_read: u64 },
}

/// Dense seq-indexed reorder buffer, replacing the old
/// `BTreeMap<u64, (count, bytes)>`: a run whose `first_seq` is `s`
/// lands in slot `s - base` of a flat `VecDeque<Option<_>>`, so insert
/// and the promote-loop's `remove(next)` are O(1) array indexing with
/// no tree-node churn. Seq gaps are bounded by frames in flight between
/// reactor tag time and SD delivery (the RX ring plus one dispatch), so
/// the deque stays small; slots covered by a multi-frame run's tail are
/// simply `None`.
struct ReorderRing {
    slots: VecDeque<Option<(u64, BytesMut)>>,
    /// Sequence number of `slots[0]` (meaningful only when non-empty).
    base: u64,
    /// Number of occupied slots.
    len: usize,
}

impl ReorderRing {
    fn new() -> ReorderRing {
        ReorderRing {
            slots: VecDeque::new(),
            base: 0,
            len: 0,
        }
    }

    fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn len(&self) -> usize {
        self.len
    }

    /// Park a run at `seq` (its `first_seq`). Duplicate seqs cannot
    /// occur (each frame is tagged once); if one did, the newer run
    /// replaces the older and the caller leaks nothing because the ring
    /// returns the displaced buffer.
    fn insert(&mut self, seq: u64, count: u64, bytes: BytesMut) -> Option<BytesMut> {
        if self.len == 0 {
            self.slots.clear();
            self.base = seq;
        }
        if seq < self.base {
            for _ in 0..(self.base - seq) {
                self.slots.push_front(None);
            }
            self.base = seq;
        }
        let idx = (seq - self.base) as usize;
        if idx >= self.slots.len() {
            self.slots.resize_with(idx + 1, || None);
        }
        let old = self.slots[idx].replace((count, bytes));
        if old.is_none() {
            self.len += 1;
        }
        old.map(|(_, b)| b)
    }

    /// Take the run whose `first_seq` is exactly `seq`, if parked.
    fn remove(&mut self, seq: u64) -> Option<(u64, BytesMut)> {
        if self.len == 0 || seq < self.base {
            return None;
        }
        let idx = (seq - self.base) as usize;
        let run = self.slots.get_mut(idx)?.take()?;
        self.len -= 1;
        // Compact: drop leading holes (freed slots and multi-frame-run
        // tails) so the deque tracks the live window.
        while matches!(self.slots.front(), Some(None)) {
            self.slots.pop_front();
            self.base += 1;
        }
        if self.len == 0 {
            self.slots.clear();
        }
        Some(run)
    }

    /// Drain every parked buffer (retirement path).
    fn drain(&mut self) -> impl Iterator<Item = BytesMut> + '_ {
        self.len = 0;
        self.slots.drain(..).flatten().map(|(_, b)| b)
    }
}

/// A pool of recycled `BytesMut` buffers (pelikan `buf_ring` style).
/// `get` pops a cleared buffer whose capacity survived its last trip to
/// the wire; `put` returns one, dropping it if the ring is full or the
/// buffer outgrew [`BUF_MAX_RECYCLE`]-style bounds. Hit/miss counters
/// feed the egress gauges.
pub struct BufRing {
    free: Mutex<Vec<BytesMut>>,
    slots: usize,
    max_recycle: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl BufRing {
    /// Ring retaining up to `slots` buffers of at most `max_recycle`
    /// capacity each.
    #[must_use]
    pub fn new(slots: usize, max_recycle: usize) -> BufRing {
        BufRing {
            free: Mutex::new(Vec::with_capacity(slots)),
            slots,
            max_recycle,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Pop a recycled buffer (cleared, capacity preserved), or a fresh
    /// empty one if the ring is dry.
    #[must_use]
    pub fn get(&self) -> BytesMut {
        match self.free.lock().pop() {
            Some(mut b) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                b.clear();
                b
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                BytesMut::new()
            }
        }
    }

    /// Return a buffer to the ring. Buffers that never grew a capacity,
    /// outgrew the recycle bound, or arrive with the ring full are
    /// simply dropped.
    pub fn put(&self, buf: BytesMut) {
        if buf.capacity() == 0 || buf.capacity() > self.max_recycle {
            return;
        }
        let mut free = self.free.lock();
        if free.len() < self.slots {
            free.push(buf);
        }
    }

    /// Buffers served from the ring.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Buffers that had to be freshly allocated.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

/// Per-shard handle held by the plane: the channel, the waker that
/// unparks the shard's poll, and the shard's buffer pools (shared with
/// dispatchers, which draw from them when encoding).
struct SdShardHandle {
    tx: Sender<SdMsg>,
    waker: Arc<Waker>,
    bufs: Arc<BufRing>,
    msgs: Arc<Mutex<Vec<RunBatch>>>,
}

/// The dispatchers' and reactors' handle to the egress plane: routes
/// per-connection traffic to the owning shard. Dropping the last clone
/// closes every shard's channel and wakes it, which is what lets the
/// shard threads exit at teardown.
pub(crate) struct SdPlane {
    shards: Vec<SdShardHandle>,
}

impl SdPlane {
    #[must_use]
    pub(crate) fn n_shards(&self) -> usize {
        self.shards.len()
    }

    #[must_use]
    pub(crate) fn shard_of(&self, conn: u64) -> usize {
        (conn % self.shards.len() as u64) as usize
    }

    /// Draw a recycled encode buffer from `shard`'s ring.
    #[must_use]
    pub(crate) fn get_buf(&self, shard: usize) -> BytesMut {
        self.shards[shard].bufs.get()
    }

    /// Draw a recycled dispatch-batch vector for `shard`.
    #[must_use]
    pub(crate) fn take_batch(&self, shard: usize) -> RunBatch {
        self.shards[shard].msgs.lock().pop().unwrap_or_default()
    }

    /// Send one dispatch's runs to `shard` and wake it.
    pub(crate) fn send_batch(&self, shard: usize, batch: RunBatch) {
        let h = &self.shards[shard];
        if h.tx.send(SdMsg::Batch(batch)).is_ok() {
            let _ = h.waker.wake();
        }
    }

    /// Announce an accepted connection's write half to its shard. Must
    /// happen before the read half registers with a reactor, so the
    /// FIFO channel delivers `Open` before any run or `Eof`.
    pub(crate) fn send_open(&self, conn: u64, stream: TcpStream) {
        let h = &self.shards[self.shard_of(conn)];
        if h.tx.send(SdMsg::Open { conn, stream }).is_ok() {
            let _ = h.waker.wake();
        }
    }

    /// Mark a connection's read side done after `frames_read` frames.
    pub(crate) fn send_eof(&self, conn: u64, frames_read: u64) {
        let h = &self.shards[self.shard_of(conn)];
        if h.tx.send(SdMsg::Eof { conn, frames_read }).is_ok() {
            let _ = h.waker.wake();
        }
    }

    /// Answer ring-overflow drops with empty response frames, one per
    /// dropped request, so the connection's sequence numbering never
    /// develops a hole (see `ServerStats::dropped_frames`). Buffers come
    /// from the owning shard's ring like every other run.
    pub(crate) fn overflow_answers(&self, conn: u64, tagged: &mut Vec<TaggedFrame>) {
        let shard = self.shard_of(conn);
        let runs: Vec<ResponseRun> = tagged
            .drain(..)
            .map(|t| {
                let mut bytes = self.get_buf(shard);
                encode_overflow_into(&mut bytes, t.proto, &t.frame);
                ResponseRun {
                    first_seq: t.seq,
                    count: 1,
                    bytes,
                }
            })
            .collect();
        let h = &self.shards[shard];
        if h.tx.send(SdMsg::Runs { conn, runs }).is_ok() {
            let _ = h.waker.wake();
        }
    }
}

impl Drop for SdPlane {
    fn drop(&mut self) {
        // Close each shard's channel *before* waking it: shard threads
        // hold their own waker clones, so the eventfd outlives this
        // handle and a parked shard observes the disconnect promptly
        // instead of after the fallback poll timeout.
        for h in self.shards.drain(..) {
            let SdShardHandle { tx, waker, .. } = h;
            drop(tx);
            let _ = waker.wake();
        }
    }
}

/// Everything one shard thread needs, built before any thread spawns.
pub(crate) struct SdShardPart {
    poll: Poll,
    rx: Receiver<SdMsg>,
    waker: Arc<Waker>,
    bufs: Arc<BufRing>,
    msgs: Arc<Mutex<Vec<RunBatch>>>,
}

/// Shard-loop knobs resolved from `BatchConfig`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SdShardCfg {
    /// Per-connection unwritable deadline before the peer is retired.
    pub(crate) stall: Duration,
    /// Pending-bytes mark that pauses the connection's reactor reads.
    pub(crate) hiwater: usize,
    /// Mark below which paused reads resume (half the high water).
    pub(crate) lowater: usize,
    /// Which syscall backend the egress loop runs on.
    pub(crate) backend: IoBackend,
}

impl SdShardCfg {
    pub(crate) fn new(stall: Duration, hiwater: usize, backend: IoBackend) -> SdShardCfg {
        let hiwater = hiwater.max(1);
        SdShardCfg {
            stall,
            hiwater,
            lowater: hiwater / 2,
            backend,
        }
    }
}

/// Build the plane and its per-shard parts (one [`Poll`] + waker +
/// channel + buffer pools each). Shard threads are spawned by the
/// caller from the returned parts.
pub(crate) fn build_sd_plane(n: usize) -> std::io::Result<(SdPlane, Vec<SdShardPart>)> {
    let n = n.max(1);
    let mut shards = Vec::with_capacity(n);
    let mut parts = Vec::with_capacity(n);
    for _ in 0..n {
        let poll = Poll::new()?;
        let waker = Arc::new(Waker::new(poll.registry(), WAKER_TOKEN)?);
        let (tx, rx) = channel::unbounded::<SdMsg>();
        let bufs = Arc::new(BufRing::new(BUF_RING_SLOTS, BUF_MAX_RECYCLE));
        let msgs = Arc::new(Mutex::new(Vec::with_capacity(MSG_POOL_SLOTS)));
        shards.push(SdShardHandle {
            tx,
            waker: Arc::clone(&waker),
            bufs: Arc::clone(&bufs),
            msgs: Arc::clone(&msgs),
        });
        parts.push(SdShardPart {
            poll,
            rx,
            waker,
            bufs,
            msgs,
        });
    }
    Ok((SdPlane { shards }, parts))
}

/// Per-connection state inside one SD shard.
struct SdConn {
    stream: TcpStream,
    /// Next sequence number owed to the client.
    next: u64,
    /// Total frames the reader consumed, once known.
    eof: Option<u64>,
    /// Out-of-order runs: first_seq → (frame count, wire bytes). The
    /// in-order common case bypasses this ring entirely (runs go
    /// straight to `queue`), keeping the steady state allocation-free.
    pending: ReorderRing,
    /// In-order runs not yet (fully) written; front buffer may be
    /// partially consumed (`head_written`).
    queue: VecDeque<BytesMut>,
    /// Bytes of `queue.front()` already on the wire.
    head_written: usize,
    /// Bytes parked or queued but not yet written (backpressure input).
    unsent: usize,
    /// Registered for WRITABLE interest since this instant (the socket
    /// returned `WouldBlock` and made no progress after).
    parked: Option<Instant>,
    /// This connection's reactor READ interest is currently paused.
    read_paused: bool,
    /// A write failed; stop writing but keep consuming messages until
    /// EOF so the connection can still be retired.
    dead: bool,
    /// Already queued for service this wakeup (O(1) touch dedupe —
    /// the old writer's `touched.contains` scan was quadratic in the
    /// number of touched connections per wakeup).
    touched: bool,
    /// (uring backend only) a writev SQE is in flight for this
    /// connection, covering the front of `queue` through `iov`.
    inflight: Option<InflightWrite>,
    /// (uring backend only) this connection's reusable iovec array,
    /// allocated on the first submission and recycled for every write
    /// after — the steady-state egress cycle allocates nothing. Boxed,
    /// so the array the kernel reads asynchronously keeps one stable
    /// heap address even as `SdConn` moves around the shard's map.
    /// Never written while a submission is in flight.
    iov: Option<Box<[uring::IoVec; SD_IOV_MAX]>>,
}

/// State of one in-flight uring writev: how much the pinned iovecs
/// (`SdConn::iov`) cover, and when it was submitted (the stall clock).
struct InflightWrite {
    /// Total bytes the iovecs cover; a completion short of this means
    /// the socket buffer filled (the uring analogue of `WouldBlock`).
    submitted: usize,
    /// Submission instant — the per-connection stall deadline input.
    since: Instant,
}

impl SdConn {
    /// Whether every response owed to the client is on the wire (or the
    /// socket died), so the connection can be closed. A connection with
    /// a writev SQE in flight is never done: its buffers are pinned
    /// until the CQE lands.
    fn done(&self) -> bool {
        if self.inflight.is_some() {
            return false;
        }
        match self.eof {
            Some(total) => self.dead || (self.next >= total && self.queue.is_empty()),
            None => false,
        }
    }
}

/// Everything `service_conn` and friends need besides the connection.
struct ShardCtx<'a> {
    registry: &'a mio::Registry,
    bufs: &'a BufRing,
    reactors: &'a ReactorHandles,
    stats: &'a ServerStats,
    cfg: SdShardCfg,
}

/// One shard's event loop, dispatched on the resolved backend.
pub(crate) fn run_sd_shard(
    part: SdShardPart,
    cfg: SdShardCfg,
    reactors: Arc<ReactorHandles>,
    stats: Arc<ServerStats>,
) {
    match cfg.backend {
        IoBackend::Epoll => run_sd_shard_epoll(part, cfg, reactors, stats),
        IoBackend::Uring => run_sd_shard_uring(part, cfg, reactors, stats),
    }
}

/// The epoll-backed shard loop: drain the channel, service touched
/// connections, poll for writability, sweep stall deadlines.
fn run_sd_shard_epoll(
    part: SdShardPart,
    cfg: SdShardCfg,
    reactors: Arc<ReactorHandles>,
    stats: Arc<ServerStats>,
) {
    let SdShardPart {
        mut poll,
        rx,
        waker: _waker, // keeps the eventfd alive past the plane's drop
        bufs,
        msgs,
    } = part;
    let mut events = Events::with_capacity(1024);
    let mut ready: Vec<Token> = Vec::new();
    let mut conns: HashMap<u64, SdConn> = HashMap::new();
    let mut touched: Vec<u64> = Vec::new();
    // Earliest instant any parked connection could hit its stall
    // deadline; `None` while nothing is parked.
    let mut next_sweep: Option<Instant> = None;
    // Ring counters fold into the shared stats as deltas so multiple
    // shards (and the dispatchers drawing from their rings) sum.
    let (mut last_hits, mut last_misses) = (0u64, 0u64);
    let mut disconnected = false;
    loop {
        // Apply every queued message, then service each touched
        // connection once.
        touched.clear();
        loop {
            match rx.try_recv() {
                Ok(msg) => apply_msg(
                    msg,
                    &mut conns,
                    &mut touched,
                    &msgs,
                    &ShardCtx {
                        registry: poll.registry(),
                        bufs: &bufs,
                        reactors: &reactors,
                        stats: &stats,
                        cfg,
                    },
                ),
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    disconnected = true;
                    break;
                }
            }
        }
        for &conn in &touched {
            let ctx = ShardCtx {
                registry: poll.registry(),
                bufs: &bufs,
                reactors: &reactors,
                stats: &stats,
                cfg,
            };
            service_and_maybe_retire(conn, &mut conns, &ctx, &mut next_sweep);
        }
        fold_ring_stats(&bufs, &stats, &mut last_hits, &mut last_misses);
        if disconnected {
            break;
        }
        let timeout = match next_sweep {
            Some(at) => at
                .saturating_duration_since(Instant::now())
                .min(POLL_TIMEOUT),
            None => POLL_TIMEOUT,
        };
        stats.ring_enters.fetch_add(1, Ordering::Relaxed);
        if poll.poll(&mut events, Some(timeout)).is_err() {
            break; // broken selector: tear down rather than spin
        }
        ready.clear();
        ready.extend(events.iter().map(|e| e.token()));
        for &tok in &ready {
            if tok == WAKER_TOKEN {
                continue; // channel is drained at the top of the loop
            }
            let conn = (tok.0 - CONN_TOKEN_BASE) as u64;
            let ctx = ShardCtx {
                registry: poll.registry(),
                bufs: &bufs,
                reactors: &reactors,
                stats: &stats,
                cfg,
            };
            service_and_maybe_retire(conn, &mut conns, &ctx, &mut next_sweep);
        }
        if next_sweep.is_some_and(|at| Instant::now() >= at) {
            let ctx = ShardCtx {
                registry: poll.registry(),
                bufs: &bufs,
                reactors: &reactors,
                stats: &stats,
                cfg,
            };
            next_sweep = sweep_stalls(&mut conns, &ctx);
        }
    }
    // Teardown (all plane handles dropped): every queued message has
    // been applied and every touched connection serviced once above.
    // Retire the survivors so gauges and leak counters stay truthful,
    // then drop the write halves to disconnect the clients.
    for (_, mut c) in conns.drain() {
        free_unwritten(
            &mut c,
            &ShardCtx {
                registry: poll.registry(),
                bufs: &bufs,
                reactors: &reactors,
                stats: &stats,
                cfg,
            },
        );
        stats.sd_open_conns.fetch_sub(1, Ordering::Relaxed);
    }
    fold_ring_stats(&bufs, &stats, &mut last_hits, &mut last_misses);
}

/// Fold the ring's cumulative hit/miss counters into the shared stats
/// as deltas (dispatchers bump the ring from their side, so the shard
/// is the single folder per ring).
fn fold_ring_stats(
    bufs: &BufRing,
    stats: &ServerStats,
    last_hits: &mut u64,
    last_misses: &mut u64,
) {
    let (h, m) = (bufs.hits(), bufs.misses());
    if h != *last_hits {
        stats
            .sd_buf_hits
            .fetch_add(h - *last_hits, Ordering::Relaxed);
        *last_hits = h;
    }
    if m != *last_misses {
        stats
            .sd_buf_misses
            .fetch_add(m - *last_misses, Ordering::Relaxed);
        *last_misses = m;
    }
}

fn apply_msg(
    msg: SdMsg,
    conns: &mut HashMap<u64, SdConn>,
    touched: &mut Vec<u64>,
    msg_pool: &Mutex<Vec<RunBatch>>,
    ctx: &ShardCtx<'_>,
) {
    match msg {
        SdMsg::Open { conn, stream } => {
            ctx.stats.sd_open_conns.fetch_add(1, Ordering::Relaxed);
            conns.insert(
                conn,
                SdConn {
                    stream,
                    next: 0,
                    eof: None,
                    pending: ReorderRing::new(),
                    queue: VecDeque::new(),
                    head_written: 0,
                    unsent: 0,
                    parked: None,
                    read_paused: false,
                    dead: false,
                    touched: false,
                    inflight: None,
                    iov: None,
                },
            );
        }
        SdMsg::Runs { conn, runs } => {
            if let Some(c) = conns.get_mut(&conn) {
                for r in runs {
                    park_run(c, r, ctx);
                }
                touch(conn, c, touched);
            } else {
                ctx.stats
                    .sd_pending_dropped
                    .fetch_add(runs.len() as u64, Ordering::Relaxed);
                for r in runs {
                    ctx.bufs.put(r.bytes);
                }
            }
        }
        SdMsg::Batch(mut batch) => {
            for (conn, run) in batch.drain(..) {
                match conns.get_mut(&conn) {
                    Some(c) => {
                        park_run(c, run, ctx);
                        touch(conn, c, touched);
                    }
                    None => {
                        // Already retired (e.g. stall-retired while the
                        // dispatch was in flight); the run can never be
                        // delivered.
                        ctx.stats.sd_pending_dropped.fetch_add(1, Ordering::Relaxed);
                        ctx.bufs.put(run.bytes);
                    }
                }
            }
            // Return the emptied vector so the dispatcher's next
            // scatter reuses its capacity.
            let mut pool = msg_pool.lock();
            if pool.len() < MSG_POOL_SLOTS {
                pool.push(batch);
            }
        }
        SdMsg::Eof { conn, frames_read } => {
            if let Some(c) = conns.get_mut(&conn) {
                c.eof = Some(frames_read);
                touch(conn, c, touched);
            }
        }
    }
}

fn touch(conn: u64, c: &mut SdConn, touched: &mut Vec<u64>) {
    if !c.touched {
        c.touched = true;
        touched.push(conn);
    }
}

/// Park one response run: straight onto the write queue when it is the
/// next run in sequence (the common case — no tree node churn), into
/// the reorder map otherwise. Runs for a dead socket are freed at once.
fn park_run(c: &mut SdConn, run: ResponseRun, ctx: &ShardCtx<'_>) {
    if c.dead {
        ctx.stats.sd_pending_dropped.fetch_add(1, Ordering::Relaxed);
        ctx.bufs.put(run.bytes);
        return;
    }
    c.unsent += run.bytes.len();
    if run.first_seq == c.next && c.pending.is_empty() {
        c.next += run.count;
        c.queue.push_back(run.bytes);
    } else if let Some(displaced) = c.pending.insert(run.first_seq, run.count, run.bytes) {
        // Unreachable in practice (each seq is tagged once); keep the
        // buffer and byte accounting honest regardless.
        c.unsent -= displaced.len();
        ctx.bufs.put(displaced);
    }
}

/// Service one connection (promote, write, park/unpark, backpressure)
/// and retire it when done.
fn service_and_maybe_retire(
    conn: u64,
    conns: &mut HashMap<u64, SdConn>,
    ctx: &ShardCtx<'_>,
    next_sweep: &mut Option<Instant>,
) {
    let Some(c) = conns.get_mut(&conn) else {
        return; // stale event or double touch after retire
    };
    c.touched = false;
    service_conn(conn, c, ctx, next_sweep);
    if c.done() {
        let mut c = conns.remove(&conn).expect("conn just found");
        free_unwritten(&mut c, ctx);
        ctx.stats.sd_open_conns.fetch_sub(1, Ordering::Relaxed);
        // The write half drops here: the client sees EOF.
    }
}

fn service_conn(conn: u64, c: &mut SdConn, ctx: &ShardCtx<'_>, next_sweep: &mut Option<Instant>) {
    // Promote every in-order run from the reorder map to the queue.
    while let Some((count, bytes)) = c.pending.remove(c.next) {
        c.next += count;
        c.queue.push_back(bytes);
    }
    if !c.dead && !c.queue.is_empty() {
        let mut sys = 0u64;
        let res = write_queue_counted(
            &mut c.stream,
            &mut c.queue,
            &mut c.head_written,
            ctx.bufs,
            &mut sys,
        );
        if sys > 0 {
            ctx.stats.ring_enters.fetch_add(sys, Ordering::Relaxed);
        }
        match res {
            Ok((written, blocked)) => {
                c.unsent -= written;
                if blocked {
                    if c.parked.is_none() {
                        if ctx
                            .registry
                            .register(
                                &c.stream,
                                Token(CONN_TOKEN_BASE + conn as usize),
                                Interest::WRITABLE,
                            )
                            .is_ok()
                        {
                            ctx.stats.sd_writable_parks.fetch_add(1, Ordering::Relaxed);
                            c.parked = Some(Instant::now());
                        } else {
                            mark_dead(conn, c, ctx);
                        }
                    } else if written > 0 {
                        // Partial progress restarts the stall clock:
                        // the deadline measures *continuous* stall.
                        c.parked = Some(Instant::now());
                    }
                    if let Some(since) = c.parked {
                        let deadline = since + ctx.cfg.stall;
                        *next_sweep = Some(match *next_sweep {
                            Some(at) => at.min(deadline),
                            None => deadline,
                        });
                    }
                } else {
                    let _ = c.stream.flush();
                    if c.parked.take().is_some() {
                        let _ = ctx.registry.deregister(&c.stream);
                    }
                }
            }
            Err(_) => mark_dead(conn, c, ctx),
        }
    }
    if !c.dead {
        ctx.stats
            .sd_pending_bytes_hiwater
            .fetch_max(c.unsent as u64, Ordering::Relaxed);
        if !c.read_paused && c.unsent > ctx.cfg.hiwater {
            c.read_paused = true;
            ctx.stats.sd_read_pauses.fetch_add(1, Ordering::Relaxed);
            ctx.reactors.set_read(conn, false);
        } else if c.read_paused && c.unsent <= ctx.cfg.lowater {
            c.read_paused = false;
            ctx.reactors.set_read(conn, true);
        }
    }
}

/// The socket can take no more responses (write error, or retired by
/// the stall sweep): free everything parked, undo watch/pause state,
/// and shut the socket down both ways so the reactor — which still owns
/// the shared file description's read half — observes it and posts the
/// `Eof` that lets the connection retire.
fn mark_dead(conn: u64, c: &mut SdConn, ctx: &ShardCtx<'_>) {
    c.dead = true;
    if c.inflight.is_none() {
        free_unwritten(c, ctx);
    }
    // else (uring only): the kernel still reads the queued buffers
    // through the in-flight iovecs; the write-CQE handler frees them
    // once the op completes.
    if c.read_paused {
        c.read_paused = false;
        // Resume reads so the paused (deregistered) read half gets
        // re-registered and the reactor can observe the shutdown.
        ctx.reactors.set_read(conn, true);
    }
    let _ = c.stream.shutdown(Shutdown::Both);
}

/// Count and free every run this connection will never deliver,
/// returning the buffers to the shard's ring.
fn free_unwritten(c: &mut SdConn, ctx: &ShardCtx<'_>) {
    let undelivered = (c.queue.len() + c.pending.len()) as u64;
    if undelivered > 0 {
        ctx.stats
            .sd_pending_dropped
            .fetch_add(undelivered, Ordering::Relaxed);
    }
    for bytes in c.queue.drain(..) {
        ctx.bufs.put(bytes);
    }
    for bytes in c.pending.drain() {
        ctx.bufs.put(bytes);
    }
    c.head_written = 0;
    c.unsent = 0;
    if c.parked.take().is_some() {
        let _ = ctx.registry.deregister(&c.stream);
    }
}

/// Retire every connection whose stall deadline passed; returns the
/// next deadline still outstanding.
fn sweep_stalls(conns: &mut HashMap<u64, SdConn>, ctx: &ShardCtx<'_>) -> Option<Instant> {
    let now = Instant::now();
    let mut next: Option<Instant> = None;
    let mut retire: Vec<u64> = Vec::new();
    for (&conn, c) in conns.iter_mut() {
        let Some(since) = c.parked else { continue };
        let deadline = since + ctx.cfg.stall;
        if now >= deadline {
            ctx.stats.sd_stall_retired.fetch_add(1, Ordering::Relaxed);
            mark_dead(conn, c, ctx);
            if c.done() {
                retire.push(conn);
            }
        } else {
            next = Some(match next {
                Some(at) => at.min(deadline),
                None => deadline,
            });
        }
    }
    for conn in retire {
        if let Some(mut c) = conns.remove(&conn) {
            free_unwritten(&mut c, ctx);
            ctx.stats.sd_open_conns.fetch_sub(1, Ordering::Relaxed);
        }
    }
    next
}

/// The uring-backed shard loop. Message handling, reorder promotion,
/// backpressure, and retirement are shared with the epoll loop; only
/// the write path differs: instead of writing until `WouldBlock` and
/// parking on WRITABLE readiness, each connection keeps at most one
/// `writev` SQE in flight and every pass flushes all submissions with a
/// single `io_uring_enter`. A CQE short of the submitted byte count is
/// the `WouldBlock` analogue (counted in `sd_writable_parks`); an op
/// outstanding past [`SdShardCfg::stall`] is the park-stall analogue
/// (canceled and retired by [`sweep_stalls_uring`]).
fn run_sd_shard_uring(
    part: SdShardPart,
    cfg: SdShardCfg,
    reactors: Arc<ReactorHandles>,
    stats: Arc<ServerStats>,
) {
    let SdShardPart {
        poll,
        rx,
        waker,
        bufs,
        msgs,
    } = part;
    let mut conns: HashMap<u64, SdConn> = HashMap::new();
    let mut touched: Vec<u64> = Vec::new();
    let mut cqes: Vec<uring::Cqe> = Vec::with_capacity(SD_URING_CQ as usize);
    let mut next_sweep: Option<Instant> = None;
    let (mut last_hits, mut last_misses) = (0u64, 0u64);
    // Outstanding SQEs (writevs + the waker watch + cancels): teardown
    // drains this to zero before any pinned buffer may be freed.
    let mut inflight_ops: u64 = 0;
    let waker_fd = waker.as_raw_fd();

    /// Queue a one-shot readable watch, flushing the SQ when full.
    fn arm_poll_in(ring: &mut uring::Uring, fd: i32, user_data: u64, inflight: &mut u64) -> bool {
        loop {
            if ring.push_poll_add(fd, uring::POLL_IN, user_data) {
                *inflight += 1;
                return true;
            }
            if ring.submit().is_err() {
                return false;
            }
        }
    }

    // The probe passed at spawn, so setup failing here is a local
    // resource problem (fd limits): behave like an immediate teardown,
    // consuming messages until the plane drops so no buffer leaks.
    let mut ring = match uring::Uring::new(SD_URING_SQ, SD_URING_CQ) {
        Ok(r) => r,
        Err(_) => {
            while let Ok(msg) = rx.recv() {
                match msg {
                    SdMsg::Open { .. } => {} // stream drops; client sees EOF
                    SdMsg::Runs { runs, .. } => {
                        stats
                            .sd_pending_dropped
                            .fetch_add(runs.len() as u64, Ordering::Relaxed);
                        for r in runs {
                            bufs.put(r.bytes);
                        }
                    }
                    SdMsg::Batch(mut batch) => {
                        stats
                            .sd_pending_dropped
                            .fetch_add(batch.len() as u64, Ordering::Relaxed);
                        for (_, r) in batch.drain(..) {
                            bufs.put(r.bytes);
                        }
                    }
                    SdMsg::Eof { .. } => {}
                }
            }
            return;
        }
    };

    let mut fatal = !arm_poll_in(&mut ring, waker_fd, ud(UD_WAKER, 0), &mut inflight_ops);
    let mut disconnected = false;
    while !fatal {
        touched.clear();
        loop {
            match rx.try_recv() {
                Ok(msg) => apply_msg(
                    msg,
                    &mut conns,
                    &mut touched,
                    &msgs,
                    &ShardCtx {
                        registry: poll.registry(),
                        bufs: &bufs,
                        reactors: &reactors,
                        stats: &stats,
                        cfg,
                    },
                ),
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    disconnected = true;
                    break;
                }
            }
        }
        for &conn in &touched {
            let ctx = ShardCtx {
                registry: poll.registry(),
                bufs: &bufs,
                reactors: &reactors,
                stats: &stats,
                cfg,
            };
            service_and_maybe_retire_uring(
                conn,
                &mut conns,
                &mut ring,
                &ctx,
                &mut next_sweep,
                &mut inflight_ops,
            );
        }
        fold_ring_stats(&bufs, &stats, &mut last_hits, &mut last_misses);
        if disconnected {
            break;
        }
        let timeout = match next_sweep {
            Some(at) => at
                .saturating_duration_since(Instant::now())
                .min(POLL_TIMEOUT),
            None => POLL_TIMEOUT,
        };
        let enters_before = ring.enters();
        if ring.submit_and_wait(1, Some(timeout)).is_err() {
            break;
        }
        cqes.clear();
        ring.reap(&mut cqes);
        stats
            .ring_enters
            .fetch_add(ring.enters() - enters_before, Ordering::Relaxed);
        if !cqes.is_empty() {
            stats.record_cqe_batch(cqes.len() as u64);
        }
        let mut rearm_waker = false;
        for &cqe in &cqes {
            inflight_ops -= 1;
            match cqe.user_data >> UD_KIND_SHIFT {
                UD_WAKER => {
                    // POLL_ADD consumes nothing: reset the eventfd by
                    // hand; the channel itself is drained at the top of
                    // every pass.
                    uring::drain_notify_fd(waker_fd);
                    rearm_waker = true;
                }
                UD_WRITE => {
                    let ctx = ShardCtx {
                        registry: poll.registry(),
                        bufs: &bufs,
                        reactors: &reactors,
                        stats: &stats,
                        cfg,
                    };
                    handle_write_cqe(
                        cqe.user_data & UD_DATA_MASK,
                        cqe.res,
                        &mut conns,
                        &mut ring,
                        &ctx,
                        &mut next_sweep,
                        &mut inflight_ops,
                    );
                }
                _ => {} // a cancel op's own completion
            }
        }
        if rearm_waker && !arm_poll_in(&mut ring, waker_fd, ud(UD_WAKER, 0), &mut inflight_ops) {
            fatal = true;
        }
        if next_sweep.is_some_and(|at| Instant::now() >= at) {
            let ctx = ShardCtx {
                registry: poll.registry(),
                bufs: &bufs,
                reactors: &reactors,
                stats: &stats,
                cfg,
            };
            next_sweep = sweep_stalls_uring(&mut conns, &mut ring, &ctx, &mut inflight_ops);
        }
    }

    // Teardown: cancel every outstanding op and drain the ring to zero
    // in-flight — the kernel reads pinned iovecs (and the buffers they
    // point into) until each CQE lands, so freeing first would be a
    // use-after-free handed to the kernel.
    let mut cancels: Vec<u64> = vec![ud(UD_WAKER, 0)];
    for (&conn, c) in conns.iter() {
        if c.inflight.is_some() {
            cancels.push(ud(UD_WRITE, conn));
        }
    }
    for target in cancels {
        loop {
            if ring.push_cancel(target, ud(UD_CANCEL, 0)) {
                inflight_ops += 1;
                break;
            }
            if ring.submit().is_err() {
                break;
            }
        }
    }
    let deadline = Instant::now() + Duration::from_secs(2);
    while inflight_ops > 0 && Instant::now() < deadline {
        if ring
            .submit_and_wait(1, Some(Duration::from_millis(100)))
            .is_err()
        {
            break;
        }
        cqes.clear();
        ring.reap(&mut cqes);
        for cqe in &cqes {
            inflight_ops = inflight_ops.saturating_sub(1);
            if cqe.user_data >> UD_KIND_SHIFT == UD_WRITE {
                if let Some(c) = conns.get_mut(&(cqe.user_data & UD_DATA_MASK)) {
                    c.inflight = None;
                }
            }
        }
    }
    for (_, mut c) in conns.drain() {
        if c.inflight.is_some() {
            // Undrained op: leak the write queue and its iovec box
            // rather than recycle memory the kernel may still read.
            let undelivered = (c.queue.len() + c.pending.len()) as u64;
            if undelivered > 0 {
                stats
                    .sd_pending_dropped
                    .fetch_add(undelivered, Ordering::Relaxed);
            }
            for bytes in c.pending.drain() {
                bufs.put(bytes);
            }
            std::mem::forget(std::mem::take(&mut c.queue));
            std::mem::forget(c.iov.take());
        } else {
            free_unwritten(
                &mut c,
                &ShardCtx {
                    registry: poll.registry(),
                    bufs: &bufs,
                    reactors: &reactors,
                    stats: &stats,
                    cfg,
                },
            );
        }
        stats.sd_open_conns.fetch_sub(1, Ordering::Relaxed);
    }
    fold_ring_stats(&bufs, &stats, &mut last_hits, &mut last_misses);
}

/// Service one uring-side connection (promote, submit, backpressure)
/// and retire it when done. `done()` is false while a writev is in
/// flight, so retirement always happens with no pinned buffers.
fn service_and_maybe_retire_uring(
    conn: u64,
    conns: &mut HashMap<u64, SdConn>,
    ring: &mut uring::Uring,
    ctx: &ShardCtx<'_>,
    next_sweep: &mut Option<Instant>,
    inflight_ops: &mut u64,
) {
    let Some(c) = conns.get_mut(&conn) else {
        return; // stale touch after retire
    };
    c.touched = false;
    service_conn_uring(conn, c, ring, ctx, next_sweep, inflight_ops);
    if c.done() {
        let mut c = conns.remove(&conn).expect("conn just found");
        free_unwritten(&mut c, ctx);
        ctx.stats.sd_open_conns.fetch_sub(1, Ordering::Relaxed);
        // The write half drops here: the client sees EOF.
    }
}

fn service_conn_uring(
    conn: u64,
    c: &mut SdConn,
    ring: &mut uring::Uring,
    ctx: &ShardCtx<'_>,
    next_sweep: &mut Option<Instant>,
    inflight_ops: &mut u64,
) {
    // Promote every in-order run from the reorder ring to the queue.
    while let Some((count, bytes)) = c.pending.remove(c.next) {
        c.next += count;
        c.queue.push_back(bytes);
    }
    if !c.dead && c.inflight.is_none() && !c.queue.is_empty() {
        submit_writev(conn, c, ring, ctx, next_sweep, inflight_ops);
    }
    if !c.dead {
        ctx.stats
            .sd_pending_bytes_hiwater
            .fetch_max(c.unsent as u64, Ordering::Relaxed);
        if !c.read_paused && c.unsent > ctx.cfg.hiwater {
            c.read_paused = true;
            ctx.stats.sd_read_pauses.fetch_add(1, Ordering::Relaxed);
            ctx.reactors.set_read(conn, false);
        } else if c.read_paused && c.unsent <= ctx.cfg.lowater {
            c.read_paused = false;
            ctx.reactors.set_read(conn, true);
        }
    }
}

/// Build and queue one writev SQE over the front of `c.queue` (up to
/// [`SD_IOV_MAX`] buffers), filling the connection's reusable iovec
/// array (allocated once, on the first write). The array stays pinned
/// until the CQE lands; every submission arms the stall deadline,
/// since an op that never completes is exactly a wedged peer.
fn submit_writev(
    conn: u64,
    c: &mut SdConn,
    ring: &mut uring::Uring,
    ctx: &ShardCtx<'_>,
    next_sweep: &mut Option<Instant>,
    inflight_ops: &mut u64,
) {
    let iov = c.iov.get_or_insert_with(|| {
        Box::new(
            [uring::IoVec {
                base: std::ptr::null(),
                len: 0,
            }; SD_IOV_MAX],
        )
    });
    let mut n_iov = 0u32;
    let mut submitted = 0usize;
    for (i, b) in c.queue.iter().enumerate().take(SD_IOV_MAX) {
        let s: &[u8] = if i == 0 { &b[c.head_written..] } else { &b[..] };
        iov[n_iov as usize] = uring::IoVec {
            base: s.as_ptr(),
            len: s.len(),
        };
        submitted += s.len();
        n_iov += 1;
    }
    let fd = c.stream.as_raw_fd();
    // SAFETY: `iov` and the queue buffers it points into stay valid
    // until the CQE is reaped — `inflight` gates every queue mutation
    // and every refill of the iovec array, the boxed array's heap
    // address is stable, and teardown drains in-flight ops before
    // freeing.
    loop {
        if unsafe { ring.push_writev(fd, iov.as_ptr(), n_iov, ud(UD_WRITE, conn)) } {
            break;
        }
        if ring.submit().is_err() {
            return; // broken ring: the loop is about to exit; teardown frees the run
        }
    }
    *inflight_ops += 1;
    let since = Instant::now();
    c.inflight = Some(InflightWrite { submitted, since });
    let deadline = since + ctx.cfg.stall;
    *next_sweep = Some(match *next_sweep {
        Some(at) => at.min(deadline),
        None => deadline,
    });
}

/// Apply one writev completion: advance the queue by the written byte
/// count, count a park when the write came up short with data still
/// queued (the socket buffer filled — uring's `WouldBlock`), run the
/// deferred free for peers that died while the op was in flight, and
/// re-service (which resubmits any remainder or retires).
fn handle_write_cqe(
    conn: u64,
    res: i32,
    conns: &mut HashMap<u64, SdConn>,
    ring: &mut uring::Uring,
    ctx: &ShardCtx<'_>,
    next_sweep: &mut Option<Instant>,
    inflight_ops: &mut u64,
) {
    let Some(c) = conns.get_mut(&conn) else {
        return; // raced with retirement
    };
    let Some(finished) = c.inflight.take() else {
        return;
    };
    if res < 0 {
        match -res {
            // Canceled by the stall sweep (already marked dead) or a
            // spurious interruption; the paths below handle both.
            ECANCELED | EINTR_RAW => {}
            _ => mark_dead(conn, c, ctx),
        }
    } else if res == 0 {
        // Zero-byte vectored write: peer is gone.
        mark_dead(conn, c, ctx);
    } else {
        let n = res as usize;
        advance_queue(&mut c.queue, &mut c.head_written, n, ctx.bufs);
        c.unsent -= n;
        if n < finished.submitted && !c.queue.is_empty() {
            ctx.stats.sd_writable_parks.fetch_add(1, Ordering::Relaxed);
        }
    }
    if c.dead {
        // Deferred free: `mark_dead` could not reclaim buffers while
        // the kernel held the iovecs; it can now.
        free_unwritten(c, ctx);
    }
    service_and_maybe_retire_uring(conn, conns, ring, ctx, next_sweep, inflight_ops);
}

/// Retire every connection whose in-flight writev has been outstanding
/// past the stall deadline: mark it dead (shutting the socket down,
/// which normally completes the op with an error) and push a cancel for
/// good measure. Buffer reclamation and map removal happen at the CQE.
/// Returns the next deadline still outstanding.
fn sweep_stalls_uring(
    conns: &mut HashMap<u64, SdConn>,
    ring: &mut uring::Uring,
    ctx: &ShardCtx<'_>,
    inflight_ops: &mut u64,
) -> Option<Instant> {
    let now = Instant::now();
    let mut next: Option<Instant> = None;
    for (&conn, c) in conns.iter_mut() {
        if c.dead {
            continue;
        }
        let Some(infl) = c.inflight.as_ref() else {
            continue;
        };
        let deadline = infl.since + ctx.cfg.stall;
        if now >= deadline {
            ctx.stats.sd_stall_retired.fetch_add(1, Ordering::Relaxed);
            mark_dead(conn, c, ctx);
            loop {
                if ring.push_cancel(ud(UD_WRITE, conn), ud(UD_CANCEL, 0)) {
                    *inflight_ops += 1;
                    break;
                }
                if ring.submit().is_err() {
                    break;
                }
            }
        } else {
            next = Some(match next {
                Some(at) => at.min(deadline),
                None => deadline,
            });
        }
    }
    next
}

/// Write as much of `queue` as the socket will take in vectored chunks
/// of up to [`SD_IOV_MAX`] buffers, returning fully written buffers to
/// `pool`. Returns `(bytes_written, blocked)`; `blocked` means the
/// socket returned `WouldBlock` with data still queued. The iovec
/// scratch is a stack array (`IoSlice` is `Copy`), so this performs no
/// allocation.
#[doc(hidden)]
pub fn write_queue(
    stream: &mut TcpStream,
    queue: &mut VecDeque<BytesMut>,
    head_written: &mut usize,
    pool: &BufRing,
) -> std::io::Result<(usize, bool)> {
    let mut sys = 0u64;
    write_queue_counted(stream, queue, head_written, pool, &mut sys)
}

/// [`write_queue`] with a syscall out-counter: every `writev` attempt
/// (including `WouldBlock`/`Interrupted` returns) bumps `syscalls`, so
/// the epoll backend's `ring_enters` stays comparable with uring's
/// enter count.
pub(crate) fn write_queue_counted(
    stream: &mut TcpStream,
    queue: &mut VecDeque<BytesMut>,
    head_written: &mut usize,
    pool: &BufRing,
    syscalls: &mut u64,
) -> std::io::Result<(usize, bool)> {
    let mut total = 0usize;
    while !queue.is_empty() {
        let mut iov = [IoSlice::new(&[]); SD_IOV_MAX];
        let mut n_iov = 0usize;
        for (i, b) in queue.iter().enumerate().take(SD_IOV_MAX) {
            iov[n_iov] = IoSlice::new(if i == 0 { &b[*head_written..] } else { &b[..] });
            n_iov += 1;
        }
        *syscalls += 1;
        let n = match stream.write_vectored(&iov[..n_iov]) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::WriteZero,
                    "wrote zero bytes",
                ))
            }
            Ok(n) => n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok((total, true)),
            Err(e) => return Err(e),
        };
        total += n;
        advance_queue(queue, head_written, n, pool);
    }
    Ok((total, false))
}

/// Consume `advanced` written bytes from the front of `queue`,
/// returning fully drained buffers to `pool` and tracking the partial
/// offset of the new front in `head_written`. Shared by both backends'
/// write paths.
fn advance_queue(
    queue: &mut VecDeque<BytesMut>,
    head_written: &mut usize,
    mut advanced: usize,
    pool: &BufRing,
) {
    while advanced > 0 {
        let avail = queue.front().expect("bytes written from a buffer").len() - *head_written;
        if advanced >= avail {
            advanced -= avail;
            *head_written = 0;
            pool.put(queue.pop_front().expect("front just measured"));
        } else {
            *head_written += advanced;
            advanced = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buf_ring_recycles_and_counts() {
        let ring = BufRing::new(2, 1024);
        let mut a = ring.get();
        assert_eq!(ring.misses(), 1);
        a.extend_from_slice(&[7u8; 100]);
        let cap = a.capacity();
        ring.put(a);
        let b = ring.get();
        assert_eq!(ring.hits(), 1);
        assert!(b.is_empty(), "recycled buffers come back cleared");
        assert_eq!(b.capacity(), cap, "capacity survives the round trip");
        // Oversized buffers are not retained.
        let mut big = BytesMut::new();
        big.resize(4096, 0);
        ring.put(big);
        let _ = ring.get();
        let _ = ring.get();
        assert_eq!(ring.misses(), 3, "oversized buffer was dropped, not pooled");
    }

    /// The shim `BytesMut` has no `From<&[u8]>`; build one by hand.
    fn bm(s: &[u8]) -> BytesMut {
        let mut b = BytesMut::new();
        b.extend_from_slice(s);
        b
    }

    #[test]
    fn reorder_ring_out_of_order_promotion() {
        let mut r = ReorderRing::new();
        assert!(r.is_empty());
        // Runs arrive 4, 0, 2 (counts 2, 2, 2): promote in seq order.
        r.insert(4, 2, bm(b"c"));
        r.insert(0, 2, bm(b"a"));
        r.insert(2, 2, bm(b"b"));
        assert_eq!(r.len(), 3);
        let mut next = 0u64;
        let mut order = Vec::new();
        while let Some((count, bytes)) = r.remove(next) {
            next += count;
            order.push(bytes);
        }
        assert_eq!(next, 6);
        assert_eq!(
            order.iter().map(|b| &b[..]).collect::<Vec<_>>(),
            vec![&b"a"[..], &b"b"[..], &b"c"[..]],
        );
        assert!(r.is_empty());
        assert!(r.slots.is_empty(), "compacted after full promotion");
    }

    #[test]
    fn reorder_ring_gap_blocks_promotion() {
        let mut r = ReorderRing::new();
        r.insert(5, 1, bm(b"later"));
        assert!(r.remove(0).is_none(), "gap: seq 0 never arrived");
        assert_eq!(r.len(), 1);
        r.insert(0, 5, bm(b"first"));
        let (count, bytes) = r.remove(0).expect("front arrived");
        assert_eq!((count, &bytes[..]), (5, &b"first"[..]));
        let (count, bytes) = r.remove(5).expect("parked run now in order");
        assert_eq!((count, &bytes[..]), (1, &b"later"[..]));
        assert!(r.is_empty());
    }

    #[test]
    fn reorder_ring_drains_every_buffer() {
        let mut r = ReorderRing::new();
        r.insert(7, 1, bm(b"x"));
        r.insert(3, 4, bm(b"y"));
        r.insert(9, 2, bm(b"z"));
        let drained: Vec<BytesMut> = r.drain().collect();
        assert_eq!(drained.len(), 3);
        assert!(r.is_empty());
        assert!(r.remove(3).is_none());
    }

    #[test]
    fn reorder_ring_displacement_returns_old_buffer() {
        let mut r = ReorderRing::new();
        assert!(r.insert(1, 1, bm(b"old")).is_none());
        let displaced = r.insert(1, 1, bm(b"new"));
        assert_eq!(displaced.as_deref(), Some(&b"old"[..]));
        assert_eq!(r.len(), 1);
        let (_, bytes) = r.remove(1).expect("replacement stays parked");
        assert_eq!(&bytes[..], b"new");
    }

    #[test]
    fn effective_sd_writers_resolution() {
        assert_eq!(effective_sd_writers(3), 3);
        let auto = effective_sd_writers(0);
        assert!((1..=2).contains(&auto));
    }
}
