//! Simulated NIC: bounded RX/TX frame rings with drop accounting.
//!
//! Stands in for the Intel 82599 10 GbE NIC of the paper's testbed. The
//! `RV` task drains the RX ring; the `SD` task fills the TX ring. Rings
//! are bounded, and a full RX ring drops frames exactly like real
//! hardware under overload.
//!
//! The ring is generic over its payload: the simulator moves raw
//! [`Bytes`] frames, while the batched TCP server moves
//! connection-tagged frames so one shared RX ring can aggregate traffic
//! across every client (the server's `RV` stage). Producers and
//! consumers move frames in bursts — [`FrameRing::push_burst`] and
//! [`FrameRing::pop_into`] take the ring lock once per burst, not once
//! per frame, which is what makes the shared ring cheaper than the
//! per-frame syscalls it replaces.

use bytes::Bytes;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};

/// A bounded frame ring. `T` defaults to a raw [`Bytes`] frame.
#[derive(Debug)]
pub struct FrameRing<T = Bytes> {
    ring: Mutex<VecDeque<T>>,
    slots: usize,
    enqueued: AtomicU64,
    dequeued: AtomicU64,
    dropped: AtomicU64,
}

impl<T> FrameRing<T> {
    /// Ring holding up to `slots` frames.
    ///
    /// # Panics
    /// Panics if `slots == 0`.
    #[must_use]
    pub fn new(slots: usize) -> FrameRing<T> {
        assert!(slots > 0, "ring must have at least one slot");
        FrameRing {
            ring: Mutex::new(VecDeque::with_capacity(slots)),
            slots,
            enqueued: AtomicU64::new(0),
            dequeued: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Offer a frame; drops (and counts the drop) when full.
    /// Returns whether the frame was accepted.
    pub fn push(&self, frame: T) -> bool {
        let accepted = {
            let mut ring = self.ring.lock();
            if ring.len() < self.slots {
                ring.push_back(frame);
                true
            } else {
                false
            }
        };
        if accepted {
            self.enqueued.fetch_add(1, Ordering::Relaxed);
        } else {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        accepted
    }

    /// Offer a burst of frames under a single ring lock. Frames that
    /// fit are moved out of `frames` (in order); whatever the full ring
    /// rejects stays behind — counted as dropped, exactly as if each
    /// had been [`push`](FrameRing::push)ed — for the caller to answer.
    /// Returns the number accepted.
    pub fn push_burst(&self, frames: &mut Vec<T>) -> usize {
        if frames.is_empty() {
            return 0;
        }
        let accepted = {
            let mut ring = self.ring.lock();
            let take = frames.len().min(self.slots - ring.len());
            ring.extend(frames.drain(..take));
            take
        };
        self.enqueued.fetch_add(accepted as u64, Ordering::Relaxed);
        self.dropped
            .fetch_add(frames.len() as u64, Ordering::Relaxed);
        accepted
    }

    /// Take the next frame, if any.
    pub fn pop(&self) -> Option<T> {
        let f = self.ring.lock().pop_front();
        if f.is_some() {
            self.dequeued.fetch_add(1, Ordering::Relaxed);
        }
        f
    }

    /// Drain up to `max` frames.
    pub fn pop_up_to(&self, max: usize) -> Vec<T> {
        let mut out = Vec::new();
        self.pop_into(max, &mut out);
        out
    }

    /// Drain up to `max` frames into `out` under a single ring lock
    /// (appends; no fresh allocation once `out`'s capacity is warm).
    /// Returns the number appended.
    pub fn pop_into(&self, max: usize, out: &mut Vec<T>) -> usize {
        let taken = {
            let mut ring = self.ring.lock();
            let take = max.min(ring.len());
            out.extend(ring.drain(..take));
            take
        };
        self.dequeued.fetch_add(taken as u64, Ordering::Relaxed);
        taken
    }

    /// Frames currently queued.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ring.lock().len()
    }

    /// Whether the ring is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ring.lock().is_empty()
    }

    /// Lifetime counters: (enqueued, dequeued, dropped).
    #[must_use]
    pub fn counters(&self) -> (u64, u64, u64) {
        (
            self.enqueued.load(Ordering::Relaxed),
            self.dequeued.load(Ordering::Relaxed),
            self.dropped.load(Ordering::Relaxed),
        )
    }
}

/// A NIC: one RX ring (client → server) and one TX ring (server →
/// client).
#[derive(Debug)]
pub struct Nic {
    /// Receive ring, drained by the `RV` task.
    pub rx: FrameRing,
    /// Transmit ring, filled by the `SD` task.
    pub tx: FrameRing,
}

impl Nic {
    /// NIC with `slots` frames of buffering per direction.
    #[must_use]
    pub fn new(slots: usize) -> Nic {
        Nic {
            rx: FrameRing::new(slots),
            tx: FrameRing::new(slots),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let r = FrameRing::new(8);
        r.push(Bytes::from_static(b"a"));
        r.push(Bytes::from_static(b"b"));
        assert_eq!(r.pop().unwrap(), Bytes::from_static(b"a"));
        assert_eq!(r.pop().unwrap(), Bytes::from_static(b"b"));
        assert!(r.pop().is_none());
    }

    #[test]
    fn overflow_drops_and_counts() {
        let r = FrameRing::new(2);
        assert!(r.push(Bytes::from_static(b"1")));
        assert!(r.push(Bytes::from_static(b"2")));
        assert!(!r.push(Bytes::from_static(b"3")));
        let (enq, deq, drop) = r.counters();
        assert_eq!((enq, deq, drop), (2, 0, 1));
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn pop_up_to_respects_limit() {
        let r = FrameRing::new(8);
        for i in 0..5u8 {
            r.push(Bytes::copy_from_slice(&[i]));
        }
        let drained = r.pop_up_to(3);
        assert_eq!(drained.len(), 3);
        assert_eq!(r.len(), 2);
        assert_eq!(r.pop_up_to(100).len(), 2);
        assert!(r.is_empty());
    }

    #[test]
    fn pop_into_appends_without_clearing() {
        let r = FrameRing::new(8);
        for i in 0..4u8 {
            r.push(Bytes::copy_from_slice(&[i]));
        }
        let mut out = vec![Bytes::from_static(b"existing")];
        assert_eq!(r.pop_into(2, &mut out), 2);
        assert_eq!(r.pop_into(10, &mut out), 2);
        assert_eq!(out.len(), 5);
        assert_eq!(out[0], Bytes::from_static(b"existing"));
        assert!(r.is_empty());
    }

    #[test]
    fn push_burst_accepts_prefix_and_leaves_overflow() {
        let r = FrameRing::new(3);
        r.push(Bytes::from_static(b"head"));
        let mut burst: Vec<Bytes> = (0..4u8).map(|i| Bytes::copy_from_slice(&[i])).collect();
        assert_eq!(r.push_burst(&mut burst), 2, "only two slots were free");
        assert_eq!(burst.len(), 2, "rejected tail stays with the caller");
        assert_eq!(burst[0], Bytes::from_static(&[2]));
        let (enq, _, drop) = r.counters();
        assert_eq!((enq, drop), (3, 2));
        // FIFO order survives the burst.
        assert_eq!(r.pop().unwrap(), Bytes::from_static(b"head"));
        assert_eq!(r.pop().unwrap(), Bytes::from_static(&[0]));
        assert_eq!(r.pop().unwrap(), Bytes::from_static(&[1]));
    }

    #[test]
    fn generic_ring_carries_tagged_payloads() {
        // The batched server tags frames with (conn, seq); the ring must
        // carry arbitrary payloads, not just raw Bytes.
        let r: FrameRing<(u64, Bytes)> = FrameRing::new(4);
        assert!(r.push((7, Bytes::from_static(b"payload"))));
        let (conn, frame) = r.pop().unwrap();
        assert_eq!(conn, 7);
        assert_eq!(frame, Bytes::from_static(b"payload"));
    }

    #[test]
    fn nic_has_independent_directions() {
        let nic = Nic::new(4);
        nic.rx.push(Bytes::from_static(b"in"));
        assert!(nic.tx.is_empty());
        assert_eq!(nic.rx.len(), 1);
    }

    #[test]
    fn concurrent_producers_consumers() {
        use std::sync::Arc;
        let r = Arc::new(FrameRing::new(1024));
        let producers: Vec<_> = (0..2)
            .map(|_| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || {
                    for _ in 0..500 {
                        while !r.push(Bytes::from_static(b"x")) {
                            std::thread::yield_now();
                        }
                    }
                })
            })
            .collect();
        let consumer = {
            let r = Arc::clone(&r);
            std::thread::spawn(move || {
                let mut got = 0;
                while got < 1000 {
                    if r.pop().is_some() {
                        got += 1;
                    } else {
                        std::thread::yield_now();
                    }
                }
                got
            })
        };
        for p in producers {
            p.join().unwrap();
        }
        assert_eq!(consumer.join().unwrap(), 1000);
        let (enq, deq, _) = r.counters();
        assert_eq!(enq, 1000);
        assert_eq!(deq, 1000);
    }
}
