//! Simulated NIC: lock-free RX/TX frame rings with drop accounting.
//!
//! Stands in for the Intel 82599 10 GbE NIC of the paper's testbed. The
//! `RV` task drains the RX ring; the `SD` task fills the TX ring. Rings
//! are bounded, and a full RX ring drops frames exactly like real
//! hardware under overload.

use bytes::Bytes;
use crossbeam::queue::ArrayQueue;
use std::sync::atomic::{AtomicU64, Ordering};

/// A bounded frame ring.
#[derive(Debug)]
pub struct FrameRing {
    ring: ArrayQueue<Bytes>,
    enqueued: AtomicU64,
    dequeued: AtomicU64,
    dropped: AtomicU64,
}

impl FrameRing {
    /// Ring holding up to `slots` frames.
    ///
    /// # Panics
    /// Panics if `slots == 0`.
    #[must_use]
    pub fn new(slots: usize) -> FrameRing {
        FrameRing {
            ring: ArrayQueue::new(slots),
            enqueued: AtomicU64::new(0),
            dequeued: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Offer a frame; drops (and counts the drop) when full.
    /// Returns whether the frame was accepted.
    pub fn push(&self, frame: Bytes) -> bool {
        match self.ring.push(frame) {
            Ok(()) => {
                self.enqueued.fetch_add(1, Ordering::Relaxed);
                true
            }
            Err(_) => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
                false
            }
        }
    }

    /// Take the next frame, if any.
    pub fn pop(&self) -> Option<Bytes> {
        let f = self.ring.pop();
        if f.is_some() {
            self.dequeued.fetch_add(1, Ordering::Relaxed);
        }
        f
    }

    /// Drain up to `max` frames.
    pub fn pop_up_to(&self, max: usize) -> Vec<Bytes> {
        let mut out = Vec::new();
        while out.len() < max {
            match self.pop() {
                Some(f) => out.push(f),
                None => break,
            }
        }
        out
    }

    /// Frames currently queued.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether the ring is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Lifetime counters: (enqueued, dequeued, dropped).
    #[must_use]
    pub fn counters(&self) -> (u64, u64, u64) {
        (
            self.enqueued.load(Ordering::Relaxed),
            self.dequeued.load(Ordering::Relaxed),
            self.dropped.load(Ordering::Relaxed),
        )
    }
}

/// A NIC: one RX ring (client → server) and one TX ring (server →
/// client).
#[derive(Debug)]
pub struct Nic {
    /// Receive ring, drained by the `RV` task.
    pub rx: FrameRing,
    /// Transmit ring, filled by the `SD` task.
    pub tx: FrameRing,
}

impl Nic {
    /// NIC with `slots` frames of buffering per direction.
    #[must_use]
    pub fn new(slots: usize) -> Nic {
        Nic {
            rx: FrameRing::new(slots),
            tx: FrameRing::new(slots),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let r = FrameRing::new(8);
        r.push(Bytes::from_static(b"a"));
        r.push(Bytes::from_static(b"b"));
        assert_eq!(r.pop().unwrap(), Bytes::from_static(b"a"));
        assert_eq!(r.pop().unwrap(), Bytes::from_static(b"b"));
        assert!(r.pop().is_none());
    }

    #[test]
    fn overflow_drops_and_counts() {
        let r = FrameRing::new(2);
        assert!(r.push(Bytes::from_static(b"1")));
        assert!(r.push(Bytes::from_static(b"2")));
        assert!(!r.push(Bytes::from_static(b"3")));
        let (enq, deq, drop) = r.counters();
        assert_eq!((enq, deq, drop), (2, 0, 1));
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn pop_up_to_respects_limit() {
        let r = FrameRing::new(8);
        for i in 0..5u8 {
            r.push(Bytes::copy_from_slice(&[i]));
        }
        let drained = r.pop_up_to(3);
        assert_eq!(drained.len(), 3);
        assert_eq!(r.len(), 2);
        assert_eq!(r.pop_up_to(100).len(), 2);
        assert!(r.is_empty());
    }

    #[test]
    fn nic_has_independent_directions() {
        let nic = Nic::new(4);
        nic.rx.push(Bytes::from_static(b"in"));
        assert!(nic.tx.is_empty());
        assert_eq!(nic.rx.len(), 1);
    }

    #[test]
    fn concurrent_producers_consumers() {
        use std::sync::Arc;
        let r = Arc::new(FrameRing::new(1024));
        let producers: Vec<_> = (0..2)
            .map(|_| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || {
                    for _ in 0..500 {
                        while !r.push(Bytes::from_static(b"x")) {
                            std::thread::yield_now();
                        }
                    }
                })
            })
            .collect();
        let consumer = {
            let r = Arc::clone(&r);
            std::thread::spawn(move || {
                let mut got = 0;
                while got < 1000 {
                    if r.pop().is_some() {
                        got += 1;
                    } else {
                        std::thread::yield_now();
                    }
                }
                got
            })
        };
        for p in producers {
            p.join().unwrap();
        }
        assert_eq!(consumer.join().unwrap(), 1000);
        let (enq, deq, _) = r.counters();
        assert_eq!(enq, 1000);
        assert_eq!(deq, 1000);
    }
}
