//! Runtime skewness estimation from sampled access frequencies.
//!
//! The paper estimates workload skewness at runtime "with the sampling
//! method in [17] [Joanes & Gill], which calculates the skewness
//! according to the access frequencies of sampled keys and their mean
//! frequency", using per-object counters reset each sampling epoch
//! (§IV-B). We implement the same counter/epoch sampling and recover the
//! Zipf parameter θ by a log-log regression over the hottest sampled
//! frequencies (`f_rank ∝ rank^{-θ}`), which is robust to the Poisson
//! noise of a finite sampling interval.

/// Estimate the Zipf skew θ̂ from sampled per-key access frequencies.
///
/// * `freqs` — access counts of the distinct keys touched during the
///   sampling interval (any order).
/// * `n_keys` — total key-space size (bounds the estimate's domain).
///
/// Under Zipf(θ) the head frequencies obey `f_rank ∝ rank^{-θ}`, so a
/// least-squares fit of `ln f` against `ln rank` over the hottest
/// observed keys recovers θ as the negated slope. The head ranks carry
/// large counts, so Poisson sampling noise barely biases the fit — a
/// uniform workload's (flat, noisy) head regresses to a slope near 0.
///
/// Returns a value in `[0, 0.999]`; uniform traffic estimates ≈ 0.
#[must_use]
pub fn estimate_skew(freqs: &[u32], n_keys: u64) -> f64 {
    let total: u64 = freqs.iter().map(|&f| u64::from(f)).sum();
    if total == 0 || freqs.len() < 8 || n_keys < 8 {
        return 0.0;
    }
    let mut sorted: Vec<u32> = freqs.iter().copied().filter(|&f| f > 0).collect();
    if sorted.len() < 8 {
        return 0.0;
    }
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let head = sorted.len().clamp(8, 100);
    // Least squares of y = ln f on x = ln rank over ranks 1..=head.
    let mut sx = 0.0;
    let mut sy = 0.0;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    for (i, &f) in sorted.iter().take(head).enumerate() {
        let x = ((i + 1) as f64).ln();
        let y = f64::from(f).ln();
        sx += x;
        sy += y;
        sxx += x * x;
        sxy += x * y;
    }
    let n = head as f64;
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return 0.0;
    }
    let slope = (n * sxy - sx * sy) / denom;
    (-slope).clamp(0.0, 0.999)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dido_workload::ScrambledZipfian;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashMap;

    fn sample_freqs(theta: Option<f64>, n_keys: u64, accesses: usize, seed: u64) -> Vec<u32> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut counts: HashMap<u64, u32> = HashMap::new();
        match theta {
            Some(t) => {
                let z = ScrambledZipfian::new(n_keys, t);
                for _ in 0..accesses {
                    *counts.entry(z.sample(&mut rng)).or_insert(0) += 1;
                }
            }
            None => {
                use rand::Rng;
                for _ in 0..accesses {
                    *counts.entry(rng.gen_range(0..n_keys)).or_insert(0) += 1;
                }
            }
        }
        counts.into_values().collect()
    }

    #[test]
    fn recovers_ycsb_skew() {
        let freqs = sample_freqs(Some(0.99), 100_000, 200_000, 1);
        let theta = estimate_skew(&freqs, 100_000);
        assert!(
            (theta - 0.99).abs() < 0.12,
            "estimated {theta:.3}, expected ~0.99"
        );
    }

    #[test]
    fn recovers_moderate_skew() {
        let freqs = sample_freqs(Some(0.6), 100_000, 200_000, 2);
        let theta = estimate_skew(&freqs, 100_000);
        assert!(
            (theta - 0.6).abs() < 0.2,
            "estimated {theta:.3}, expected ~0.6"
        );
    }

    #[test]
    fn uniform_estimates_near_zero() {
        let freqs = sample_freqs(None, 100_000, 200_000, 3);
        let theta = estimate_skew(&freqs, 100_000);
        assert!(theta < 0.2, "uniform traffic estimated as {theta:.3}");
    }

    #[test]
    fn degenerate_inputs_are_safe() {
        assert_eq!(estimate_skew(&[], 1000), 0.0);
        assert_eq!(estimate_skew(&[5], 1000), 0.0);
        assert_eq!(estimate_skew(&[0, 0, 0, 0, 0], 1000), 0.0);
        assert_eq!(estimate_skew(&[1, 1, 1, 1], 2), 0.0);
    }

    #[test]
    fn monotone_in_actual_skew() {
        let t_low = estimate_skew(&sample_freqs(Some(0.5), 50_000, 100_000, 4), 50_000);
        let t_high = estimate_skew(&sample_freqs(Some(0.95), 50_000, 100_000, 4), 50_000);
        assert!(t_high > t_low, "{t_high} should exceed {t_low}");
    }
}
