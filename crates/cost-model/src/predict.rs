//! The APU-aware cost model (paper §IV): Equations 1–3, task affinity,
//! key-popularity caching, and the exhaustive configuration search.
//!
//! The model predicts per-stage execution time *analytically* from
//! profiled workload statistics — expectations, not the functional
//! counts the simulator measures. The deliberate approximations (the
//! paper's own) are the sources of the Figure 9 error: 1.5-bucket probe
//! averages, closed-form Zipf `P` instead of real LRU behaviour, a
//! quantized interference table, and Equation 3's fluid work-stealing
//! (no tag granularity, no sync cost).

use crate::inputs::ModelInputs;
use dido_apu_sim::{GpuTiming, HwSpec, InterferenceTable, Ns, PcieModel};
use dido_model::costs::{self, lines_for};
use dido_model::{
    ConfigEnumerator, IndexOpKind, PipelineConfig, Processor, ResourceUsage, TaskKind,
    WAVEFRONT_WIDTH,
};

/// Fractional resource usage (expected per-query values).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
struct FracUsage {
    insns: f64,
    mem: f64,
    cache: f64,
}

impl FracUsage {
    fn scale(self, k: f64) -> FracUsage {
        FracUsage {
            insns: self.insns * k,
            mem: self.mem * k,
            cache: self.cache * k,
        }
    }
    fn add(self, o: FracUsage) -> FracUsage {
        FracUsage {
            insns: self.insns + o.insns,
            mem: self.mem + o.mem,
            cache: self.cache + o.cache,
        }
    }
    fn to_usage(self, n: f64) -> ResourceUsage {
        ResourceUsage::new(
            (self.insns * n).round() as u64,
            (self.mem * n).round() as u64,
            (self.cache * n).round() as u64,
        )
    }
    /// Reclassify a fraction `p` of memory accesses as cache accesses
    /// (paper §IV-B skew/affinity rule).
    fn cached(self, p: f64) -> FracUsage {
        let p = p.clamp(0.0, 1.0);
        FracUsage {
            insns: self.insns,
            mem: self.mem * (1.0 - p),
            cache: self.cache + self.mem * p,
        }
    }
}

/// Cached Zipf cache-hit fractions per processor (computing them calls
/// `ζ(n,θ)`, which must not sit in the per-batch-size inner loop).
#[derive(Debug, Clone, Copy)]
struct HotFractions {
    cpu: f64,
    gpu: f64,
}

/// A predicted stage.
#[derive(Debug, Clone)]
pub struct PredictedStage {
    /// Processor of the stage.
    pub processor: Processor,
    /// Predicted execution time for the chosen batch size, ns.
    pub time_ns: Ns,
    /// Cores assigned (CPU stages).
    pub cores: usize,
}

/// A throughput prediction for one configuration.
#[derive(Debug, Clone)]
pub struct Prediction {
    /// The configuration predicted.
    pub config: PipelineConfig,
    /// Batch size `N` chosen so `T_max ≤ I` (paper §IV-A: "the maximum
    /// number of queries in a batch, N, can be calculated by limiting
    /// T_max ≤ I").
    pub batch_size: usize,
    /// Predicted stage times at that batch size.
    pub stages: Vec<PredictedStage>,
    /// Predicted bottleneck time, ns.
    pub t_max_ns: Ns,
}

impl Prediction {
    /// Predicted throughput `S = N / T_max` in MOPS.
    #[must_use]
    pub fn throughput_mops(&self) -> f64 {
        if self.t_max_ns <= 0.0 {
            return 0.0;
        }
        self.batch_size as f64 / self.t_max_ns * 1_000.0
    }
}

/// The cost model.
#[derive(Debug, Clone)]
pub struct CostModel {
    hw: HwSpec,
    table: InterferenceTable,
    pcie: Option<PcieModel>,
}

impl CostModel {
    /// Build the model for a hardware profile, running the µ
    /// microbenchmark to fill the interference table (paper §IV-A).
    #[must_use]
    pub fn new(hw: HwSpec) -> CostModel {
        let pcie = if hw.coupled {
            None
        } else {
            Some(PcieModel::pcie3_x16())
        };
        CostModel {
            table: InterferenceTable::measure(&hw, 9),
            hw,
            pcie,
        }
    }

    /// The hardware profile.
    #[must_use]
    pub fn hw(&self) -> &HwSpec {
        &self.hw
    }

    // ---- Expected per-query task usage (the model's counterpart of the
    // functional tasks' accounting). ----

    fn frame_queries(&self, inputs: &ModelInputs) -> f64 {
        let s = inputs.stats;
        let rec = 7.0 + s.avg_key_size + s.set_ratio() * s.avg_value_size;
        // Whole records per frame (a record never spans frames).
        ((1500.0 - 2.0) / rec).floor().max(1.0)
    }

    fn usage_rv(&self, inputs: &ModelInputs) -> FracUsage {
        let per_frame = FracUsage {
            insns: costs::RV_INSNS_PER_FRAME as f64,
            mem: 0.0,
            cache: costs::RV_CACHE_PER_FRAME as f64,
        };
        per_frame.scale(1.0 / self.frame_queries(inputs))
    }

    fn usage_pp(&self) -> FracUsage {
        FracUsage {
            insns: costs::PP_INSNS_PER_QUERY as f64,
            mem: 0.0,
            cache: costs::PP_CACHE_PER_QUERY as f64,
        }
    }

    fn usage_mm(&self, inputs: &ModelInputs) -> FracUsage {
        let s = inputs.stats;
        let obj_lines =
            lines_for(s.avg_object_size() as usize, self.hw.cpu.cache_line) as f64;
        // Steady state: the store is full, so every SET's allocation
        // evicts (paper §II-C-2).
        let per_set = FracUsage {
            insns: (costs::MM_INSNS_PER_ALLOC + costs::MM_INSNS_PER_EVICT) as f64
                + obj_lines * costs::INSNS_PER_LINE as f64,
            mem: (costs::MM_MEM_PER_ALLOC + costs::MM_MEM_PER_EVICT) as f64,
            cache: obj_lines,
        };
        per_set.scale(s.set_ratio())
    }

    /// Index-operation usage per *operation* (not per query).
    fn usage_index_op(&self, op: IndexOpKind, inputs: &ModelInputs) -> FracUsage {
        // Cuckoo with 2 hash functions: Search/Delete average
        // (1+2)/2 = 1.5 bucket reads (paper §IV-B); Insert uses the
        // runtime-observed probe count.
        let buckets = match op {
            IndexOpKind::Search => 1.5,
            IndexOpKind::Delete => inputs.avg_delete_buckets,
            IndexOpKind::Insert => inputs.avg_insert_buckets,
        };
        let cas = match op {
            IndexOpKind::Search => 0.0,
            _ => 1.0,
        };
        FracUsage {
            insns: buckets * 24.0 + cas * 12.0,
            mem: buckets,
            cache: 0.0,
        }
    }

    /// Ops per query for each index operation.
    fn ops_per_query(&self, op: IndexOpKind, inputs: &ModelInputs) -> f64 {
        let s = inputs.stats;
        match op {
            IndexOpKind::Search => s.get_ratio,
            IndexOpKind::Insert => s.set_ratio(),
            // One eviction delete per SET at steady state plus explicit
            // DELETE queries.
            IndexOpKind::Delete => s.set_ratio() + s.delete_ratio,
        }
    }

    fn usage_kc(&self, inputs: &ModelInputs, p_hot: f64) -> FracUsage {
        let s = inputs.stats;
        let key_lines = lines_for(s.avg_key_size as usize, self.hw.cpu.cache_line) as f64;
        let raw = FracUsage {
            insns: costs::KC_INSNS_PER_CANDIDATE as f64
                + key_lines * costs::INSNS_PER_LINE as f64,
            mem: 1.0,
            cache: key_lines - 1.0,
        };
        raw.cached(p_hot).scale(s.get_ratio)
    }

    fn hot_fractions(&self, inputs: &ModelInputs) -> HotFractions {
        HotFractions {
            cpu: inputs.cache_hit_fraction(inputs.cpu_cache_bytes),
            gpu: inputs.cache_hit_fraction(inputs.gpu_cache_bytes),
        }
    }

    fn usage_rd(&self, inputs: &ModelInputs, p: f64) -> FracUsage {
        let s = inputs.stats;
        let val_lines = lines_for(s.avg_value_size as usize, self.hw.cpu.cache_line) as f64;
        let read = FracUsage {
            insns: val_lines * costs::INSNS_PER_LINE as f64,
            mem: 1.0,
            cache: val_lines - 1.0,
        };
        // `p` is the probability the object is still cached when RD
        // reads it (affinity and/or skew; computed by the caller).
        let staging = FracUsage {
            insns: val_lines * costs::INSNS_PER_LINE as f64,
            mem: 0.0,
            cache: val_lines,
        };
        read.cached(p).add(staging).scale(s.get_ratio)
    }

    fn usage_wr(&self, inputs: &ModelInputs, rd_same_stage: bool) -> FracUsage {
        let s = inputs.stats;
        let val_lines = lines_for(s.avg_value_size as usize, self.hw.cpu.cache_line) as f64;
        let mut u = FracUsage {
            insns: costs::WR_INSNS_PER_QUERY as f64,
            mem: 0.0,
            cache: 1.0,
        };
        if !rd_same_stage {
            // The extra sequential pass over the staging buffer.
            u = u.add(FracUsage {
                insns: val_lines * costs::INSNS_PER_LINE as f64,
                mem: 0.0,
                cache: val_lines,
            }
            .scale(s.get_ratio));
        }
        u
    }

    fn usage_sd(&self, inputs: &ModelInputs) -> FracUsage {
        let s = inputs.stats;
        let resp = 5.0 + s.get_ratio * s.avg_value_size;
        // Whole responses per frame.
        let per_frame = ((1500.0 - 2.0) / resp).floor().max(1.0);
        FracUsage {
            insns: costs::SD_INSNS_PER_FRAME as f64,
            mem: 0.0,
            cache: costs::SD_CACHE_PER_FRAME as f64,
        }
        .scale(1.0 / per_frame)
    }

    // ---- Stage assembly ----

    /// Predict stage times for a batch of `n` queries under `config`.
    fn stage_times(
        &self,
        config: PipelineConfig,
        inputs: &ModelInputs,
        hot: HotFractions,
        n: usize,
    ) -> Vec<PredictedStage> {
        let plan = config.plan();
        let nf = n as f64;
        let cpu = &self.hw.cpu;

        // Per-stage: CPU fractional usage, GPU kernels (items, usage).
        struct StageAcc {
            processor: Processor,
            cpu_usage: FracUsage,
            kernels: Vec<(f64, FracUsage, bool)>,
            pcie_bytes: (f64, f64),
        }
        let mut accs: Vec<StageAcc> = plan
            .stages
            .iter()
            .map(|st| StageAcc {
                processor: st.processor,
                cpu_usage: FracUsage::default(),
                kernels: Vec::new(),
                pcie_bytes: (0.0, 0.0),
            })
            .collect();

        for (si, st) in plan.stages.iter().enumerate() {
            let gpu = st.processor == Processor::Gpu;
            let add = |acc: &mut StageAcc, items_per_query: f64, u: FracUsage| {
                if gpu {
                    acc.kernels.push((items_per_query * nf, u, false));
                } else {
                    acc.cpu_usage = acc.cpu_usage.add(u.scale(items_per_query));
                }
            };
            for t in st.tasks.iter() {
                match t {
                    TaskKind::Rv => add(&mut accs[si], 1.0, self.usage_rv(inputs)),
                    TaskKind::Pp => add(&mut accs[si], 1.0, self.usage_pp()),
                    TaskKind::Mm => add(&mut accs[si], 1.0, self.usage_mm(inputs)),
                    TaskKind::In => {
                        for &op in &st.index_ops {
                            let per_op = self.usage_index_op(op, inputs);
                            let rate = self.ops_per_query(op, inputs);
                            if gpu {
                                // CAS-dominated update kernels lose
                                // latency hiding (atomic MLP cap).
                                let atomic = op != IndexOpKind::Search;
                                accs[si].kernels.push((rate * nf, per_op, atomic));
                                accs[si].pcie_bytes.0 += 16.0 * rate * nf;
                                accs[si].pcie_bytes.1 += 8.0 * rate * nf;
                            } else {
                                accs[si].cpu_usage =
                                    accs[si].cpu_usage.add(per_op.scale(rate));
                            }
                        }
                    }
                    TaskKind::Kc => {
                        let p_hot = match st.processor {
                            Processor::Cpu => hot.cpu,
                            Processor::Gpu => hot.gpu,
                        };
                        let u = self.usage_kc(inputs, p_hot);
                        let rate = inputs.stats.get_ratio;
                        if gpu {
                            accs[si]
                                .kernels
                                .push((rate * nf, u.scale(1.0 / rate.max(1e-9)), false));
                            accs[si].pcie_bytes.0 += inputs.stats.avg_key_size * nf;
                        } else {
                            accs[si].cpu_usage = accs[si].cpu_usage.add(u);
                        }
                    }
                    TaskKind::Rd => {
                        let kc_here = st.tasks.contains(TaskKind::Kc);
                        let (p_hot, cache_bytes) = match st.processor {
                            Processor::Cpu => (hot.cpu, inputs.cpu_cache_bytes),
                            Processor::Gpu => (hot.gpu, inputs.gpu_cache_bytes),
                        };
                        // Affinity (paper §IV-B: RD re-reads what KC
                        // fetched) holds only while the batch's GET
                        // working set fits the cache.
                        let p = if kc_here {
                            let ws = nf
                                * inputs.stats.get_ratio
                                * inputs.object_class_bytes() as f64;
                            (cache_bytes as f64 / ws.max(1.0)).min(1.0).max(p_hot)
                        } else {
                            p_hot
                        };
                        let u = self.usage_rd(inputs, p);
                        let rate = inputs.stats.get_ratio;
                        if gpu {
                            accs[si]
                                .kernels
                                .push((rate * nf, u.scale(1.0 / rate.max(1e-9)), false));
                            accs[si].pcie_bytes.1 += inputs.stats.avg_value_size * rate * nf;
                        } else {
                            accs[si].cpu_usage = accs[si].cpu_usage.add(u);
                        }
                    }
                    TaskKind::Wr => {
                        let rd_here = st.tasks.contains(TaskKind::Rd);
                        let u = self.usage_wr(inputs, rd_here);
                        add(&mut accs[si], 1.0, u);
                        if gpu {
                            accs[si].pcie_bytes.1 += 8.0 * nf;
                        }
                    }
                    TaskKind::Sd => add(&mut accs[si], 1.0, self.usage_sd(inputs)),
                }
            }
            if !st.tasks.contains(TaskKind::In) {
                for &op in &st.index_ops {
                    let per_op = self.usage_index_op(op, inputs);
                    let rate = self.ops_per_query(op, inputs);
                    add(&mut accs[si], rate, per_op);
                }
            }
        }

        // CPU core split (same policy as the executor).
        let cpu_raw: Vec<(usize, Ns)> = accs
            .iter()
            .enumerate()
            .filter(|(_, a)| a.processor == Processor::Cpu)
            .map(|(i, a)| {
                let u = a.cpu_usage.to_usage(nf);
                let t = u.instructions as f64 / (cpu.ipc * cpu.freq_ghz)
                    + u.mem_accesses as f64 * cpu.mem_latency_ns
                    + u.cache_accesses as f64 * cpu.l2_latency_ns;
                (i, t)
            })
            .collect();
        let total_cores = cpu.cores;
        let mut cores_for = vec![0usize; accs.len()];
        match cpu_raw.len() {
            0 => {}
            1 => cores_for[cpu_raw[0].0] = total_cores,
            _ => {
                let (i0, t0) = cpu_raw[0];
                let (i1, t1) = cpu_raw[1];
                let mut best = (1usize, f64::INFINITY);
                for c in 1..total_cores {
                    let m = (t0 / c as f64).max(t1 / (total_cores - c) as f64);
                    if m < best.1 {
                        best = (c, m);
                    }
                }
                cores_for[i0] = best.0;
                cores_for[i1] = total_cores - best.0;
            }
        }

        // Isolated stage times.
        let gpu_timing = GpuTiming::new(&self.hw.gpu);
        let mut out: Vec<PredictedStage> = Vec::with_capacity(accs.len());
        let mut mem_rates: Vec<(Processor, f64)> = Vec::new();
        for (i, a) in accs.iter().enumerate() {
            let t = match a.processor {
                Processor::Cpu => {
                    let u = a.cpu_usage.to_usage(nf);
                    let raw = u.instructions as f64 / (cpu.ipc * cpu.freq_ghz)
                        + u.mem_accesses as f64 * cpu.mem_latency_ns
                        + u.cache_accesses as f64 * cpu.l2_latency_ns;
                    mem_rates.push((Processor::Cpu, u.mem_accesses as f64));
                    raw / cores_for[i].max(1) as f64
                }
                Processor::Gpu => {
                    let mut total = 0.0;
                    let mut mem = 0.0;
                    for (items, per_item, atomic) in &a.kernels {
                        let items_n = items.round().max(0.0) as usize;
                        let agg = per_item.to_usage(*items);
                        total += gpu_timing.kernel_time_aggregate_opts(items_n, agg, *atomic);
                        mem += agg.mem_accesses as f64;
                    }
                    if let Some(p) = &self.pcie {
                        total += p.round_trip_time(
                            a.pcie_bytes.0.round() as u64,
                            a.pcie_bytes.1.round() as u64,
                        );
                    }
                    mem_rates.push((Processor::Gpu, mem));
                    total
                }
            };
            out.push(PredictedStage {
                processor: a.processor,
                time_ns: t,
                cores: cores_for[i],
            });
        }

        // Equation 2: interference with the (quantized) µ table —
        // fixed-point iteration over isolated stage times.
        let isolated: Vec<f64> = out.iter().map(|s| s.time_ns).collect();
        for _ in 0..6 {
            let t_max = out.iter().map(|s| s.time_ns).fold(1.0_f64, f64::max);
            let rate = |p: Processor| {
                mem_rates
                    .iter()
                    .filter(|(mp, _)| *mp == p)
                    .map(|(_, m)| m)
                    .sum::<f64>()
                    / t_max
            };
            let cpu_rate = rate(Processor::Cpu);
            let gpu_rate = rate(Processor::Gpu);
            for (s, iso) in out.iter_mut().zip(&isolated) {
                let mu = match s.processor {
                    Processor::Cpu => self.table.mu(Processor::Cpu, gpu_rate),
                    Processor::Gpu => self.table.mu(Processor::Gpu, cpu_rate),
                };
                s.time_ns = iso * mu;
            }
        }

        // Equation 3: work stealing (fluid model, no tag quantization).
        if config.work_stealing {
            self.apply_eq3(&mut out);
        }
        out
    }

    /// Paper Equation 3:
    /// `T_WS_A = T_B^CPU + T_A^CPU · (T_A^GPU − T_B^CPU) / (T_A^CPU + T_A^GPU)`.
    /// Applied when one processor's bottleneck exceeds the other side's
    /// completion time; the analogous form covers a CPU bottleneck.
    fn apply_eq3(&self, stages: &mut [PredictedStage]) {
        let Some(gpu_i) = stages.iter().position(|s| s.processor == Processor::Gpu) else {
            return;
        };
        let t_gpu = stages[gpu_i].time_ns;
        let t_cpu_max = stages
            .iter()
            .filter(|s| s.processor == Processor::Cpu)
            .map(|s| s.time_ns)
            .fold(0.0_f64, f64::max);
        if t_cpu_max <= 0.0 || t_gpu <= 0.0 {
            return;
        }
        // Cross-processor execution-rate ratio for the same work: use
        // the CPU↔GPU per-item cost ratio approximated by the ratio of
        // their isolated times for the bottleneck stage's work.
        if t_gpu > t_cpu_max {
            // GPU-bound: CPU threads steal once their own stages finish
            // (Equation 3's fluid view, solved against the CPU stages'
            // actual idle capacity). One core-ns of CPU time removes `e`
            // ns of saturated GPU work, where `e` is the per-random-
            // access cost ratio: the GPU hides latency at max MLP, the
            // CPU pays it serially.
            let e = (self.hw.gpu.mem_latency_ns / self.hw.gpu.max_mlp)
                / self.hw.cpu.mem_latency_ns;
            // Solve t_gpu − T = e · Σ_i c_i (T − t_i).
            let (sum_c, sum_ct) = stages
                .iter()
                .filter(|s| s.processor == Processor::Cpu)
                .fold((0.0, 0.0), |(c, ct), s| {
                    (c + s.cores as f64, ct + s.cores as f64 * s.time_ns)
                });
            let t_ws = (t_gpu + e * sum_ct) / (1.0 + e * sum_c);
            stages[gpu_i].time_ns = t_ws.clamp(t_cpu_max.min(t_gpu), t_gpu);
        } else {
            // CPU-bound: symmetric form. The GPU steals from the
            // bottleneck CPU stage's offloadable share (RV/PP/MM/SD
            // cannot move): T_WS = T_fixed + T_steal·T_A^GPU/(T_steal+T_A^GPU),
            // where T_A^GPU is the GPU's cost for the stealable work on
            // top of its own stage.
            let cpu_i = stages
                .iter()
                .enumerate()
                .filter(|(_, s)| s.processor == Processor::Cpu)
                .max_by(|a, b| a.1.time_ns.total_cmp(&b.1.time_ns))
                .map(|(i, _)| i)
                .expect("cpu stage exists");
            let t_cpu = stages[cpu_i].time_ns;
            let stealable = 0.6 * t_cpu;
            let fixed = t_cpu - stealable;
            // Fluid model at rate parity: the GPU joins once its own
            // stage finishes at t_gpu; completion T satisfies
            // T + (T − t_gpu) = t_cpu, bounded by what is stealable and
            // by the non-offloadable fixed work.
            let t_ws = (0.5 * (t_cpu + t_gpu))
                .max(t_gpu)
                .max(fixed)
                .max(t_cpu - stealable);
            stages[cpu_i].time_ns = t_ws.min(t_cpu);
        }
    }

    /// Predict throughput for one configuration: find the largest batch
    /// `N` with `T_max(N) ≤ I` (binary search; `T_max` is monotone in
    /// `N`), per §IV-A.
    #[must_use]
    pub fn predict(&self, config: PipelineConfig, inputs: &ModelInputs) -> Prediction {
        let interval = inputs.interval_ns;
        let hot = self.hot_fractions(inputs);
        let fits = |n: usize| -> (bool, Vec<PredictedStage>) {
            let st = self.stage_times(config, inputs, hot, n);
            let t = st.iter().map(|s| s.time_ns).fold(0.0_f64, f64::max);
            (t <= interval, st)
        };
        let mut lo = WAVEFRONT_WIDTH;
        let mut hi = 1 << 18;
        if !fits(lo).0 {
            let stages = self.stage_times(config, inputs, hot, lo);
            let t_max = stages.iter().map(|s| s.time_ns).fold(0.0_f64, f64::max);
            return Prediction {
                config,
                batch_size: lo,
                stages,
                t_max_ns: t_max,
            };
        }
        while hi - lo > WAVEFRONT_WIDTH {
            let mid = ((lo + hi) / 2 / WAVEFRONT_WIDTH) * WAVEFRONT_WIDTH;
            if fits(mid).0 {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let stages = self.stage_times(config, inputs, hot, lo);
        let t_max = stages.iter().map(|s| s.time_ns).fold(0.0_f64, f64::max);
        Prediction {
            config,
            batch_size: lo,
            stages,
            t_max_ns: t_max,
        }
    }

    /// Exhaustive search for the configuration with the highest
    /// predicted throughput (paper §IV-B: "the cost model estimates the
    /// system throughput for all the configurations and chooses the one
    /// with the highest throughput").
    #[must_use]
    pub fn optimal_config(
        &self,
        inputs: &ModelInputs,
        enumerator: ConfigEnumerator,
    ) -> Prediction {
        let mut best: Option<Prediction> = None;
        for cfg in enumerator.enumerate() {
            let p = self.predict(cfg, inputs);
            let better = match &best {
                None => true,
                Some(b) => p.throughput_mops() > b.throughput_mops(),
            };
            if better {
                best = Some(p);
            }
        }
        best.expect("enumerator yields at least one config")
    }

    /// Greedy variant (extension): start from Mega-KV's configuration
    /// and accept single-dimension improvements until a fixed point.
    /// Cheaper than the exhaustive sweep; the ablation benches compare
    /// the two.
    #[must_use]
    pub fn greedy_config(&self, inputs: &ModelInputs) -> Prediction {
        let mut current = self.predict(PipelineConfig::mega_kv(), inputs);
        loop {
            let mut improved = false;
            for cfg in neighbours(&current.config) {
                if !cfg.is_valid() {
                    continue;
                }
                let p = self.predict(cfg, inputs);
                if p.throughput_mops() > current.throughput_mops() * 1.001 {
                    current = p;
                    improved = true;
                }
            }
            if !improved {
                return current;
            }
        }
    }
}

/// Single-dimension mutations of a configuration (for greedy search).
fn neighbours(cfg: &PipelineConfig) -> Vec<PipelineConfig> {
    let mut out = Vec::new();
    // Toggle work stealing.
    let mut c = *cfg;
    c.work_stealing = !c.work_stealing;
    out.push(c);
    // Flip each index op.
    for op in IndexOpKind::ALL {
        let mut c = *cfg;
        match op {
            IndexOpKind::Search => c.index_ops.search = c.index_ops.search.other(),
            IndexOpKind::Insert => c.index_ops.insert = c.index_ops.insert.other(),
            IndexOpKind::Delete => c.index_ops.delete = c.index_ops.delete.other(),
        }
        out.push(c);
    }
    // Grow/shrink the GPU segment at both ends.
    let offloadable = [TaskKind::In, TaskKind::Kc, TaskKind::Rd, TaskKind::Wr];
    for &t in &offloadable {
        let mut grow = *cfg;
        grow.gpu_segment.insert(t);
        out.push(grow);
        let mut shrink = *cfg;
        shrink.gpu_segment.remove(t);
        out.push(shrink);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dido_model::WorkloadStats;

    fn inputs(label: &str) -> ModelInputs {
        let (key, val, get, skew) = match label {
            "K8-G95-S" => (8.0, 8.0, 0.95, 0.99),
            "K8-G95-U" => (8.0, 8.0, 0.95, 0.0),
            "K128-G50-U" => (128.0, 1024.0, 0.50, 0.0),
            "K16-G100-S" => (16.0, 64.0, 1.0, 0.99),
            _ => panic!("unknown label"),
        };
        ModelInputs {
            stats: WorkloadStats {
                get_ratio: get,
                delete_ratio: 0.0,
                avg_key_size: key,
                avg_value_size: val,
                zipf_skew: skew,
                batch_size: 8192,
            },
            n_keys: 1_000_000,
            avg_insert_buckets: 2.1,
            avg_delete_buckets: 1.7,
            interval_ns: 300_000.0,
            cpu_cache_bytes: 128 << 10,
            gpu_cache_bytes: 16 << 10,
        }
    }

    fn model() -> CostModel {
        CostModel::new(HwSpec::kaveri_apu())
    }

    #[test]
    fn prediction_is_positive_and_fits_interval() {
        let m = model();
        let p = m.predict(PipelineConfig::mega_kv(), &inputs("K8-G95-S"));
        assert!(p.throughput_mops() > 0.0);
        assert!(p.t_max_ns <= 300_000.0 * 1.01, "t_max {}", p.t_max_ns);
        assert!(p.batch_size >= WAVEFRONT_WIDTH);
        assert_eq!(p.stages.len(), 3);
    }

    #[test]
    fn bigger_interval_bigger_batch() {
        let m = model();
        let mut i = inputs("K8-G95-U");
        let p300 = m.predict(PipelineConfig::mega_kv(), &i);
        i.interval_ns = 600_000.0;
        let p600 = m.predict(PipelineConfig::mega_kv(), &i);
        assert!(p600.batch_size > p300.batch_size);
    }

    #[test]
    fn optimal_beats_or_matches_mega_kv_everywhere() {
        let m = model();
        for label in ["K8-G95-S", "K8-G95-U", "K128-G50-U", "K16-G100-S"] {
            let inp = inputs(label);
            let mega = m.predict(PipelineConfig::mega_kv(), &inp);
            let best = m.optimal_config(&inp, ConfigEnumerator::default());
            assert!(
                best.throughput_mops() >= mega.throughput_mops() * 0.999,
                "{label}: optimal {:.2} must be >= megakv {:.2}",
                best.throughput_mops(),
                mega.throughput_mops()
            );
        }
    }

    #[test]
    fn read_intensive_small_kv_prefers_updates_on_cpu() {
        // Paper §V-C: for 95% GET workloads DIDO assigns Insert/Delete
        // to CPUs.
        let m = model();
        let best = m.optimal_config(&inputs("K8-G95-S"), ConfigEnumerator::default());
        assert_eq!(
            best.config.index_ops.insert,
            Processor::Cpu,
            "best config {} should run inserts on the CPU",
            best.config
        );
    }

    #[test]
    fn work_stealing_never_hurts_predicted_throughput() {
        let m = model();
        for label in ["K8-G95-S", "K128-G50-U"] {
            let inp = inputs(label);
            let mut cfg = PipelineConfig::mega_kv();
            let off = m.predict(cfg, &inp);
            cfg.work_stealing = true;
            let on = m.predict(cfg, &inp);
            assert!(
                on.throughput_mops() >= off.throughput_mops() * 0.999,
                "{label}: stealing should not hurt"
            );
        }
    }

    #[test]
    fn greedy_close_to_exhaustive() {
        let m = model();
        for label in ["K8-G95-S", "K128-G50-U", "K16-G100-S"] {
            let inp = inputs(label);
            let exhaustive = m.optimal_config(&inp, ConfigEnumerator::default());
            let greedy = m.greedy_config(&inp);
            assert!(
                greedy.throughput_mops() >= exhaustive.throughput_mops() * 0.7,
                "{label}: greedy {:.2} too far from exhaustive {:.2}",
                greedy.throughput_mops(),
                exhaustive.throughput_mops()
            );
        }
    }

    #[test]
    fn discrete_profile_predictions_include_pcie() {
        let m = CostModel::new(HwSpec::discrete_gtx780());
        let p = m.predict(PipelineConfig::mega_kv(), &inputs("K8-G95-U"));
        assert!(p.throughput_mops() > 0.0);
    }
}
