//! Inputs the cost model consumes at runtime.

use dido_model::WorkloadStats;

/// Object header bytes (mirrors `dido_kvstore::HEADER_SIZE`; duplicated
/// as a constant so the model stays independent of the store crate).
pub const OBJECT_HEADER_BYTES: usize = 24;

/// Everything the Workload Profiler hands to the cost model
/// (paper §III-A: "GET/SET ratio and average key-value size ...
/// implemented with only a few counters", plus the runtime insert-probe
/// statistic and estimated skewness of §IV-B).
#[derive(Debug, Clone, Copy)]
pub struct ModelInputs {
    /// Profiled batch statistics (ratios, sizes, estimated skew).
    pub stats: WorkloadStats,
    /// Total keys resident in the store (for the Zipf head-mass `P`).
    pub n_keys: u64,
    /// Mean buckets touched per Insert, observed at runtime
    /// (`IndexTable::avg_insert_buckets`).
    pub avg_insert_buckets: f64,
    /// Mean buckets touched per Delete, observed at runtime
    /// (`IndexTable::avg_delete_buckets`; analytic default 1.5).
    pub avg_delete_buckets: f64,
    /// Per-stage execution-time cap from periodical scheduling, ns.
    pub interval_ns: f64,
    /// CPU cache filter capacity, bytes (as configured in the engine).
    pub cpu_cache_bytes: u64,
    /// GPU cache filter capacity, bytes.
    pub gpu_cache_bytes: u64,
}

impl ModelInputs {
    /// Slab class size of the workload's average object.
    #[must_use]
    pub fn object_class_bytes(&self) -> u64 {
        let total = OBJECT_HEADER_BYTES as f64 + self.stats.avg_object_size();
        (total.max(32.0) as u64).next_power_of_two()
    }

    /// The Zipf cache-hit fraction `P` for a cache of `cache_bytes`
    /// (paper §IV-B): the head mass of the `n'` hottest keys, where
    /// `n' = cache / class size`. 0 for uniform workloads (a vanishing
    /// fraction of a large key space fits in cache).
    #[must_use]
    pub fn cache_hit_fraction(&self, cache_bytes: u64) -> f64 {
        if self.n_keys == 0 {
            return 0.0;
        }
        let cached = (cache_bytes / self.object_class_bytes()).min(self.n_keys);
        if cached == 0 {
            return 0.0;
        }
        let theta = self.stats.zipf_skew;
        if theta < 1e-3 {
            return cached as f64 / self.n_keys as f64;
        }
        dido_workload::Zipfian::zeta(cached, theta.min(0.999))
            / dido_workload::Zipfian::zeta(self.n_keys, theta.min(0.999))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs(skew: f64) -> ModelInputs {
        ModelInputs {
            stats: WorkloadStats {
                get_ratio: 0.95,
                delete_ratio: 0.0,
                avg_key_size: 16.0,
                avg_value_size: 64.0,
                zipf_skew: skew,
                batch_size: 4096,
            },
            n_keys: 1_000_000,
            avg_insert_buckets: 2.0,
            avg_delete_buckets: 1.5,
            interval_ns: 300_000.0,
            cpu_cache_bytes: 4 << 20,
            gpu_cache_bytes: 512 << 10,
        }
    }

    #[test]
    fn class_size_rounds_up_to_power_of_two() {
        // 16 + 16 + 64 = 96 -> 128.
        assert_eq!(inputs(0.0).object_class_bytes(), 128);
    }

    #[test]
    fn skewed_p_is_large_uniform_p_is_small() {
        let p_skew = inputs(0.99).cache_hit_fraction(4 << 20);
        let p_uni = inputs(0.0).cache_hit_fraction(4 << 20);
        // 32768 cached of 1M keys: ~3% uniform, ~60%+ zipf.
        assert!(p_uni < 0.05, "uniform P {p_uni}");
        assert!(p_skew > 0.5, "skewed P {p_skew}");
        assert!(p_skew < 1.0);
    }

    #[test]
    fn bigger_cache_bigger_p() {
        let i = inputs(0.99);
        assert!(i.cache_hit_fraction(8 << 20) > i.cache_hit_fraction(1 << 20));
        assert_eq!(i.cache_hit_fraction(0), 0.0);
    }
}
