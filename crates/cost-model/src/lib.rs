//! The APU-aware cost model of DIDO (paper §IV).
//!
//! Predicts the execution time of every pipeline stage analytically —
//! computation via peak IPC, memory via counted accesses and latencies
//! (Equation 1), cross-processor interference via a
//! microbenchmark-built µ table (Equation 2), and work stealing via the
//! fluid Equation 3 — then searches the whole configuration space for
//! the highest-throughput [`dido_model::PipelineConfig`] under the
//! periodical-scheduling constraint `T_max ≤ I`.
//!
//! The model consumes only what the Workload Profiler counts
//! ([`ModelInputs`]): GET/SET ratios, average key/value sizes, the
//! runtime insert-probe statistic, and the sampled skewness estimate
//! ([`estimate_skew`]).
//!
//! ```
//! use dido_apu_sim::HwSpec;
//! use dido_cost_model::{CostModel, ModelInputs};
//! use dido_model::{ConfigEnumerator, WorkloadStats};
//!
//! let model = CostModel::new(HwSpec::kaveri_apu());
//! let inputs = ModelInputs {
//!     stats: WorkloadStats {
//!         get_ratio: 0.95,
//!         delete_ratio: 0.0,
//!         avg_key_size: 16.0,
//!         avg_value_size: 64.0,
//!         zipf_skew: 0.99,
//!         batch_size: 8192,
//!     },
//!     n_keys: 1_000_000,
//!     avg_insert_buckets: 2.0,
//!     avg_delete_buckets: 1.5,
//!     interval_ns: 300_000.0,
//!     cpu_cache_bytes: 128 << 10,
//!     gpu_cache_bytes: 16 << 10,
//! };
//! let best = model.optimal_config(&inputs, ConfigEnumerator::default());
//! assert!(best.throughput_mops() > 0.0);
//! ```

#![warn(missing_docs)]

mod inputs;
mod predict;
mod skew;

pub use inputs::{ModelInputs, OBJECT_HEADER_BYTES};
pub use predict::{CostModel, PredictedStage, Prediction};
pub use skew::estimate_skew;
