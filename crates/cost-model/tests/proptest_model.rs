//! Property tests for the cost model: predictions must respond sanely
//! (and monotonically, where physics says so) to workload and budget
//! changes, for arbitrary workload shapes.

use dido_apu_sim::HwSpec;
use dido_cost_model::{CostModel, ModelInputs};
use dido_model::{ConfigEnumerator, PipelineConfig, WorkloadStats};
use proptest::prelude::*;

fn arb_inputs() -> impl Strategy<Value = ModelInputs> {
    (
        0.0f64..=1.0,          // get ratio
        8.0f64..=128.0,        // key size
        8.0f64..=1024.0,       // value size
        prop_oneof![Just(0.0f64), 0.3f64..0.999], // skew
        1_000u64..10_000_000,  // keys
        1.0f64..4.0,           // insert buckets
        1.0f64..2.0,           // delete buckets
    )
        .prop_map(|(get, key, val, skew, n_keys, ins, del)| ModelInputs {
            stats: WorkloadStats {
                get_ratio: get,
                delete_ratio: 0.0,
                avg_key_size: key,
                avg_value_size: val,
                zipf_skew: skew,
                batch_size: 8192,
            },
            n_keys,
            avg_insert_buckets: ins,
            avg_delete_buckets: del,
            interval_ns: 300_000.0,
            cpu_cache_bytes: 128 << 10,
            gpu_cache_bytes: 16 << 10,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn predictions_are_finite_and_fit_the_interval(inputs in arb_inputs()) {
        let model = CostModel::new(HwSpec::kaveri_apu());
        let p = model.predict(PipelineConfig::mega_kv(), &inputs);
        prop_assert!(p.throughput_mops().is_finite());
        prop_assert!(p.throughput_mops() > 0.0);
        prop_assert!(p.t_max_ns.is_finite() && p.t_max_ns > 0.0);
        // The binary search honours the periodical-scheduling cap
        // whenever even the minimum batch fits.
        if p.batch_size > dido_model::WAVEFRONT_WIDTH {
            prop_assert!(
                p.t_max_ns <= inputs.interval_ns * 1.01,
                "t_max {} vs interval {}",
                p.t_max_ns,
                inputs.interval_ns
            );
        }
    }

    #[test]
    fn longer_intervals_never_reduce_batch_size(inputs in arb_inputs()) {
        let model = CostModel::new(HwSpec::kaveri_apu());
        let mut longer = inputs;
        longer.interval_ns = inputs.interval_ns * 2.0;
        let a = model.predict(PipelineConfig::mega_kv(), &inputs);
        let b = model.predict(PipelineConfig::mega_kv(), &longer);
        prop_assert!(b.batch_size >= a.batch_size);
    }

    #[test]
    fn optimal_dominates_every_enumerated_config(inputs in arb_inputs()) {
        let model = CostModel::new(HwSpec::kaveri_apu());
        let best = model.optimal_config(&inputs, ConfigEnumerator::default());
        for cfg in ConfigEnumerator::default().enumerate().into_iter().take(12) {
            let p = model.predict(cfg, &inputs);
            prop_assert!(
                best.throughput_mops() >= p.throughput_mops() - 1e-9,
                "optimal {} < {} under {}",
                best.throughput_mops(),
                p.throughput_mops(),
                cfg
            );
        }
    }

    #[test]
    fn skew_never_hurts_predicted_throughput(inputs in arb_inputs()) {
        // A hotter key distribution only adds cache hits in the model.
        let model = CostModel::new(HwSpec::kaveri_apu());
        let mut uniform = inputs;
        uniform.stats.zipf_skew = 0.0;
        let mut skewed = inputs;
        skewed.stats.zipf_skew = 0.99;
        let u = model.predict(PipelineConfig::mega_kv(), &uniform);
        let s = model.predict(PipelineConfig::mega_kv(), &skewed);
        prop_assert!(
            s.throughput_mops() >= u.throughput_mops() * 0.999,
            "skewed {} < uniform {}",
            s.throughput_mops(),
            u.throughput_mops()
        );
    }
}
