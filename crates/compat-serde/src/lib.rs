//! API-compatible subset of `serde`.
//!
//! Vendored because the build environment has no crates.io access (see
//! `crates/compat-*`). The workspace only writes
//! `use serde::{Deserialize, Serialize}` and `#[derive(...)]` — nothing
//! serializes a value — so this crate provides the two trait names and
//! re-exports the no-op derive macros under the same identifiers,
//! exactly like real serde's `derive` feature does.

/// Marker for types that can be serialized (shim: never implemented,
/// never required).
pub trait Serialize {}

/// Marker for types that can be deserialized (shim: never implemented,
/// never required).
pub trait Deserialize<'de>: Sized {}

/// Owned-deserialization alias, mirroring `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
