//! Property tests over the timing model: monotonicity, bounds, and
//! fixed-point sanity of the interference solver.

use dido_apu_sim::{GpuTiming, HwSpec, StageTiming, TimingEngine};
use dido_model::{Processor, ResourceUsage};
use proptest::prelude::*;

fn usage() -> impl Strategy<Value = ResourceUsage> {
    (0u64..10_000, 0u64..100, 0u64..100)
        .prop_map(|(i, m, c)| ResourceUsage::new(i, m, c))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn cpu_time_is_additive_and_monotone(a in usage(), b in usage()) {
        let e = TimingEngine::new(HwSpec::kaveri_apu());
        let ta = e.cpu_time_single_core(a);
        let tb = e.cpu_time_single_core(b);
        let tab = e.cpu_time_single_core(a + b);
        prop_assert!((tab - (ta + tb)).abs() < 1e-6, "Equation 1 must be linear");
        prop_assert!(ta >= 0.0 && tb >= 0.0);
    }

    #[test]
    fn more_cores_never_slower(u in usage(), c1 in 1usize..4, c2 in 1usize..4) {
        let e = TimingEngine::new(HwSpec::kaveri_apu());
        let (lo, hi) = (c1.min(c2), c1.max(c2));
        prop_assert!(e.cpu_stage_time(u, hi) <= e.cpu_stage_time(u, lo) + 1e-9);
    }

    #[test]
    fn gpu_kernel_time_monotone_in_items(u in usage(), n1 in 1usize..20_000, n2 in 1usize..20_000) {
        let hw = HwSpec::kaveri_apu();
        let g = GpuTiming::new(&hw.gpu);
        let (lo, hi) = (n1.min(n2), n1.max(n2));
        prop_assert!(g.kernel_time(hi, u) >= g.kernel_time(lo, u) - 1e-6);
    }

    #[test]
    fn atomic_kernels_never_faster_than_plain(u in usage(), n in 1usize..20_000) {
        let hw = HwSpec::kaveri_apu();
        let g = GpuTiming::new(&hw.gpu);
        prop_assert!(g.kernel_time_opts(n, u, true) >= g.kernel_time_opts(n, u, false) - 1e-6);
    }

    #[test]
    fn interference_bounded_and_order_preserving(
        t_cpu in 1_000.0f64..1_000_000.0,
        t_gpu in 1_000.0f64..1_000_000.0,
        mem_cpu in 0u64..5_000_000,
        mem_gpu in 0u64..5_000_000,
    ) {
        let hw = HwSpec::kaveri_apu();
        let e = TimingEngine::new(hw);
        let mut stages = vec![
            StageTiming::new(Processor::Cpu, t_cpu, mem_cpu),
            StageTiming::new(Processor::Gpu, t_gpu, mem_gpu),
        ];
        e.apply_interference(&mut stages);
        for s in &stages {
            // µ ∈ [1, 1 + k].
            prop_assert!(s.mu >= 1.0 - 1e-12);
            let k = match s.processor {
                Processor::Cpu => hw.mu_cpu_k,
                Processor::Gpu => hw.mu_gpu_k,
            };
            prop_assert!(s.mu <= 1.0 + k + 1e-12);
            prop_assert!(s.final_ns >= s.base_ns - 1e-9, "interference only slows");
        }
    }

    #[test]
    fn pcie_time_superadditive_in_transfers(a in 1u64..1_000_000, b in 1u64..1_000_000) {
        // Two transfers pay two setup costs: splitting is never cheaper.
        let p = dido_apu_sim::PcieModel::pcie3_x16();
        prop_assert!(p.transfer_time(a) + p.transfer_time(b) >= p.transfer_time(a + b) - 1e-9);
    }
}
