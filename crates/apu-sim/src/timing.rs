//! The timing engine: counted resource usage → virtual nanoseconds.

use crate::gpu::GpuTiming;
use crate::interference::InterferenceModel;
use crate::pcie::PcieModel;
use crate::spec::HwSpec;
use crate::Ns;
use dido_model::{Processor, ResourceUsage};

/// Timing input/output record for one pipeline stage during one batch.
///
/// `base_ns` is the stage's isolated execution time; after
/// [`TimingEngine::apply_interference`], `final_ns` holds the time
/// inflated by the µ factor from the other processor's concurrent
/// memory traffic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageTiming {
    /// Processor running this stage.
    pub processor: Processor,
    /// Isolated (interference-free) execution time.
    pub base_ns: Ns,
    /// Memory accesses the stage issues while running (its contribution
    /// to bus pressure).
    pub mem_accesses: u64,
    /// Execution time after interference; equals `base_ns` until
    /// [`TimingEngine::apply_interference`] runs.
    pub final_ns: Ns,
    /// The µ factor that was applied.
    pub mu: f64,
}

impl StageTiming {
    /// A stage record before interference is applied.
    #[must_use]
    pub fn new(processor: Processor, base_ns: Ns, mem_accesses: u64) -> StageTiming {
        StageTiming {
            processor,
            base_ns,
            mem_accesses,
            final_ns: base_ns,
            mu: 1.0,
        }
    }
}

/// Converts [`ResourceUsage`] into virtual time under a hardware spec.
#[derive(Debug, Clone)]
pub struct TimingEngine {
    hw: HwSpec,
    interference: InterferenceModel,
    pcie: Option<PcieModel>,
}

impl TimingEngine {
    /// Engine over a hardware profile. Discrete profiles get a PCIe
    /// model attached automatically.
    #[must_use]
    pub fn new(hw: HwSpec) -> TimingEngine {
        let pcie = if hw.coupled {
            None
        } else {
            Some(PcieModel::pcie3_x16())
        };
        TimingEngine {
            interference: InterferenceModel::new(&hw),
            hw,
            pcie,
        }
    }

    /// The hardware profile.
    #[must_use]
    pub fn hw(&self) -> &HwSpec {
        &self.hw
    }

    /// The PCIe model (discrete profiles only).
    #[must_use]
    pub fn pcie(&self) -> Option<&PcieModel> {
        self.pcie.as_ref()
    }

    /// The continuous interference law.
    #[must_use]
    pub fn interference(&self) -> &InterferenceModel {
        &self.interference
    }

    /// GPU timing calculator.
    #[must_use]
    pub fn gpu(&self) -> GpuTiming<'_> {
        GpuTiming::new(&self.hw.gpu)
    }

    /// Paper Equation 1 on one CPU core:
    /// `T = I/IPC + N_M·L_M + N_C·L_C` (usage is already the total over
    /// the batch, so the leading `N ·` is folded in).
    #[must_use]
    pub fn cpu_time_single_core(&self, usage: ResourceUsage) -> Ns {
        let c = &self.hw.cpu;
        usage.instructions as f64 / (c.ipc * c.freq_ghz)
            + usage.mem_accesses as f64 * c.mem_latency_ns
            + usage.cache_accesses as f64 * c.l2_latency_ns
    }

    /// CPU stage time: queries in a batch are independent, so a stage's
    /// work divides across its assigned cores.
    ///
    /// # Panics
    /// Panics if `cores == 0`.
    #[must_use]
    pub fn cpu_stage_time(&self, usage: ResourceUsage, cores: usize) -> Ns {
        assert!(cores > 0, "a CPU stage needs at least one core");
        self.cpu_time_single_core(usage) / cores as f64
    }

    /// Apply mutual CPU/GPU interference to a set of concurrently
    /// running stages (the steady-state pipeline: every stage processes
    /// a different batch during the same interval).
    ///
    /// Solves the fixed point: each processor's access *rate* is its
    /// total accesses over the bottleneck interval; each stage's time is
    /// `base × µ(victim, other side's rate)`; the interval is the max
    /// stage time. A handful of iterations converges (µ is bounded and
    /// monotone).
    pub fn apply_interference(&self, stages: &mut [StageTiming]) {
        if stages.is_empty() {
            return;
        }
        // Start from isolated times.
        for s in stages.iter_mut() {
            s.final_ns = s.base_ns;
            s.mu = 1.0;
        }
        for _ in 0..8 {
            let t_max = stages
                .iter()
                .map(|s| s.final_ns)
                .fold(0.0_f64, f64::max)
                .max(1.0);
            let rate_of = |p: Processor| {
                stages
                    .iter()
                    .filter(|s| s.processor == p)
                    .map(|s| s.mem_accesses as f64)
                    .sum::<f64>()
                    / t_max
            };
            let cpu_rate = rate_of(Processor::Cpu);
            let gpu_rate = rate_of(Processor::Gpu);
            for s in stages.iter_mut() {
                let mu = match s.processor {
                    Processor::Cpu => self.interference.mu_cpu(gpu_rate),
                    Processor::Gpu => self.interference.mu_gpu(cpu_rate),
                };
                s.mu = mu;
                s.final_ns = s.base_ns * mu;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> TimingEngine {
        TimingEngine::new(HwSpec::kaveri_apu())
    }

    #[test]
    fn equation1_components_add_up() {
        let e = engine();
        let c = e.hw().cpu;
        let t = e.cpu_time_single_core(ResourceUsage::new(74, 3, 2));
        let expect =
            74.0 / (c.ipc * c.freq_ghz) + 3.0 * c.mem_latency_ns + 2.0 * c.l2_latency_ns;
        assert!((t - expect).abs() < 1e-9);
    }

    #[test]
    fn cores_divide_stage_time() {
        let e = engine();
        let u = ResourceUsage::new(1000, 100, 50);
        let t1 = e.cpu_stage_time(u, 1);
        let t4 = e.cpu_stage_time(u, 4);
        assert!((t1 / t4 - 4.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_panics() {
        let _ = engine().cpu_stage_time(ResourceUsage::ZERO, 0);
    }

    #[test]
    fn coupled_has_no_pcie_discrete_does() {
        assert!(TimingEngine::new(HwSpec::kaveri_apu()).pcie().is_none());
        assert!(TimingEngine::new(HwSpec::discrete_gtx780()).pcie().is_some());
    }

    #[test]
    fn interference_inflates_both_sides() {
        let e = engine();
        // Heavy traffic on both processors over a short window.
        let mut stages = vec![
            StageTiming::new(Processor::Cpu, 100_000.0, 2_000_000),
            StageTiming::new(Processor::Gpu, 90_000.0, 2_000_000),
        ];
        e.apply_interference(&mut stages);
        assert!(stages[0].mu > 1.0, "CPU should feel GPU traffic");
        assert!(stages[1].mu > 1.0, "GPU should feel CPU traffic");
        assert!(stages[0].final_ns > stages[0].base_ns);
        // Asymmetry: CPU suffers more from the same traffic.
        assert!(stages[0].mu > stages[1].mu);
    }

    #[test]
    fn no_cross_traffic_no_inflation() {
        let e = engine();
        let mut stages = vec![
            StageTiming::new(Processor::Cpu, 100_000.0, 1_000_000),
            StageTiming::new(Processor::Cpu, 50_000.0, 500_000),
        ];
        e.apply_interference(&mut stages);
        assert_eq!(stages[0].mu, 1.0);
        assert_eq!(stages[0].final_ns, stages[0].base_ns);
    }

    #[test]
    fn light_traffic_barely_interferes() {
        let e = engine();
        let mut stages = vec![
            StageTiming::new(Processor::Cpu, 300_000.0, 10),
            StageTiming::new(Processor::Gpu, 300_000.0, 10),
        ];
        e.apply_interference(&mut stages);
        assert!(stages[0].mu < 1.001);
        assert!(stages[1].mu < 1.001);
    }

    #[test]
    fn interference_is_idempotent_across_calls() {
        let e = engine();
        let mk = || {
            vec![
                StageTiming::new(Processor::Cpu, 120_000.0, 800_000),
                StageTiming::new(Processor::Gpu, 100_000.0, 900_000),
            ]
        };
        let mut a = mk();
        e.apply_interference(&mut a);
        let mut b = a.clone();
        e.apply_interference(&mut b);
        for (x, y) in a.iter().zip(&b) {
            assert!((x.final_ns - y.final_ns).abs() < 1e-6);
        }
    }

    #[test]
    fn empty_stage_list_is_fine() {
        engine().apply_interference(&mut []);
    }
}
