//! Functional + timing simulator of a coupled CPU-GPU (APU) chip.
//!
//! The DIDO paper evaluates on an AMD A10-7850K Kaveri APU: four CPU
//! cores and eight GPU compute units sharing one physical memory with
//! cache coherency (hUMA). This crate substitutes for that hardware.
//! Task code in `dido-pipeline` executes *for real* on the host and
//! counts its resource usage ([`dido_model::ResourceUsage`]); this crate
//! converts counted usage into **virtual nanoseconds** under a calibrated
//! hardware model:
//!
//! * **CPU** time follows the paper's Equation 1 literally:
//!   `T = N · (I/IPC + N_M·L_M + N_C·L_C)`, divided over the cores
//!   assigned to a stage.
//! * **GPU** time uses a wavefront/occupancy model: work executes in
//!   waves of `lanes × CUs` items, memory latency is hidden by the
//!   memory-level parallelism the resident wavefronts supply, and small
//!   batches therefore get poor hiding — the effect behind the paper's
//!   Figure 6 (5 % Insert/Delete consuming up to 56 % of GPU time).
//! * **Interference** between the two processors sharing the memory bus
//!   is modelled by the paper's factor `µ_{N_C,N_G}`
//!   ([`InterferenceModel`]), with a microbenchmark-built lookup table
//!   ([`InterferenceTable`]) like the paper uses for its cost model.
//! * A **discrete profile** ([`HwSpec::discrete_gtx780`]) models the
//!   Mega-KV (Discrete) testbed — two server CPUs plus two big discrete
//!   GPUs behind a [PCIe link](PcieModel) — for the Figure 16–18
//!   comparisons.
//!
//! All times are `f64` nanoseconds of *virtual* time; nothing here
//! depends on wall-clock time, so simulations are deterministic.

#![warn(missing_docs)]

mod energy;
mod gpu;
mod interference;
mod pcie;
mod spec;
mod timing;

pub use energy::EnergyModel;
pub use gpu::GpuTiming;
pub use interference::{InterferenceModel, InterferenceTable};
pub use pcie::PcieModel;
pub use spec::{CpuSpec, GpuSpec, HwSpec, MemorySpec, PlatformCosts};
pub use timing::{StageTiming, TimingEngine};

/// Virtual time in nanoseconds.
pub type Ns = f64;

/// Nanoseconds → microseconds, for readable experiment output.
#[must_use]
pub fn ns_to_us(ns: Ns) -> f64 {
    ns / 1_000.0
}
