//! Hardware specifications: the Kaveri APU profile and the discrete
//! Mega-KV testbed profile.

use serde::{Deserialize, Serialize};

/// CPU-side hardware parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpuSpec {
    /// Number of cores available to pipeline stages.
    pub cores: usize,
    /// Core frequency in GHz (cycles per nanosecond).
    pub freq_ghz: f64,
    /// Peak sustained instructions per cycle per core.
    pub ipc: f64,
    /// Random (cache-missing) memory access latency, ns. The paper's
    /// Equation 1 charges this serially per access (`L_M^{XPU}`).
    pub mem_latency_ns: f64,
    /// L2 cache access latency, ns (`L_C^{XPU}`).
    pub l2_latency_ns: f64,
    /// Last-level cache capacity in bytes (used for the skewed-key hot
    /// set: the "most frequently visited key-value objects are cached by
    /// the CPU", paper §IV-B).
    pub cache_bytes: u64,
    /// Cache line size in bytes (`C^{XPU}` in the paper's key-value
    /// object access-cost estimate).
    pub cache_line: u64,
}

/// GPU-side hardware parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpuSpec {
    /// Compute units (Kaveri: 8).
    pub compute_units: usize,
    /// Lanes (shaders) per compute unit — the wavefront width (64).
    pub lanes_per_cu: usize,
    /// Shader frequency in GHz.
    pub freq_ghz: f64,
    /// Peak instructions per cycle per lane.
    pub ipc: f64,
    /// Random memory access latency as seen from the GPU, ns. Higher
    /// than the CPU's: the integrated GPU's path to DRAM is longer, and
    /// it has no large cache in front.
    pub mem_latency_ns: f64,
    /// GPU L2 access latency, ns.
    pub l2_latency_ns: f64,
    /// GPU cache capacity in bytes (small compared to the CPU's, so
    /// skewed workloads benefit much less when hot tasks run GPU-side).
    pub cache_bytes: u64,
    /// Maximum memory-level parallelism: outstanding random accesses the
    /// GPU memory system sustains at full occupancy. This is what lets a
    /// well-fed GPU hide memory latency (paper §II-A).
    pub max_mlp: f64,
    /// Minimum effective MLP even at one resident wavefront (the lanes
    /// of a single wavefront still issue some accesses concurrently).
    pub min_mlp: f64,
    /// Memory-level parallelism cap for *atomic* (CAS/read-modify-write)
    /// traffic: atomics serialize at the memory controller and cannot be
    /// latency-hidden like plain loads, which is why small Insert/Delete
    /// kernels stay expensive even in large batches (Figure 6).
    pub atomic_mlp: f64,
    /// Number of in-flight items that saturate occupancy. Batches
    /// smaller than this get proportionally less latency hiding — the
    /// root cause of the paper's Figure 6.
    pub saturation_items: f64,
    /// Fixed cost of launching one kernel, ns (OpenCL enqueue + schedule;
    /// a few microseconds on the APU).
    pub kernel_launch_ns: f64,
    /// Memory bandwidth available to GPU kernels, bytes/ns (the shared
    /// DDR3 bus on the APU; the cards' own GDDR5 on the discrete
    /// profile). Streaming kernels (bulk value reads) bottleneck here
    /// long before the latency/MLP limit — the reason the paper's DIDO
    /// keeps RD on the CPU for large key-value sizes (§V-C).
    pub mem_bandwidth_gbps: f64,
}

impl GpuSpec {
    /// Items processed per wave (`lanes × CUs`).
    #[must_use]
    pub fn wave_items(&self) -> usize {
        self.compute_units * self.lanes_per_cu
    }
}

/// Shared-memory parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemorySpec {
    /// Peak memory bus bandwidth, bytes per nanosecond (GB/s numerically).
    pub bandwidth_gbps: f64,
    /// Shared CPU+GPU memory capacity available for key-value data,
    /// bytes. The paper's APU could allocate 1,908 MB of shared memory
    /// (§V-A).
    pub shared_bytes: u64,
}

/// Price and power constants for the Figure 17/18 comparisons.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlatformCosts {
    /// Processor price in USD.
    pub price_usd: f64,
    /// Thermal design power in watts.
    pub tdp_watts: f64,
}

/// A complete hardware profile.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HwSpec {
    /// CPU parameters.
    pub cpu: CpuSpec,
    /// GPU parameters.
    pub gpu: GpuSpec,
    /// Memory parameters.
    pub mem: MemorySpec,
    /// Price/power constants.
    pub costs: PlatformCosts,
    /// Whether CPU and GPU share one address space (coupled/hUMA) or the
    /// GPU sits behind PCIe (discrete).
    pub coupled: bool,
    /// Interference couplings: how strongly the GPU's memory traffic
    /// slows the CPU (`mu_cpu_k`) and vice versa (`mu_gpu_k`). The paper
    /// (citing Kayiran et al.) notes GPUs impact CPUs more than the
    /// reverse, so `mu_cpu_k > mu_gpu_k` on the coupled profile; a
    /// discrete GPU has its own memory, so both are 0 there.
    pub mu_cpu_k: f64,
    /// See `mu_cpu_k`.
    pub mu_gpu_k: f64,
}

impl HwSpec {
    /// The AMD A10-7850K Kaveri APU profile (paper §V-A): 4 CPU cores at
    /// 3.7 GHz, 8 GPU CUs × 64 lanes at 720 MHz, 1333 MHz dual-channel
    /// DDR3, 1,908 MB of CPU/GPU shared memory, 95 W TDP, ~152 USD.
    #[must_use]
    pub fn kaveri_apu() -> HwSpec {
        HwSpec {
            cpu: CpuSpec {
                cores: 4,
                freq_ghz: 3.7,
                ipc: 2.0,
                mem_latency_ns: 80.0,
                l2_latency_ns: 5.0,
                cache_bytes: 4 * 1024 * 1024,
                cache_line: 64,
            },
            gpu: GpuSpec {
                compute_units: 8,
                lanes_per_cu: 64,
                freq_ghz: 0.72,
                ipc: 1.0,
                mem_latency_ns: 500.0,
                l2_latency_ns: 30.0,
                cache_bytes: 512 * 1024,
                max_mlp: 64.0,
                min_mlp: 8.0,
                atomic_mlp: 12.0,
                saturation_items: 4096.0,
                kernel_launch_ns: 8_000.0,
                mem_bandwidth_gbps: 21.3,
            },
            mem: MemorySpec {
                bandwidth_gbps: 21.3,
                shared_bytes: 1_908 * 1024 * 1024,
            },
            costs: PlatformCosts {
                price_usd: 152.0,
                tdp_watts: 95.0,
            },
            coupled: true,
            mu_cpu_k: 0.35,
            mu_gpu_k: 0.15,
        }
    }

    /// The Mega-KV (Discrete) testbed profile (paper §V-E): two Intel
    /// E5-2650 v2 CPUs (8 cores each, 2.6 GHz) and two NVIDIA GeForce
    /// GTX 780 GPUs (12 SMX, GDDR5) connected over PCIe 3.0. Aggregated
    /// into one spec: core counts and GPU width doubled, memory
    /// bandwidth is the GPUs' own GDDR5. Price ≈ 25× the APU
    /// (2×1,166 + 2×649 ≈ 3,630 USD); TDP 2×95 + 2×250 = 690 W.
    #[must_use]
    pub fn discrete_gtx780() -> HwSpec {
        HwSpec {
            cpu: CpuSpec {
                cores: 16,
                freq_ghz: 2.6,
                ipc: 2.5,
                mem_latency_ns: 90.0,
                l2_latency_ns: 4.0,
                cache_bytes: 2 * 20 * 1024 * 1024,
                cache_line: 64,
            },
            gpu: GpuSpec {
                // 2 × 12 SMX, modelled as wavefront-width lanes per unit.
                compute_units: 24,
                lanes_per_cu: 64,
                freq_ghz: 0.9,
                ipc: 2.0,
                mem_latency_ns: 350.0,
                l2_latency_ns: 20.0,
                cache_bytes: 2 * 1536 * 1024,
                max_mlp: 512.0,
                min_mlp: 16.0,
                atomic_mlp: 48.0,
                saturation_items: 24576.0,
                kernel_launch_ns: 10_000.0,
                mem_bandwidth_gbps: 2.0 * 288.0,
            },
            mem: MemorySpec {
                // GDDR5 on the cards; host DDR3 is not the index
                // bottleneck in Mega-KV (Discrete).
                bandwidth_gbps: 2.0 * 288.0,
                shared_bytes: 2 * 3 * 1024 * 1024 * 1024,
            },
            costs: PlatformCosts {
                price_usd: 3_630.0,
                tdp_watts: 690.0,
            },
            coupled: false,
            mu_cpu_k: 0.0,
            mu_gpu_k: 0.0,
        }
    }

    /// Peak random cache-line accesses per nanosecond the memory bus
    /// sustains (bandwidth divided by line size).
    #[must_use]
    pub fn bus_peak_access_rate(&self) -> f64 {
        self.mem.bandwidth_gbps / self.cpu.cache_line as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kaveri_matches_paper_headline_numbers() {
        let hw = HwSpec::kaveri_apu();
        assert_eq!(hw.cpu.cores, 4);
        assert_eq!(hw.gpu.compute_units, 8);
        assert_eq!(hw.gpu.lanes_per_cu, 64);
        assert!((hw.cpu.freq_ghz - 3.7).abs() < 1e-9);
        assert!((hw.gpu.freq_ghz - 0.72).abs() < 1e-9);
        assert_eq!(hw.mem.shared_bytes, 1_908 * 1024 * 1024);
        assert!(hw.coupled);
        assert!((hw.costs.tdp_watts - 95.0).abs() < 1e-9);
    }

    #[test]
    fn discrete_is_pricier_and_hotter() {
        let apu = HwSpec::kaveri_apu();
        let disc = HwSpec::discrete_gtx780();
        assert!(!disc.coupled);
        let price_ratio = disc.costs.price_usd / apu.costs.price_usd;
        assert!(
            (20.0..30.0).contains(&price_ratio),
            "paper: discrete processors ~25x the APU price, got {price_ratio:.1}"
        );
        assert!(disc.costs.tdp_watts > 6.0 * apu.costs.tdp_watts);
        assert_eq!(disc.mu_cpu_k, 0.0, "discrete GPUs have their own memory");
    }

    #[test]
    fn gpu_wave_items() {
        assert_eq!(HwSpec::kaveri_apu().gpu.wave_items(), 512);
    }

    #[test]
    fn interference_asymmetry() {
        let hw = HwSpec::kaveri_apu();
        assert!(
            hw.mu_cpu_k > hw.mu_gpu_k,
            "GPUs impact CPUs more than the reverse (Kayiran et al.)"
        );
    }

    #[test]
    fn bus_rate_is_positive() {
        assert!(HwSpec::kaveri_apu().bus_peak_access_rate() > 0.1);
    }
}
