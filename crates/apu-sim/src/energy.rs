//! Energy estimation.
//!
//! The paper's Figure 18 divides throughput by TDP — a worst-case
//! power assumption. This model refines it: a chip at partial
//! utilization draws its idle floor plus a dynamic share proportional
//! to how busy it is, which is how modern power management actually
//! behaves and what the ablation-style "util-scaled" energy column
//! reports.

use crate::spec::HwSpec;
use serde::{Deserialize, Serialize};

/// Utilization-aware power model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Thermal design power, watts.
    pub tdp_watts: f64,
    /// Fraction of TDP drawn at idle (package power floor).
    pub idle_fraction: f64,
}

impl EnergyModel {
    /// Model for a hardware profile with a typical 30 % idle floor.
    #[must_use]
    pub fn for_hw(hw: &HwSpec) -> EnergyModel {
        EnergyModel {
            tdp_watts: hw.costs.tdp_watts,
            idle_fraction: 0.3,
        }
    }

    /// Estimated package power at the given CPU/GPU utilizations
    /// (each in `[0, 1]`), weighting the two sides by their share of
    /// TDP (CPU and GPU are assumed to split the budget evenly on the
    /// APU; the discrete profile's TDP already sums both devices).
    #[must_use]
    pub fn power_watts(&self, cpu_util: f64, gpu_util: f64) -> f64 {
        let cpu_util = cpu_util.clamp(0.0, 1.0);
        let gpu_util = gpu_util.clamp(0.0, 1.0);
        let dynamic = 0.5 * (cpu_util + gpu_util);
        self.tdp_watts * (self.idle_fraction + (1.0 - self.idle_fraction) * dynamic)
    }

    /// Throughput per watt: `KOPS/W` for a given MOPS throughput and
    /// utilization pair.
    #[must_use]
    pub fn kops_per_watt(&self, throughput_mops: f64, cpu_util: f64, gpu_util: f64) -> f64 {
        let p = self.power_watts(cpu_util, gpu_util);
        if p <= 0.0 {
            return 0.0;
        }
        throughput_mops * 1_000.0 / p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> EnergyModel {
        EnergyModel {
            tdp_watts: 100.0,
            idle_fraction: 0.3,
        }
    }

    #[test]
    fn idle_draws_the_floor_and_full_load_draws_tdp() {
        let m = model();
        assert!((m.power_watts(0.0, 0.0) - 30.0).abs() < 1e-9);
        assert!((m.power_watts(1.0, 1.0) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn power_is_monotone_in_utilization() {
        let m = model();
        assert!(m.power_watts(0.8, 0.2) > m.power_watts(0.4, 0.2));
        assert!(m.power_watts(0.4, 0.9) > m.power_watts(0.4, 0.2));
    }

    #[test]
    fn utilization_clamps() {
        let m = model();
        assert_eq!(m.power_watts(2.0, 2.0), m.power_watts(1.0, 1.0));
        assert_eq!(m.power_watts(-1.0, 0.0), m.power_watts(0.0, 0.0));
    }

    #[test]
    fn efficiency_favours_busy_chips() {
        // Same throughput at lower utilization means the idle floor is
        // amortized worse — a half-idle chip is less efficient per op
        // than a busy one delivering proportionally more.
        let m = model();
        let busy = m.kops_per_watt(10.0, 1.0, 1.0);
        let half = m.kops_per_watt(5.0, 0.5, 0.5);
        assert!(busy > half);
    }

    #[test]
    fn for_hw_uses_profile_tdp() {
        let apu = EnergyModel::for_hw(&HwSpec::kaveri_apu());
        assert!((apu.tdp_watts - 95.0).abs() < 1e-9);
        let disc = EnergyModel::for_hw(&HwSpec::discrete_gtx780());
        assert!(disc.tdp_watts > 600.0);
    }
}
