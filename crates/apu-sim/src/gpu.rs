//! GPU wavefront/occupancy timing.
//!
//! GPUs are throughput processors: they hide memory latency by keeping
//! many wavefronts resident, so their efficiency depends strongly on how
//! much work a kernel launch carries. This module captures that with a
//! simple, auditable model:
//!
//! * **Compute** executes in waves of `lanes × CUs` items; a partially
//!   filled wavefront still occupies its full width (lane quantization).
//! * **Memory** accesses are serviced concurrently up to the effective
//!   memory-level parallelism (MLP), which scales with occupancy:
//!   `MLP(n) = clamp(max_mlp · n / saturation_items, min_mlp, max_mlp)`.
//!   A batch of a few hundred items gets `min_mlp`-ish hiding and is
//!   therefore drastically less efficient per item than a saturated
//!   batch — the paper's Figure 6 phenomenon, where the 5 % of
//!   Insert/Delete operations consume up to 56 % of GPU execution time.
//! * Every kernel launch pays a fixed overhead.

use crate::spec::GpuSpec;
use crate::Ns;
use dido_model::ResourceUsage;

/// GPU timing calculator for a given GPU spec.
#[derive(Debug, Clone, Copy)]
pub struct GpuTiming<'a> {
    spec: &'a GpuSpec,
}

impl<'a> GpuTiming<'a> {
    /// Create a calculator over `spec`.
    #[must_use]
    pub fn new(spec: &'a GpuSpec) -> GpuTiming<'a> {
        GpuTiming { spec }
    }

    /// Effective memory-level parallelism for a kernel over `n` items.
    #[must_use]
    pub fn effective_mlp(&self, n: usize) -> f64 {
        let s = self.spec;
        let occupancy = n as f64 / s.saturation_items;
        (s.max_mlp * occupancy).clamp(s.min_mlp, s.max_mlp)
    }

    /// Effective MLP for a kernel dominated by *atomic* accesses
    /// (Insert/Delete kernels use compare-exchange, §III-B-2): capped at
    /// the atomic serialization limit regardless of occupancy.
    #[must_use]
    pub fn effective_mlp_atomic(&self, n: usize) -> f64 {
        self.effective_mlp(n).min(self.spec.atomic_mlp)
    }

    /// Occupancy fraction in `[0, 1]` (used for utilization reporting).
    #[must_use]
    pub fn occupancy(&self, n: usize) -> f64 {
        (n as f64 / self.spec.saturation_items).min(1.0)
    }

    /// Time for one kernel that processes `n` items, each consuming
    /// `per_item` resources. Returns 0 for `n == 0` (no launch).
    #[must_use]
    pub fn kernel_time(&self, n: usize, per_item: ResourceUsage) -> Ns {
        self.kernel_time_opts(n, per_item, false)
    }

    /// [`GpuTiming::kernel_time`] with an atomics flag: atomic-dominated
    /// kernels (index Insert/Delete) are capped at the atomic MLP.
    #[must_use]
    pub fn kernel_time_opts(&self, n: usize, per_item: ResourceUsage, atomic: bool) -> Ns {
        if n == 0 {
            return 0.0;
        }
        self.kernel_time_aggregate_opts(n, per_item.scaled(n as u64), atomic)
    }

    /// Time for a kernel expressed as an aggregate (already-summed)
    /// usage over `n` items. Used by the functional executor, which
    /// counts exact totals rather than uniform per-item costs.
    #[must_use]
    pub fn kernel_time_aggregate(&self, n: usize, total: ResourceUsage) -> Ns {
        self.kernel_time_aggregate_opts(n, total, false)
    }

    /// [`GpuTiming::kernel_time_aggregate`] with an atomics flag.
    #[must_use]
    pub fn kernel_time_aggregate_opts(
        &self,
        n: usize,
        total: ResourceUsage,
        atomic: bool,
    ) -> Ns {
        if n == 0 {
            return 0.0;
        }
        let s = self.spec;
        let lanes = s.lanes_per_cu;
        let items_padded = n.div_ceil(lanes) * lanes;
        let waves = items_padded.div_ceil(s.wave_items()).max(1) as f64;
        // Per-item instruction cost approximated by the mean.
        let insn_per_item = total.instructions as f64 / n as f64;
        let compute_ns = waves * (insn_per_item / s.ipc) / s.freq_ghz;
        let mlp = if atomic {
            self.effective_mlp_atomic(n)
        } else {
            self.effective_mlp(n)
        };
        let mem_ns = total.mem_accesses as f64 * s.mem_latency_ns / mlp;
        let cache_ns = total.cache_accesses as f64 * s.l2_latency_ns / mlp;
        // Bandwidth floor: every counted access moves a cache line over
        // the memory system; bulk-data kernels hit this wall before the
        // latency/MLP limit.
        let bw_ns = total.total_accesses() as f64 * 64.0 / s.mem_bandwidth_gbps;
        s.kernel_launch_ns + compute_ns + (mem_ns + cache_ns).max(bw_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::HwSpec;

    fn gpu() -> GpuSpec {
        HwSpec::kaveri_apu().gpu
    }

    #[test]
    fn zero_items_cost_nothing() {
        let g = gpu();
        let t = GpuTiming::new(&g);
        assert_eq!(t.kernel_time(0, ResourceUsage::new(100, 10, 0)), 0.0);
        assert_eq!(t.kernel_time_aggregate(0, ResourceUsage::new(100, 10, 0)), 0.0);
    }

    #[test]
    fn mlp_clamps_and_grows() {
        let g = gpu();
        let t = GpuTiming::new(&g);
        assert_eq!(t.effective_mlp(1), g.min_mlp);
        assert_eq!(t.effective_mlp(100_000), g.max_mlp);
        let mid = t.effective_mlp(2048);
        assert!(mid > g.min_mlp && mid < g.max_mlp);
        assert!(t.effective_mlp(3000) > t.effective_mlp(1000));
    }

    #[test]
    fn small_batches_are_much_less_efficient_per_item() {
        // The Figure 6 driver: per-item cost at n=250 must be several
        // times the per-item cost at n=5000.
        let g = gpu();
        let t = GpuTiming::new(&g);
        let per_item = ResourceUsage::new(60, 2, 0);
        let small = t.kernel_time(250, per_item) / 250.0;
        let large = t.kernel_time(5_000, per_item) / 5_000.0;
        assert!(
            small > 4.0 * large,
            "small-batch per-item {small:.1}ns vs large-batch {large:.1}ns"
        );
    }

    #[test]
    fn launch_overhead_charged_once() {
        let g = gpu();
        let t = GpuTiming::new(&g);
        let one = t.kernel_time(1, ResourceUsage::ZERO);
        assert!((one - g.kernel_launch_ns).abs() / g.kernel_launch_ns < 0.5);
    }

    #[test]
    fn time_monotonic_in_items() {
        let g = gpu();
        let t = GpuTiming::new(&g);
        let u = ResourceUsage::new(40, 3, 1);
        let mut prev = 0.0;
        for n in [1usize, 64, 512, 1024, 4096, 16384] {
            let cur = t.kernel_time(n, u);
            assert!(cur >= prev, "time must not decrease with items");
            prev = cur;
        }
    }

    #[test]
    fn atomic_kernels_lose_latency_hiding_at_scale() {
        let g = gpu();
        let t = GpuTiming::new(&g);
        let per_item = ResourceUsage::new(60, 2, 0);
        // Saturated batch: atomic kernels must be several times slower.
        let plain = t.kernel_time_opts(8192, per_item, false);
        let atomic = t.kernel_time_opts(8192, per_item, true);
        assert!(
            atomic > 3.0 * plain,
            "atomic {atomic:.0}ns vs plain {plain:.0}ns"
        );
        // Tiny batch: both are min-MLP bound, so similar.
        let plain = t.kernel_time_opts(64, per_item, false);
        let atomic = t.kernel_time_opts(64, per_item, true);
        assert!(atomic <= plain * 1.6);
    }

    #[test]
    fn aggregate_matches_uniform_per_item() {
        let g = gpu();
        let t = GpuTiming::new(&g);
        let per_item = ResourceUsage::new(50, 2, 1);
        let n = 3000;
        let a = t.kernel_time(n, per_item);
        let b = t.kernel_time_aggregate(n, per_item.scaled(n as u64));
        assert!((a - b).abs() < 1e-6 * a.max(1.0), "{a} vs {b}");
    }

    #[test]
    fn streaming_kernels_are_bandwidth_bound() {
        // A kernel hauling 16 lines per item (1 KB values) must be
        // priced at bus bandwidth, not at L2-hit latency over MLP.
        let g = gpu();
        let t = GpuTiming::new(&g);
        let per_item = ResourceUsage::new(128, 1, 16);
        let n = 8192;
        let time = t.kernel_time(n, per_item);
        let bytes = (n as f64) * 17.0 * 64.0;
        let bus_floor = bytes / g.mem_bandwidth_gbps;
        assert!(
            time >= bus_floor * 0.99,
            "kernel {time:.0}ns cannot beat the bus floor {bus_floor:.0}ns"
        );
    }

    #[test]
    fn occupancy_saturates() {
        let g = gpu();
        let t = GpuTiming::new(&g);
        assert!(t.occupancy(100) < 0.1);
        assert_eq!(t.occupancy(1 << 20), 1.0);
    }
}
