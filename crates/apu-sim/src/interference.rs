//! CPU↔GPU performance interference on the shared memory bus.
//!
//! On a coupled architecture the two processors compete for one memory
//! system; the paper models this with a factor `µ^{XPU}_{N_C,N_G}` —
//! "performance interference to the XPU with N_C memory accesses on the
//! CPU and N_G memory accesses on the GPU" — measured by a
//! microbenchmark (§IV-A). We provide both:
//!
//! * [`InterferenceModel`]: the continuous law the *simulator* applies,
//!   `µ = 1 + k · min(1, other_rate / bus_peak_rate)`, asymmetric
//!   (GPU traffic hurts the CPU more than the reverse, after Kayiran et
//!   al., cited by the paper).
//! * [`InterferenceTable`]: a quantized lookup table built by running a
//!   grid of synthetic access-rate pairs through the model — exactly the
//!   microbenchmark-then-table approach the paper's cost model uses. The
//!   quantization is a deliberate source of cost-model error relative to
//!   the simulator (Figure 9).

use crate::spec::HwSpec;
use dido_model::Processor;
use serde::{Deserialize, Serialize};

/// Continuous interference law.
#[derive(Debug, Clone, Copy)]
pub struct InterferenceModel {
    bus_peak_rate: f64,
    mu_cpu_k: f64,
    mu_gpu_k: f64,
}

impl InterferenceModel {
    /// Build from a hardware spec.
    #[must_use]
    pub fn new(hw: &HwSpec) -> InterferenceModel {
        InterferenceModel {
            bus_peak_rate: hw.bus_peak_access_rate(),
            mu_cpu_k: hw.mu_cpu_k,
            mu_gpu_k: hw.mu_gpu_k,
        }
    }

    /// Slowdown factor for `victim` given the *other* processor's memory
    /// access rate (accesses per nanosecond) during overlapped execution.
    #[must_use]
    pub fn mu(&self, victim: Processor, other_rate: f64) -> f64 {
        let k = match victim {
            Processor::Cpu => self.mu_cpu_k,
            Processor::Gpu => self.mu_gpu_k,
        };
        1.0 + k * (other_rate / self.bus_peak_rate).clamp(0.0, 1.0)
    }

    /// Convenience: µ for the CPU given CPU/GPU access rates (the CPU is
    /// the victim of GPU traffic).
    #[must_use]
    pub fn mu_cpu(&self, gpu_rate: f64) -> f64 {
        self.mu(Processor::Cpu, gpu_rate)
    }

    /// Convenience: µ for the GPU given CPU traffic.
    #[must_use]
    pub fn mu_gpu(&self, cpu_rate: f64) -> f64 {
        self.mu(Processor::Gpu, cpu_rate)
    }
}

/// Microbenchmark-built µ lookup table (what the cost model consults).
///
/// Rates are quantized to `buckets` steps of the bus peak rate in each
/// dimension; lookups round to the nearest grid point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InterferenceTable {
    buckets: usize,
    bus_peak_rate: f64,
    cpu_mu: Vec<f64>,
    gpu_mu: Vec<f64>,
}

impl InterferenceTable {
    /// Run the µ microbenchmark over a `buckets × buckets` grid of
    /// (CPU rate, GPU rate) pairs.
    #[must_use]
    pub fn measure(hw: &HwSpec, buckets: usize) -> InterferenceTable {
        assert!(buckets >= 2, "need at least two grid points");
        let model = InterferenceModel::new(hw);
        let peak = hw.bus_peak_access_rate();
        let mut cpu_mu = Vec::with_capacity(buckets);
        let mut gpu_mu = Vec::with_capacity(buckets);
        for i in 0..buckets {
            // Grid point i represents the other processor generating
            // i/(buckets-1) of the peak rate.
            let other_rate = peak * i as f64 / (buckets - 1) as f64;
            cpu_mu.push(model.mu_cpu(other_rate));
            gpu_mu.push(model.mu_gpu(other_rate));
        }
        InterferenceTable {
            buckets,
            bus_peak_rate: peak,
            cpu_mu,
            gpu_mu,
        }
    }

    fn bucket(&self, rate: f64) -> usize {
        let frac = (rate / self.bus_peak_rate).clamp(0.0, 1.0);
        (frac * (self.buckets - 1) as f64).round() as usize
    }

    /// Table lookup of µ for `victim` under the other processor's rate.
    #[must_use]
    pub fn mu(&self, victim: Processor, other_rate: f64) -> f64 {
        let idx = self.bucket(other_rate);
        match victim {
            Processor::Cpu => self.cpu_mu[idx],
            Processor::Gpu => self.gpu_mu[idx],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hw() -> HwSpec {
        HwSpec::kaveri_apu()
    }

    #[test]
    fn no_traffic_no_interference() {
        let m = InterferenceModel::new(&hw());
        assert_eq!(m.mu_cpu(0.0), 1.0);
        assert_eq!(m.mu_gpu(0.0), 1.0);
    }

    #[test]
    fn mu_grows_with_other_rate_and_saturates() {
        let m = InterferenceModel::new(&hw());
        let peak = hw().bus_peak_access_rate();
        assert!(m.mu_cpu(peak / 2.0) > m.mu_cpu(peak / 4.0));
        assert_eq!(m.mu_cpu(peak), m.mu_cpu(peak * 10.0));
        assert!((m.mu_cpu(peak) - (1.0 + hw().mu_cpu_k)).abs() < 1e-12);
    }

    #[test]
    fn gpu_hurts_cpu_more_than_reverse() {
        let m = InterferenceModel::new(&hw());
        let r = hw().bus_peak_access_rate() / 2.0;
        assert!(m.mu_cpu(r) > m.mu_gpu(r));
    }

    #[test]
    fn discrete_profile_has_no_interference() {
        let m = InterferenceModel::new(&HwSpec::discrete_gtx780());
        let r = 1.0;
        assert_eq!(m.mu_cpu(r), 1.0);
        assert_eq!(m.mu_gpu(r), 1.0);
    }

    #[test]
    fn table_matches_model_at_grid_points() {
        let h = hw();
        let model = InterferenceModel::new(&h);
        let table = InterferenceTable::measure(&h, 9);
        let peak = h.bus_peak_access_rate();
        for i in 0..9 {
            let rate = peak * i as f64 / 8.0;
            assert!((table.mu(Processor::Cpu, rate) - model.mu_cpu(rate)).abs() < 1e-12);
            assert!((table.mu(Processor::Gpu, rate) - model.mu_gpu(rate)).abs() < 1e-12);
        }
    }

    #[test]
    fn table_quantizes_between_grid_points() {
        let h = hw();
        let model = InterferenceModel::new(&h);
        let table = InterferenceTable::measure(&h, 5);
        let peak = h.bus_peak_access_rate();
        // Just off a grid point: table rounds, model interpolates — they
        // differ (that is the intended cost-model error source) but stay
        // close.
        let rate = peak * 0.33;
        let t = table.mu(Processor::Cpu, rate);
        let m = model.mu_cpu(rate);
        assert!((t - m).abs() > 0.0);
        assert!((t - m).abs() < 0.05);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn table_needs_two_buckets() {
        let _ = InterferenceTable::measure(&hw(), 1);
    }
}
