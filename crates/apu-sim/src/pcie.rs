//! PCIe transfer model for the discrete CPU-GPU profile.
//!
//! On a discrete architecture every batch shipped to the GPU (keys,
//! signatures, job descriptors) and every result batch shipped back
//! crosses the PCIe bus — "considered as one of the largest overhead for
//! GPU execution" (paper §II-A). The coupled profile never pays this.

use crate::Ns;
use serde::{Deserialize, Serialize};

/// PCIe link model: fixed per-transfer setup cost plus bytes/bandwidth.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PcieModel {
    /// Effective bandwidth, bytes per nanosecond (GB/s numerically).
    pub bandwidth_gbps: f64,
    /// Fixed DMA setup + driver latency per transfer, ns.
    pub per_transfer_ns: f64,
}

impl PcieModel {
    /// PCIe 3.0 x16 with realistic effective bandwidth (~10 GB/s of the
    /// 15.75 GB/s theoretical) and ~8 µs per-transfer overhead.
    #[must_use]
    pub fn pcie3_x16() -> PcieModel {
        PcieModel {
            bandwidth_gbps: 10.0,
            per_transfer_ns: 8_000.0,
        }
    }

    /// Time to move `bytes` in one DMA transfer. Zero bytes cost zero
    /// (no transfer issued).
    #[must_use]
    pub fn transfer_time(&self, bytes: u64) -> Ns {
        if bytes == 0 {
            return 0.0;
        }
        self.per_transfer_ns + bytes as f64 / self.bandwidth_gbps
    }

    /// Round trip: host→device input of `in_bytes` plus device→host
    /// output of `out_bytes` (two transfers).
    #[must_use]
    pub fn round_trip_time(&self, in_bytes: u64, out_bytes: u64) -> Ns {
        self.transfer_time(in_bytes) + self.transfer_time(out_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_bytes_is_free() {
        let p = PcieModel::pcie3_x16();
        assert_eq!(p.transfer_time(0), 0.0);
    }

    #[test]
    fn fixed_cost_dominates_small_transfers() {
        let p = PcieModel::pcie3_x16();
        let t = p.transfer_time(64);
        assert!((t - p.per_transfer_ns) / p.per_transfer_ns < 0.01);
    }

    #[test]
    fn bandwidth_dominates_large_transfers() {
        let p = PcieModel::pcie3_x16();
        let bytes = 100 * 1024 * 1024_u64;
        let t = p.transfer_time(bytes);
        let pure_bw = bytes as f64 / p.bandwidth_gbps;
        assert!((t - pure_bw) / pure_bw < 0.01);
    }

    #[test]
    fn round_trip_is_two_transfers() {
        let p = PcieModel::pcie3_x16();
        assert_eq!(
            p.round_trip_time(1_000, 2_000),
            p.transfer_time(1_000) + p.transfer_time(2_000)
        );
    }

    #[test]
    fn monotonic_in_bytes() {
        let p = PcieModel::pcie3_x16();
        assert!(p.transfer_time(2_000) > p.transfer_time(1_000));
    }
}
