//! API-compatible subset of the `bytes` crate.
//!
//! Vendored because the build environment has no crates.io access (see
//! `crates/compat-*`). Covers what the workspace uses: cheaply-clonable
//! [`Bytes`] whose `slice()` shares the parent allocation (the net
//! crate's zero-copy parser test checks pointer provenance), a growable
//! [`BytesMut`] builder, and the little-endian [`BufMut`] writers.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, DerefMut, RangeBounds};
use std::sync::Arc;

/// A cheaply clonable, immutable, contiguous slice of memory.
///
/// Backed by an `Arc<[u8]>` plus a sub-range; `clone` and [`Bytes::slice`]
/// never copy the payload, they bump the refcount and narrow the window.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Create an empty `Bytes`.
    pub fn new() -> Bytes {
        Bytes::from(Vec::new())
    }

    /// Create `Bytes` from a static slice.
    pub fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(bytes)
    }

    /// Create `Bytes` by copying `data` into a fresh allocation.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes::from(data.to_vec())
    }

    /// Length of the view in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Return a sub-view of `self` sharing the same allocation.
    ///
    /// Panics if the range is out of bounds, matching the real crate.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(
            begin <= end && end <= len,
            "range out of bounds: {begin}..{end} of {len}"
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + begin,
            end: self.start + end,
        }
    }

    /// Copy the view into an owned `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self[..].to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"{}\"", self[..].escape_ascii())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self[..].hash(state);
    }
}

impl Eq for Bytes {}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == other[..]
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self[..].cmp(&other[..])
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self[..] == *other
    }
}

impl PartialEq<Bytes> for [u8] {
    fn eq(&self, other: &Bytes) -> bool {
        *self == other[..]
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self[..] == other[..]
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self[..] == **other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self[..] == other[..]
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == other[..]
    }
}

impl PartialEq<str> for Bytes {
    fn eq(&self, other: &str) -> bool {
        self[..] == *other.as_bytes()
    }
}

impl PartialEq<&str> for Bytes {
    fn eq(&self, other: &&str) -> bool {
        self[..] == *other.as_bytes()
    }
}

impl PartialEq<String> for Bytes {
    fn eq(&self, other: &String) -> bool {
        self[..] == *other.as_bytes()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let data: Arc<[u8]> = v.into();
        let end = data.len();
        Bytes { data, start: 0, end }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(s)
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(b: Box<[u8]>) -> Bytes {
        Bytes::from(b.into_vec())
    }
}

impl From<BytesMut> for Bytes {
    fn from(b: BytesMut) -> Bytes {
        b.freeze()
    }
}

/// A growable byte buffer, frozen into [`Bytes`] when complete.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// Create an empty buffer.
    pub fn new() -> BytesMut {
        BytesMut { buf: Vec::new() }
    }

    /// Create an empty buffer with room for `cap` bytes.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Reserve room for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.buf.reserve(additional);
    }

    /// Append a slice.
    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.buf.extend_from_slice(extend);
    }

    /// Drop all contents, keeping capacity.
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// Capacity of the backing allocation.
    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }

    /// Resize to `new_len` bytes, zero-filling any growth.
    pub fn resize(&mut self, new_len: usize, value: u8) {
        self.buf.resize(new_len, value);
    }

    /// Shorten to `len` bytes, keeping capacity; a no-op when the
    /// buffer is already `len` or shorter (matching the real crate).
    pub fn truncate(&mut self, len: usize) {
        self.buf.truncate(len);
    }

    /// Split off the first `at` bytes into a new buffer, leaving the
    /// tail in `self`.
    ///
    /// The real crate shares the allocation between the halves; this
    /// shim moves the backing `Vec` into the returned front half (no
    /// copy when `at == len()`, the common freeze-a-whole-frame case)
    /// and re-buffers the tail.
    ///
    /// # Panics
    /// Panics if `at > len()`, matching the real crate.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.buf.len(), "split_to out of bounds: {at} > {}", self.buf.len());
        let tail = self.buf.split_off(at);
        BytesMut {
            buf: std::mem::replace(&mut self.buf, tail),
        }
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"{}\"", self.buf.escape_ascii())
    }
}

/// Little-endian / raw writers over a growable buffer (`bytes::BufMut`
/// subset — only the `put_*` methods the workspace uses).
pub trait BufMut {
    /// Append one byte.
    fn put_u8(&mut self, n: u8);
    /// Append a `u16`, little-endian.
    fn put_u16_le(&mut self, n: u16);
    /// Append a `u32`, little-endian.
    fn put_u32_le(&mut self, n: u32);
    /// Append a `u64`, little-endian.
    fn put_u64_le(&mut self, n: u64);
    /// Append a slice verbatim.
    fn put_slice(&mut self, src: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, n: u8) {
        self.buf.push(n);
    }
    fn put_u16_le(&mut self, n: u16) {
        self.buf.extend_from_slice(&n.to_le_bytes());
    }
    fn put_u32_le(&mut self, n: u32) {
        self.buf.extend_from_slice(&n.to_le_bytes());
    }
    fn put_u64_le(&mut self, n: u64) {
        self.buf.extend_from_slice(&n.to_le_bytes());
    }
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, n: u8) {
        self.push(n);
    }
    fn put_u16_le(&mut self, n: u16) {
        self.extend_from_slice(&n.to_le_bytes());
    }
    fn put_u32_le(&mut self, n: u32) {
        self.extend_from_slice(&n.to_le_bytes());
    }
    fn put_u64_le(&mut self, n: u64) {
        self.extend_from_slice(&n.to_le_bytes());
    }
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_shares_allocation() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        let parent = b.as_ref().as_ptr() as usize;
        let child = s.as_ref().as_ptr() as usize;
        assert!(child >= parent && child < parent + b.len());
    }

    #[test]
    fn slice_of_slice() {
        let b = Bytes::from_static(b"hello world");
        let s = b.slice(6..);
        assert_eq!(&s[..], b"world");
        assert_eq!(&s.slice(1..3)[..], b"or");
    }

    #[test]
    fn builder_roundtrip() {
        let mut m = BytesMut::with_capacity(16);
        m.put_u16_le(0xBEEF);
        m.put_u8(7);
        m.put_u32_le(42);
        m.put_slice(b"xy");
        m[0..2].copy_from_slice(&0xCAFEu16.to_le_bytes());
        let b = m.freeze();
        assert_eq!(&b[..2], &0xCAFEu16.to_le_bytes());
        assert_eq!(b[2], 7);
        assert_eq!(&b[3..7], &42u32.to_le_bytes());
        assert_eq!(&b[7..], b"xy");
    }

    #[test]
    fn split_to_moves_front_and_keeps_tail() {
        let mut m = BytesMut::with_capacity(8);
        m.put_slice(b"frontback");
        let front = m.split_to(5);
        assert_eq!(&front[..], b"front");
        assert_eq!(&m[..], b"back");
        // Splitting the whole buffer transfers the allocation wholesale.
        let mut whole = BytesMut::new();
        whole.put_slice(b"abc");
        let ptr = whole.as_ref().as_ptr() as usize;
        let taken = whole.split_to(3);
        assert_eq!(taken.as_ref().as_ptr() as usize, ptr);
        assert!(whole.is_empty());
        assert_eq!(&taken.freeze()[..], b"abc");
    }

    #[test]
    #[should_panic(expected = "split_to out of bounds")]
    fn split_to_past_end_panics() {
        let mut m = BytesMut::new();
        m.put_u8(1);
        let _ = m.split_to(2);
    }

    #[test]
    fn resize_zero_fills() {
        let mut m = BytesMut::new();
        m.put_slice(b"xy");
        m.resize(4, 0);
        assert_eq!(&m[..], &[b'x', b'y', 0, 0]);
        m.resize(1, 0);
        assert_eq!(&m[..], b"x");
        assert!(m.capacity() >= 4);
    }

    #[test]
    fn equality_family() {
        let b = Bytes::from(String::from("abc"));
        assert_eq!(b, "abc");
        assert_eq!(b, String::from("abc"));
        assert_eq!(b, *b"abc");
        assert_eq!(b, vec![b'a', b'b', b'c']);
        assert_eq!(b, Bytes::from_static(b"abc"));
        assert_ne!(b, Bytes::new());
    }
}
