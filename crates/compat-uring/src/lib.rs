//! Vendored zero-dependency io_uring binding for DIDO's batched I/O
//! plane.
//!
//! Like the other `compat-*` crates this speaks to the platform
//! through `extern "C"` declarations against the C library std already
//! links — no `libc` crate, no registry dependency. It implements
//! exactly the subset the reactor RX and SD egress paths need:
//!
//! * [`Uring::new`] — `io_uring_setup` plus the SQ/CQ/SQE mmaps
//!   (single-mmap aware via `FEAT_SINGLE_MMAP`).
//! * SQE preparation for the five ops the planes use: `RECV`,
//!   `WRITEV`, `POLL_ADD`, `ASYNC_CANCEL`, and `NOP`.
//! * [`Uring::submit`] / [`Uring::submit_and_wait`] — one
//!   `io_uring_enter` per call (timed waits use
//!   `IORING_ENTER_EXT_ARG`), with an enter counter so callers can
//!   report syscalls-per-query.
//! * [`Uring::reap`] — drain the completion ring into a caller buffer.
//! * [`probe`] — a cached runtime availability check (setup succeeds,
//!   required features and opcodes present, NOP round-trips) so `auto`
//!   backends can fall back to epoll on kernels without io_uring
//!   (`ENOSYS`, seccomp, or pre-5.11 feature sets).
//!
//! Safety contract: buffers referenced by a prepared SQE (`recv`
//! destination, `writev` iovec array and the segments it points at)
//! must stay valid until the matching CQE has been reaped **or the
//! ring fd is closed and in-flight ops are known to have completed** —
//! closing the ring cancels asynchronously, so owners must drain
//! before freeing. The planes track in-flight counts for exactly this
//! reason.
#![warn(missing_docs)]

/// One completion-queue entry, copied out by [`Uring::reap`].
///
/// `res` follows kernel convention: `>= 0` is the op's result (bytes
/// for `RECV`/`WRITEV`), `< 0` is a negated errno.
#[repr(C)]
#[derive(Clone, Copy, Debug)]
pub struct Cqe {
    /// Caller tag set at prep time; identifies the originating SQE.
    pub user_data: u64,
    /// Result: op return value, or negated errno when negative.
    pub res: i32,
    /// CQE flags (unused by our ops).
    pub flags: u32,
}

/// C-layout `struct iovec` for [`Uring::push_writev`].
#[repr(C)]
#[derive(Clone, Copy, Debug)]
pub struct IoVec {
    /// Segment base pointer.
    pub base: *const u8,
    /// Segment length in bytes.
    pub len: usize,
}

// Poll event masks for `push_poll_add` (classic poll(2) bits).
/// Readable (`POLLIN`).
pub const POLL_IN: u32 = 0x001;
/// Writable (`POLLOUT`).
pub const POLL_OUT: u32 = 0x004;

/// Result of the cached runtime availability check. See [`probe`].
#[derive(Debug)]
pub struct Probe {
    /// Whether a fully usable ring (setup + required features +
    /// required opcodes + NOP round-trip) is available.
    pub available: bool,
    /// Human-readable reason when unavailable (empty when available).
    pub reason: String,
}

/// Convenience wrapper over [`probe`].
pub fn available() -> bool {
    probe().available
}

/// Runs the availability check once per process and caches the result.
pub fn probe() -> &'static Probe {
    static PROBE: std::sync::OnceLock<Probe> = std::sync::OnceLock::new();
    PROBE.get_or_init(imp::run_probe)
}

pub use imp::Uring;

/// Drain a readable notification fd — an eventfd counter or a pipe's
/// pending bytes. Uring event loops arm wakers with `POLL_ADD` (which
/// reports readiness but consumes nothing), so they must reset the fd
/// by hand before re-arming or the next poll completes immediately.
/// The fd must be nonblocking (compat-mio's wakers are).
pub fn drain_notify_fd(fd: i32) {
    imp::drain_notify_fd(fd)
}

#[cfg(target_os = "linux")]
mod imp {
    use super::{Cqe, IoVec, Probe};
    use std::io;
    use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
    use std::time::Duration;

    // Syscall numbers (asm-generic; identical on x86_64 and aarch64).
    const SYS_IO_URING_SETUP: isize = 425;
    const SYS_IO_URING_ENTER: isize = 426;
    const SYS_IO_URING_REGISTER: isize = 427;

    // mmap offsets selecting which ring a map request refers to.
    const IORING_OFF_SQ_RING: i64 = 0;
    const IORING_OFF_CQ_RING: i64 = 0x0800_0000;
    const IORING_OFF_SQES: i64 = 0x1000_0000;

    // Setup flags / feature bits we care about.
    const IORING_SETUP_CQSIZE: u32 = 1 << 3;
    const IORING_FEAT_SINGLE_MMAP: u32 = 1 << 0;
    const IORING_FEAT_NODROP: u32 = 1 << 1;
    const IORING_FEAT_EXT_ARG: u32 = 1 << 8;

    // Enter flags.
    const IORING_ENTER_GETEVENTS: u32 = 1 << 0;
    const IORING_ENTER_EXT_ARG: u32 = 1 << 3;

    // Register opcodes.
    const IORING_REGISTER_PROBE: u32 = 8;

    // SQE opcodes.
    const IORING_OP_NOP: u8 = 0;
    const IORING_OP_WRITEV: u8 = 2;
    const IORING_OP_POLL_ADD: u8 = 6;
    const IORING_OP_ASYNC_CANCEL: u8 = 14;
    const IORING_OP_RECV: u8 = 27;

    const PROT_READ: i32 = 0x1;
    const PROT_WRITE: i32 = 0x2;
    const MAP_SHARED: i32 = 0x01;
    const MAP_POPULATE: i32 = 0x8000;

    const ETIME: i32 = 62;
    const EINTR: i32 = 4;

    extern "C" {
        fn syscall(num: isize, ...) -> isize;
        fn mmap(
            addr: *mut u8,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut u8;
        fn munmap(addr: *mut u8, len: usize) -> i32;
        fn close(fd: i32) -> i32;
        fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    }

    pub(super) fn drain_notify_fd(fd: i32) {
        let mut buf = [0u8; 64];
        loop {
            let n = unsafe { read(fd, buf.as_mut_ptr(), buf.len()) };
            if n < buf.len() as isize {
                break; // drained (short read) or would-block/error
            }
        }
    }

    #[repr(C)]
    #[derive(Clone, Copy, Default)]
    struct SqringOffsets {
        head: u32,
        tail: u32,
        ring_mask: u32,
        ring_entries: u32,
        flags: u32,
        dropped: u32,
        array: u32,
        resv1: u32,
        user_addr: u64,
    }

    #[repr(C)]
    #[derive(Clone, Copy, Default)]
    struct CqringOffsets {
        head: u32,
        tail: u32,
        ring_mask: u32,
        ring_entries: u32,
        overflow: u32,
        cqes: u32,
        flags: u32,
        resv1: u32,
        user_addr: u64,
    }

    #[repr(C)]
    #[derive(Clone, Copy, Default)]
    struct UringParams {
        sq_entries: u32,
        cq_entries: u32,
        flags: u32,
        sq_thread_cpu: u32,
        sq_thread_idle: u32,
        features: u32,
        wq_fd: u32,
        resv: [u32; 3],
        sq_off: SqringOffsets,
        cq_off: CqringOffsets,
    }

    /// 64-byte submission-queue entry (fields beyond what our five ops
    /// use stay zero).
    #[repr(C)]
    #[derive(Clone, Copy)]
    struct Sqe {
        opcode: u8,
        flags: u8,
        ioprio: u16,
        fd: i32,
        off: u64,
        addr: u64,
        len: u32,
        rw_flags: u32,
        user_data: u64,
        buf_index: u16,
        personality: u16,
        splice_fd_in: i32,
        pad2: [u64; 2],
    }

    const ZERO_SQE: Sqe = Sqe {
        opcode: 0,
        flags: 0,
        ioprio: 0,
        fd: -1,
        off: 0,
        addr: 0,
        len: 0,
        rw_flags: 0,
        user_data: 0,
        buf_index: 0,
        personality: 0,
        splice_fd_in: 0,
        pad2: [0; 2],
    };

    #[repr(C)]
    struct GetEventsArg {
        sigmask: u64,
        sigmask_sz: u32,
        pad: u32,
        ts: u64,
    }

    #[repr(C)]
    struct Timespec {
        tv_sec: i64,
        tv_nsec: i64,
    }

    fn cvt(ret: isize) -> io::Result<isize> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    struct Mmap {
        ptr: *mut u8,
        len: usize,
    }

    impl Mmap {
        fn map(fd: i32, len: usize, offset: i64) -> io::Result<Mmap> {
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ | PROT_WRITE,
                    MAP_SHARED | MAP_POPULATE,
                    fd,
                    offset,
                )
            };
            if ptr as isize == -1 {
                Err(io::Error::last_os_error())
            } else {
                Ok(Mmap { ptr, len })
            }
        }
    }

    impl Drop for Mmap {
        fn drop(&mut self) {
            unsafe {
                munmap(self.ptr, self.len);
            }
        }
    }

    /// An io_uring instance: the ring fd plus mmapped SQ/CQ/SQE
    /// arrays. Single-threaded owner; `Send` but not `Sync`.
    pub struct Uring {
        fd: i32,
        features: u32,
        // Keep maps alive for the lifetime of the ring; cq_map is None
        // under FEAT_SINGLE_MMAP (cq pointers live inside sq_map).
        _sq_map: Mmap,
        _cq_map: Option<Mmap>,
        _sqe_map: Mmap,
        // Submission side.
        sq_head: *const u32,
        sq_tail: *mut u32,
        sq_mask: u32,
        sq_entries: u32,
        sq_array: *mut u32,
        sqes: *mut Sqe,
        local_tail: u32,
        // Completion side.
        cq_head: *mut u32,
        cq_tail: *const u32,
        cq_mask: u32,
        cqes: *const Cqe,
        enters: AtomicU64,
    }

    // Raw pointers into the shared maps; ownership is single-threaded
    // and the kernel side synchronizes via the head/tail atomics.
    unsafe impl Send for Uring {}

    impl Uring {
        /// Creates a ring with at least `sq_entries` submission slots
        /// and (when larger) `cq_entries` completion slots. The kernel
        /// rounds both up to powers of two.
        pub fn new(sq_entries: u32, cq_entries: u32) -> io::Result<Uring> {
            let mut p = UringParams::default();
            if cq_entries > sq_entries {
                p.flags |= IORING_SETUP_CQSIZE;
                p.cq_entries = cq_entries;
            }
            let fd = cvt(unsafe {
                syscall(
                    SYS_IO_URING_SETUP,
                    sq_entries as usize,
                    &mut p as *mut UringParams,
                )
            })? as i32;
            // From here on the fd must be closed on any error path.
            let built = Self::build(fd, &p);
            if built.is_err() {
                unsafe {
                    close(fd);
                }
            }
            built
        }

        fn build(fd: i32, p: &UringParams) -> io::Result<Uring> {
            let sq_ring_len =
                p.sq_off.array as usize + p.sq_entries as usize * std::mem::size_of::<u32>();
            let cq_ring_len =
                p.cq_off.cqes as usize + p.cq_entries as usize * std::mem::size_of::<Cqe>();
            let single = p.features & IORING_FEAT_SINGLE_MMAP != 0;

            let sq_map = Mmap::map(
                fd,
                if single {
                    sq_ring_len.max(cq_ring_len)
                } else {
                    sq_ring_len
                },
                IORING_OFF_SQ_RING,
            )?;
            let cq_map = if single {
                None
            } else {
                Some(Mmap::map(fd, cq_ring_len, IORING_OFF_CQ_RING)?)
            };
            let sqe_map = Mmap::map(
                fd,
                p.sq_entries as usize * std::mem::size_of::<Sqe>(),
                IORING_OFF_SQES,
            )?;

            let sq_base = sq_map.ptr;
            let cq_base = cq_map.as_ref().map(|m| m.ptr).unwrap_or(sq_map.ptr);
            unsafe {
                let ring = Uring {
                    fd,
                    features: p.features,
                    sq_head: sq_base.add(p.sq_off.head as usize) as *const u32,
                    sq_tail: sq_base.add(p.sq_off.tail as usize) as *mut u32,
                    sq_mask: *(sq_base.add(p.sq_off.ring_mask as usize) as *const u32),
                    sq_entries: p.sq_entries,
                    sq_array: sq_base.add(p.sq_off.array as usize) as *mut u32,
                    sqes: sqe_map.ptr as *mut Sqe,
                    local_tail: *(sq_base.add(p.sq_off.tail as usize) as *const u32),
                    cq_head: cq_base.add(p.cq_off.head as usize) as *mut u32,
                    cq_tail: cq_base.add(p.cq_off.tail as usize) as *const u32,
                    cq_mask: *(cq_base.add(p.cq_off.ring_mask as usize) as *const u32),
                    cqes: cq_base.add(p.cq_off.cqes as usize) as *const Cqe,
                    _sq_map: sq_map,
                    _cq_map: cq_map,
                    _sqe_map: sqe_map,
                    enters: AtomicU64::new(0),
                };
                // Identity-map the SQ index array once; slots are then
                // addressed directly by `tail & mask`.
                for i in 0..ring.sq_entries {
                    *ring.sq_array.add(i as usize) = i;
                }
                Ok(ring)
            }
        }

        /// Feature bits reported by the kernel at setup.
        pub fn features(&self) -> u32 {
            self.features
        }

        /// Number of free submission slots (prepared-but-unsubmitted
        /// entries count as used).
        pub fn sq_space(&self) -> u32 {
            let head = unsafe { AtomicU32::from_ptr(self.sq_head as *mut u32) }
                .load(Ordering::Acquire);
            self.sq_entries - self.local_tail.wrapping_sub(head)
        }

        /// Number of prepared entries not yet handed to the kernel.
        pub fn pending_submit(&self) -> u32 {
            let tail =
                unsafe { AtomicU32::from_ptr(self.sq_tail) }.load(Ordering::Relaxed);
            self.local_tail.wrapping_sub(tail)
        }

        /// `io_uring_enter` calls made so far (submit + wait combined):
        /// the backend's syscalls-per-query numerator.
        pub fn enters(&self) -> u64 {
            self.enters.load(Ordering::Relaxed)
        }

        fn slot(&mut self) -> Option<*mut Sqe> {
            if self.sq_space() == 0 {
                return None;
            }
            let idx = (self.local_tail & self.sq_mask) as usize;
            self.local_tail = self.local_tail.wrapping_add(1);
            Some(unsafe { self.sqes.add(idx) })
        }

        fn push(&mut self, sqe: Sqe) -> bool {
            match self.slot() {
                Some(p) => {
                    unsafe { *p = sqe };
                    true
                }
                None => false,
            }
        }

        /// Queues a `RECV` into `buf[..len]`. Returns `false` when the
        /// submission queue is full (caller should submit and retry).
        ///
        /// # Safety
        /// `buf[..len]` must stay valid (and unread by the caller)
        /// until the matching CQE is reaped or the in-flight op is
        /// known complete after ring close.
        pub unsafe fn push_recv(&mut self, fd: i32, buf: *mut u8, len: u32, user_data: u64) -> bool {
            let mut s = ZERO_SQE;
            s.opcode = IORING_OP_RECV;
            s.fd = fd;
            s.addr = buf as u64;
            s.len = len;
            s.user_data = user_data;
            self.push(s)
        }

        /// Queues a `WRITEV` over `iov[..n]`. Returns `false` when the
        /// submission queue is full.
        ///
        /// # Safety
        /// The iovec array **and** every segment it points at must stay
        /// valid and unmodified until the matching CQE is reaped (the
        /// kernel reads the array at submit but the segments during the
        /// write).
        pub unsafe fn push_writev(
            &mut self,
            fd: i32,
            iov: *const IoVec,
            n: u32,
            user_data: u64,
        ) -> bool {
            let mut s = ZERO_SQE;
            s.opcode = IORING_OP_WRITEV;
            s.fd = fd;
            s.addr = iov as u64;
            s.len = n;
            s.user_data = user_data;
            self.push(s)
        }

        /// Queues a one-shot `POLL_ADD` for `events` ([`POLL_IN`] /
        /// [`POLL_OUT`]) on `fd`. Completes once with the ready mask in
        /// `res`; re-arm by pushing again. Returns `false` when full.
        pub fn push_poll_add(&mut self, fd: i32, events: u32, user_data: u64) -> bool {
            let mut s = ZERO_SQE;
            s.opcode = IORING_OP_POLL_ADD;
            s.fd = fd;
            // poll32_events is little-endian in rw_flags.
            s.rw_flags = events.to_le();
            s.user_data = user_data;
            self.push(s)
        }

        /// Queues an `ASYNC_CANCEL` for the SQE tagged `target`. The
        /// cancel op itself completes with 0 (found), `-ENOENT`, or
        /// `-EALREADY`; the target (if found) completes with
        /// `-ECANCELED`. Returns `false` when full.
        pub fn push_cancel(&mut self, target: u64, user_data: u64) -> bool {
            let mut s = ZERO_SQE;
            s.opcode = IORING_OP_ASYNC_CANCEL;
            s.fd = -1;
            s.addr = target;
            s.user_data = user_data;
            self.push(s)
        }

        /// Queues a `NOP` (used by the probe and tests). Returns
        /// `false` when full.
        pub fn push_nop(&mut self, user_data: u64) -> bool {
            let mut s = ZERO_SQE;
            s.user_data = user_data;
            s.opcode = IORING_OP_NOP;
            self.push(s)
        }

        fn publish_tail(&mut self) -> u32 {
            let tail = unsafe { AtomicU32::from_ptr(self.sq_tail) };
            tail.store(self.local_tail, Ordering::Release);
            let head = unsafe { AtomicU32::from_ptr(self.sq_head as *mut u32) }
                .load(Ordering::Acquire);
            self.local_tail.wrapping_sub(head)
        }

        fn enter(
            &self,
            to_submit: u32,
            min_complete: u32,
            flags: u32,
            arg: *const GetEventsArg,
            argsz: usize,
        ) -> io::Result<usize> {
            self.enters.fetch_add(1, Ordering::Relaxed);
            let ret = unsafe {
                syscall(
                    SYS_IO_URING_ENTER,
                    self.fd as usize,
                    to_submit as usize,
                    min_complete as usize,
                    flags as usize,
                    arg as usize,
                    argsz,
                )
            };
            match cvt(ret) {
                Ok(n) => Ok(n as usize),
                // A timed-out or interrupted wait is not an error; any
                // prepared SQEs were still consumed by the kernel.
                Err(e) if matches!(e.raw_os_error(), Some(ETIME) | Some(EINTR)) => Ok(0),
                Err(e) => Err(e),
            }
        }

        /// Hands all prepared SQEs to the kernel without waiting.
        /// Returns the number consumed; no-op (and no syscall) when
        /// nothing is pending.
        pub fn submit(&mut self) -> io::Result<usize> {
            let to_submit = self.publish_tail();
            if to_submit == 0 {
                return Ok(0);
            }
            self.enter(to_submit, 0, 0, std::ptr::null(), 0)
        }

        /// Hands all prepared SQEs to the kernel and waits until at
        /// least `min_complete` completions are available or `timeout`
        /// elapses (`None` = wait indefinitely). Skips the syscall
        /// entirely when nothing is pending, `min_complete` is already
        /// satisfied by unreaped CQEs, or `min_complete` is 0.
        pub fn submit_and_wait(
            &mut self,
            min_complete: u32,
            timeout: Option<Duration>,
        ) -> io::Result<usize> {
            let to_submit = self.publish_tail();
            if to_submit == 0 && (min_complete == 0 || self.cq_ready() >= min_complete) {
                return Ok(0);
            }
            match timeout {
                None => self.enter(
                    to_submit,
                    min_complete,
                    IORING_ENTER_GETEVENTS,
                    std::ptr::null(),
                    0,
                ),
                Some(d) => {
                    if self.features & IORING_FEAT_EXT_ARG == 0 {
                        return Err(io::Error::new(
                            io::ErrorKind::Unsupported,
                            "kernel lacks IORING_FEAT_EXT_ARG (timed waits)",
                        ));
                    }
                    let ts = Timespec {
                        tv_sec: d.as_secs() as i64,
                        tv_nsec: d.subsec_nanos() as i64,
                    };
                    let arg = GetEventsArg {
                        sigmask: 0,
                        sigmask_sz: 8,
                        pad: 0,
                        ts: &ts as *const Timespec as u64,
                    };
                    self.enter(
                        to_submit,
                        min_complete,
                        IORING_ENTER_GETEVENTS | IORING_ENTER_EXT_ARG,
                        &arg,
                        std::mem::size_of::<GetEventsArg>(),
                    )
                }
            }
        }

        fn cq_ready(&self) -> u32 {
            let tail = unsafe { AtomicU32::from_ptr(self.cq_tail as *mut u32) }
                .load(Ordering::Acquire);
            let head =
                unsafe { AtomicU32::from_ptr(self.cq_head) }.load(Ordering::Relaxed);
            tail.wrapping_sub(head)
        }

        /// Drains every available CQE into `out`, returning how many
        /// were appended.
        pub fn reap(&mut self, out: &mut Vec<Cqe>) -> usize {
            let tail = unsafe { AtomicU32::from_ptr(self.cq_tail as *mut u32) }
                .load(Ordering::Acquire);
            let head_atomic = unsafe { AtomicU32::from_ptr(self.cq_head) };
            let mut head = head_atomic.load(Ordering::Relaxed);
            let n = tail.wrapping_sub(head) as usize;
            out.reserve(n);
            while head != tail {
                let idx = (head & self.cq_mask) as usize;
                out.push(unsafe { *self.cqes.add(idx) });
                head = head.wrapping_add(1);
            }
            head_atomic.store(head, Ordering::Release);
            n
        }
    }

    impl Drop for Uring {
        fn drop(&mut self) {
            unsafe {
                close(self.fd);
            }
        }
    }

    /// `io_uring_probe` layout for `IORING_REGISTER_PROBE`: 16-byte
    /// header followed by one 8-byte op record per opcode.
    #[repr(C)]
    struct ProbeHeader {
        last_op: u8,
        ops_len: u8,
        resv: u16,
        resv2: [u32; 3],
    }

    const PROBE_OPS: usize = 64;

    fn opcode_supported(buf: &[u8], opcode: u8) -> bool {
        let hdr_len = std::mem::size_of::<ProbeHeader>();
        let last_op = buf[0];
        let ops_len = buf[1] as usize;
        if opcode > last_op || (opcode as usize) >= ops_len {
            return false;
        }
        // Each op record: { op: u8, resv: u8, flags: u16, resv2: u32 }.
        let rec = hdr_len + opcode as usize * 8;
        let flags = u16::from_le_bytes([buf[rec + 2], buf[rec + 3]]);
        flags & 1 != 0 // IO_URING_OP_SUPPORTED
    }

    pub(super) fn run_probe() -> Probe {
        let no = |reason: String| Probe {
            available: false,
            reason,
        };
        let mut ring = match Uring::new(8, 16) {
            Ok(r) => r,
            Err(e) => return no(format!("io_uring_setup failed: {e}")),
        };
        let need = IORING_FEAT_NODROP | IORING_FEAT_EXT_ARG;
        if ring.features() & need != need {
            return no(format!(
                "missing ring features: have {:#x}, need NODROP|EXT_ARG",
                ring.features()
            ));
        }
        let mut buf =
            [0u8; std::mem::size_of::<ProbeHeader>() + PROBE_OPS * 8];
        let ret = unsafe {
            syscall(
                SYS_IO_URING_REGISTER,
                ring.fd as usize,
                IORING_REGISTER_PROBE as usize,
                buf.as_mut_ptr(),
                PROBE_OPS,
            )
        };
        if cvt(ret).is_err() {
            return no(format!(
                "IORING_REGISTER_PROBE failed: {}",
                io::Error::last_os_error()
            ));
        }
        for (op, name) in [
            (IORING_OP_RECV, "RECV"),
            (IORING_OP_WRITEV, "WRITEV"),
            (IORING_OP_POLL_ADD, "POLL_ADD"),
            (IORING_OP_ASYNC_CANCEL, "ASYNC_CANCEL"),
        ] {
            if !opcode_supported(&buf, op) {
                return no(format!("kernel lacks IORING_OP_{name}"));
            }
        }
        // Round-trip a NOP to make sure enter/reap actually work (a
        // seccomp filter could allow setup but block enter).
        if !ring.push_nop(0xD1D0) {
            return no("probe ring rejected a NOP".into());
        }
        let mut cqes = Vec::new();
        match ring.submit_and_wait(1, Some(Duration::from_millis(200))) {
            Ok(_) => {}
            Err(e) => return no(format!("io_uring_enter failed: {e}")),
        }
        ring.reap(&mut cqes);
        if !cqes.iter().any(|c| c.user_data == 0xD1D0 && c.res == 0) {
            return no("NOP did not complete".into());
        }
        Probe {
            available: true,
            reason: String::new(),
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod imp {
    use super::{Cqe, IoVec, Probe};
    use std::io;
    use std::time::Duration;

    fn unsupported<T>() -> io::Result<T> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "io_uring is Linux-only",
        ))
    }

    /// Stub ring for non-Linux targets: construction always fails and
    /// [`super::probe`] reports unavailable, so `auto` backends fall
    /// back to the readiness poller.
    pub struct Uring {
        _private: (),
    }

    impl Uring {
        /// Always fails with `Unsupported` on this target.
        pub fn new(_sq_entries: u32, _cq_entries: u32) -> io::Result<Uring> {
            unsupported()
        }

        /// Feature bits (unreachable on this target).
        pub fn features(&self) -> u32 {
            0
        }

        /// Free submission slots (unreachable on this target).
        pub fn sq_space(&self) -> u32 {
            0
        }

        /// Prepared-but-unsubmitted entries (unreachable here).
        pub fn pending_submit(&self) -> u32 {
            0
        }

        /// Enter-syscall counter (unreachable on this target).
        pub fn enters(&self) -> u64 {
            0
        }

        /// See the Linux implementation.
        ///
        /// # Safety
        /// Never dereferences its arguments on this target.
        pub unsafe fn push_recv(
            &mut self,
            _fd: i32,
            _buf: *mut u8,
            _len: u32,
            _user_data: u64,
        ) -> bool {
            false
        }

        /// See the Linux implementation.
        ///
        /// # Safety
        /// Never dereferences its arguments on this target.
        pub unsafe fn push_writev(
            &mut self,
            _fd: i32,
            _iov: *const IoVec,
            _n: u32,
            _user_data: u64,
        ) -> bool {
            false
        }

        /// See the Linux implementation.
        pub fn push_poll_add(&mut self, _fd: i32, _events: u32, _user_data: u64) -> bool {
            false
        }

        /// See the Linux implementation.
        pub fn push_cancel(&mut self, _target: u64, _user_data: u64) -> bool {
            false
        }

        /// See the Linux implementation.
        pub fn push_nop(&mut self, _user_data: u64) -> bool {
            false
        }

        /// See the Linux implementation.
        pub fn submit(&mut self) -> io::Result<usize> {
            unsupported()
        }

        /// See the Linux implementation.
        pub fn submit_and_wait(
            &mut self,
            _min_complete: u32,
            _timeout: Option<Duration>,
        ) -> io::Result<usize> {
            unsupported()
        }

        /// See the Linux implementation.
        pub fn reap(&mut self, _out: &mut Vec<Cqe>) -> usize {
            0
        }
    }

    pub(super) fn run_probe() -> Probe {
        Probe {
            available: false,
            reason: "io_uring is Linux-only".into(),
        }
    }

    pub(super) fn drain_notify_fd(_fd: i32) {}
}

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;
    use std::time::{Duration, Instant};

    extern "C" {
        fn socketpair(domain: i32, ty: i32, protocol: i32, sv: *mut i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    const AF_UNIX: i32 = 1;
    const SOCK_STREAM: i32 = 1;

    struct Pair(i32, i32);

    impl Pair {
        fn new() -> Pair {
            let mut sv = [0i32; 2];
            assert_eq!(
                unsafe { socketpair(AF_UNIX, SOCK_STREAM, 0, sv.as_mut_ptr()) },
                0,
                "socketpair: {}",
                std::io::Error::last_os_error()
            );
            Pair(sv[0], sv[1])
        }
    }

    impl Drop for Pair {
        fn drop(&mut self) {
            unsafe {
                close(self.0);
                close(self.1);
            }
        }
    }

    fn wait_for(
        ring: &mut Uring,
        want: usize,
        cqes: &mut Vec<Cqe>,
    ) {
        let deadline = Instant::now() + Duration::from_secs(5);
        while cqes.len() < want {
            assert!(Instant::now() < deadline, "timed out waiting for CQEs");
            ring.submit_and_wait(1, Some(Duration::from_millis(100)))
                .expect("enter");
            ring.reap(cqes);
        }
    }

    #[test]
    fn setup_and_teardown_repeats() {
        if !available() {
            eprintln!("skipping: io_uring unavailable: {}", probe().reason);
            return;
        }
        for _ in 0..8 {
            let ring = Uring::new(16, 32).expect("setup");
            assert!(ring.sq_space() >= 16);
            drop(ring);
        }
    }

    #[test]
    fn nop_round_trip_counts_enters() {
        if !available() {
            eprintln!("skipping: io_uring unavailable: {}", probe().reason);
            return;
        }
        let mut ring = Uring::new(8, 16).expect("setup");
        assert!(ring.push_nop(7));
        assert_eq!(ring.pending_submit(), 1);
        let mut cqes = Vec::new();
        wait_for(&mut ring, 1, &mut cqes);
        assert_eq!(cqes[0].user_data, 7);
        assert_eq!(cqes[0].res, 0);
        assert!(ring.enters() >= 1);
    }

    #[test]
    fn sq_full_is_reported_not_lost() {
        if !available() {
            eprintln!("skipping: io_uring unavailable: {}", probe().reason);
            return;
        }
        let mut ring = Uring::new(4, 8).expect("setup");
        let cap = ring.sq_space();
        for i in 0..cap {
            assert!(ring.push_nop(i as u64));
        }
        assert!(!ring.push_nop(99), "push past capacity must fail");
        let mut cqes = Vec::new();
        wait_for(&mut ring, cap as usize, &mut cqes);
        assert!(ring.push_nop(99), "space frees after submit");
    }

    #[test]
    fn recv_writev_round_trip() {
        if !available() {
            eprintln!("skipping: io_uring unavailable: {}", probe().reason);
            return;
        }
        let pair = Pair::new();
        let mut ring = Uring::new(8, 16).expect("setup");

        // Arm the recv first: it must stay pending (blocking-mode
        // socket, no data) rather than completing with -EAGAIN.
        let mut rx_buf = vec![0u8; 64];
        assert!(unsafe {
            ring.push_recv(pair.0, rx_buf.as_mut_ptr(), rx_buf.len() as u32, 1)
        });
        ring.submit().expect("submit recv");
        let mut cqes = Vec::new();
        ring.submit_and_wait(1, Some(Duration::from_millis(50)))
            .expect("short wait");
        ring.reap(&mut cqes);
        assert!(cqes.is_empty(), "recv completed before any data: {cqes:?}");

        let msg = b"hello-uring";
        let segs = [
            IoVec {
                base: msg.as_ptr(),
                len: 5,
            },
            IoVec {
                base: msg[5..].as_ptr(),
                len: msg.len() - 5,
            },
        ];
        assert!(unsafe { ring.push_writev(pair.1, segs.as_ptr(), 2, 2) });
        wait_for(&mut ring, 2, &mut cqes);
        cqes.sort_by_key(|c| c.user_data);
        assert_eq!(cqes[0].user_data, 1);
        assert_eq!(cqes[0].res as usize, msg.len());
        assert_eq!(&rx_buf[..msg.len()], msg);
        assert_eq!(cqes[1].user_data, 2);
        assert_eq!(cqes[1].res as usize, msg.len());
    }

    #[test]
    fn poll_add_cancel_completes_both_ops() {
        if !available() {
            eprintln!("skipping: io_uring unavailable: {}", probe().reason);
            return;
        }
        let pair = Pair::new();
        let mut ring = Uring::new(8, 16).expect("setup");
        assert!(ring.push_poll_add(pair.0, POLL_IN, 10));
        ring.submit().expect("submit poll");
        assert!(ring.push_cancel(10, 11));
        let mut cqes = Vec::new();
        wait_for(&mut ring, 2, &mut cqes);
        cqes.sort_by_key(|c| c.user_data);
        assert_eq!(cqes[0].user_data, 10);
        assert!(cqes[0].res < 0, "canceled poll reports an error");
        assert_eq!(cqes[1].user_data, 11);
    }

    #[test]
    fn timed_wait_returns_on_timeout() {
        if !available() {
            eprintln!("skipping: io_uring unavailable: {}", probe().reason);
            return;
        }
        let mut ring = Uring::new(4, 8).expect("setup");
        let start = Instant::now();
        ring.submit_and_wait(1, Some(Duration::from_millis(50)))
            .expect("timed wait");
        let waited = start.elapsed();
        assert!(
            waited >= Duration::from_millis(30),
            "returned too early: {waited:?}"
        );
        let mut cqes = Vec::new();
        assert_eq!(ring.reap(&mut cqes), 0);
    }

    #[test]
    fn probe_is_coherent_with_setup() {
        let p = probe();
        assert_eq!(
            p.available,
            Uring::new(8, 8).is_ok(),
            "probe ({}) disagrees with setup",
            p.reason
        );
    }
}
