//! Model-based property tests for the object store: allocate / free /
//! overwrite sequences must agree with a reference map, capacity
//! invariants must hold throughout, and an expired object must be
//! indistinguishable from a deleted one — on the lazy path and the
//! segment-sweep path alike. Time is an explicit `now` the generator
//! advances; nothing here ever sleeps.

use dido_kvstore::{ObjectStore, StoreError};
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Op {
    /// Store key `k` with a value of `len` bytes.
    Put(u8, u8),
    /// Free key `k`'s current object (if any).
    Free(u8),
    /// Read key `k` back.
    Check(u8),
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (any::<u8>(), any::<u8>()).prop_map(|(k, l)| Op::Put(k, l)),
            any::<u8>().prop_map(Op::Free),
            any::<u8>().prop_map(Op::Check),
        ],
        1..150,
    )
}

#[derive(Debug, Clone)]
enum TtlOp {
    /// Store key `k` (`len` value bytes) with a relative TTL in mock
    /// seconds; 0 = never expires.
    Put(u8, u8, u8),
    /// Move the mock clock forward.
    Advance(u8),
    /// Observe key `k`: a passed deadline must read as deleted.
    Get(u8),
    /// Proactive pass: reclaim every fully-expired segment.
    Sweep,
    /// Explicit DELETE of key `k`.
    Free(u8),
}

fn ttl_ops() -> impl Strategy<Value = Vec<TtlOp>> {
    proptest::collection::vec(
        prop_oneof![
            // Small TTLs against small advances, so runs interleave
            // live, expired-but-present, and purged states.
            (any::<u8>(), any::<u8>(), 0u8..8).prop_map(|(k, l, t)| TtlOp::Put(k, l, t)),
            (1u8..5).prop_map(TtlOp::Advance),
            any::<u8>().prop_map(TtlOp::Get),
            Just(TtlOp::Sweep),
            any::<u8>().prop_map(TtlOp::Free),
        ],
        1..150,
    )
}

/// Apply one [`dido_kvstore::PurgedEntry`] to the oracle. The slot at
/// `loc` was just freed, so whichever key currently occupies it must
/// have been expired — that is the equivalence under test. Matching is
/// by loc, not cookie: overwrites leave stale members in old segments,
/// and after slot recycling such a member can re-emit the loc under
/// its old cookie (the engine's index purge guards against exactly
/// this by validating loc, so a stale cookie only costs a no-op).
fn drop_purged(
    model: &mut HashMap<u8, (u64, Vec<u8>, u32)>,
    loc: u64,
    cookie: u64,
    now: u32,
) {
    let hit = model
        .iter()
        .find(|(_, (l, _, _))| *l == loc)
        .map(|(k, (_, _, d))| (*k, *d));
    if let Some((k, deadline)) = hit {
        assert!(
            deadline != 0 && now >= deadline,
            "purged an unexpired key {k}"
        );
        model.remove(&k);
    } else {
        // Every live slot belongs to exactly one oracle key, so a
        // purge that frees a slot must always land on one.
        panic!("purged loc {loc} (cookie {cookie}) unknown to the oracle");
    }
}

fn key_bytes(k: u8) -> Vec<u8> {
    format!("pkey-{k:03}").into_bytes()
}

fn value_bytes(k: u8, len: u8) -> Vec<u8> {
    (0..len).map(|i| k.wrapping_add(i)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn store_agrees_with_reference_map(ops in ops()) {
        // Generous capacity: evictions are exercised by the dedicated
        // unit tests; here we verify exact content agreement.
        let store = ObjectStore::new(1 << 20);
        // key -> (loc, value)
        let mut model: HashMap<u8, (u64, Vec<u8>)> = HashMap::new();

        for op in ops {
            match op {
                Op::Put(k, len) => {
                    let key = key_bytes(k);
                    let value = value_bytes(k, len);
                    let out = store.allocate(&key, &value).expect("capacity is ample");
                    prop_assert!(out.evicted.is_none(), "no eviction expected");
                    // Putting over an existing key leaves the old object
                    // as garbage (memcached semantics); free it like the
                    // single-query path would once unreachable.
                    if let Some((old, _)) = model.insert(k, (out.loc, value)) {
                        if old != out.loc {
                            store.free(old);
                        }
                    }
                }
                Op::Free(k) => {
                    if let Some((loc, _)) = model.remove(&k) {
                        prop_assert!(store.free(loc), "model says {k} was live");
                        prop_assert!(!store.free(loc), "double free must fail");
                    }
                }
                Op::Check(k) => {
                    if let Some((loc, value)) = model.get(&k) {
                        prop_assert!(store.key_matches(*loc, &key_bytes(k)));
                        let mut v = Vec::new();
                        store.read_value(*loc, &mut v);
                        prop_assert_eq!(&v, value);
                        let (klen, vlen) = store.object_lens(*loc);
                        prop_assert_eq!(klen, key_bytes(k).len());
                        prop_assert_eq!(vlen, value.len());
                    }
                }
            }
            // Global invariants.
            prop_assert_eq!(store.live_objects(), model.len());
            prop_assert!(store.bytes_carved() <= store.capacity());
        }
    }

    #[test]
    fn expiry_is_equivalent_to_delete(ops in ttl_ops()) {
        // Oracle: key -> (loc, value, deadline). Entries leave the
        // oracle exactly when their slot is freed (lazy purge, sweep,
        // or explicit free) — never merely because time passed — so
        // `live_objects` must track the oracle at every step.
        let store = ObjectStore::new(1 << 20);
        let mut model: HashMap<u8, (u64, Vec<u8>, u32)> = HashMap::new();
        let mut now: u32 = 1_000;

        for op in ops {
            match op {
                TtlOp::Put(k, len, ttl) => {
                    let key = key_bytes(k);
                    let value = value_bytes(k, len);
                    let deadline = if ttl == 0 { 0 } else { now + u32::from(ttl) };
                    let out = store
                        .allocate_with(&key, &value, deadline, 0, now, u64::from(k))
                        .expect("capacity is ample");
                    prop_assert!(out.evicted.is_none(), "no CLOCK eviction expected");
                    for p in &out.reclaimed {
                        drop_purged(&mut model, p.loc, p.cookie, now);
                    }
                    if let Some((old, _, _)) = model.insert(k, (out.loc, value, deadline)) {
                        if old != out.loc {
                            store.free(old);
                        }
                    }
                }
                TtlOp::Advance(secs) => now += u32::from(secs),
                TtlOp::Get(k) => {
                    if let Some((loc, value, deadline)) = model.get(&k) {
                        let expired = *deadline != 0 && now >= *deadline;
                        prop_assert_eq!(store.is_expired(*loc, now), expired);
                        let (meta_deadline, _) = store.object_meta(*loc);
                        prop_assert_eq!(meta_deadline, *deadline);
                        if expired {
                            // The lazy path: KC sees the passed deadline
                            // and purges — afterwards the key is exactly
                            // as gone as a DELETE would leave it.
                            prop_assert!(store.expire_if_due(*loc, now));
                            prop_assert!(!store.free(*loc), "purge freed the slot");
                            let loc = *loc;
                            model.remove(&k);
                            prop_assert!(!store.expire_if_due(loc, now), "double purge");
                        } else {
                            prop_assert!(store.key_matches(*loc, &key_bytes(k)));
                            let mut v = Vec::new();
                            store.read_value(*loc, &mut v);
                            prop_assert_eq!(&v, value);
                            prop_assert!(!store.expire_if_due(*loc, now), "not due yet");
                        }
                    }
                }
                TtlOp::Sweep => {
                    let mut purged = Vec::new();
                    store.sweep_expired(now, usize::MAX, &mut purged);
                    for p in &purged {
                        drop_purged(&mut model, p.loc, p.cookie, now);
                    }
                }
                TtlOp::Free(k) => {
                    if let Some((loc, _, _)) = model.remove(&k) {
                        prop_assert!(store.free(loc), "model says {} was live", k);
                    }
                }
            }
            prop_assert_eq!(store.live_objects(), model.len());
        }

        // Endgame: after every deadline has long passed, one unbounded
        // sweep must reclaim every TTL'd object — proactive expiry is a
        // bulk DELETE of everything mortal. Immortals survive.
        now = now.saturating_add(1 << 20);
        let mut purged = Vec::new();
        store.sweep_expired(now, usize::MAX, &mut purged);
        for p in &purged {
            drop_purged(&mut model, p.loc, p.cookie, now);
        }
        prop_assert!(
            model.values().all(|(_, _, deadline)| *deadline == 0),
            "a mortal key outlived the final sweep"
        );
        prop_assert_eq!(store.live_objects(), model.len());
        for (k, (loc, value, _)) in &model {
            prop_assert!(store.key_matches(*loc, &key_bytes(*k)));
            let mut v = Vec::new();
            store.read_value(*loc, &mut v);
            prop_assert_eq!(&v, value);
        }
    }

    #[test]
    fn allocation_failures_never_corrupt_live_objects(
        n_fill in 1usize..30,
        big in 200u32..4000,
    ) {
        // Fill a tiny store, then hammer it with objects too large for
        // any class; existing data must stay intact.
        let store = ObjectStore::new(1 << 10);
        let mut live = Vec::new();
        for i in 0..n_fill {
            let key = format!("fill-{i:02}");
            match store.allocate(key.as_bytes(), b"v") {
                Ok(out) => live.push((out.loc, key)),
                Err(_) => break,
            }
        }
        let oversized = vec![0u8; big as usize + (1 << 10)];
        for _ in 0..4 {
            let r = store.allocate(b"boom", &oversized);
            prop_assert!(matches!(r, Err(StoreError::ObjectTooLarge) | Err(StoreError::OutOfMemory)));
        }
        for (loc, key) in live {
            prop_assert!(store.key_matches(loc, key.as_bytes()));
        }
    }
}
