//! Model-based property tests for the object store: allocate / free /
//! overwrite sequences must agree with a reference map, and capacity
//! invariants must hold throughout.

use dido_kvstore::{ObjectStore, StoreError};
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Op {
    /// Store key `k` with a value of `len` bytes.
    Put(u8, u8),
    /// Free key `k`'s current object (if any).
    Free(u8),
    /// Read key `k` back.
    Check(u8),
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (any::<u8>(), any::<u8>()).prop_map(|(k, l)| Op::Put(k, l)),
            any::<u8>().prop_map(Op::Free),
            any::<u8>().prop_map(Op::Check),
        ],
        1..150,
    )
}

fn key_bytes(k: u8) -> Vec<u8> {
    format!("pkey-{k:03}").into_bytes()
}

fn value_bytes(k: u8, len: u8) -> Vec<u8> {
    (0..len).map(|i| k.wrapping_add(i)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn store_agrees_with_reference_map(ops in ops()) {
        // Generous capacity: evictions are exercised by the dedicated
        // unit tests; here we verify exact content agreement.
        let store = ObjectStore::new(1 << 20);
        // key -> (loc, value)
        let mut model: HashMap<u8, (u64, Vec<u8>)> = HashMap::new();

        for op in ops {
            match op {
                Op::Put(k, len) => {
                    let key = key_bytes(k);
                    let value = value_bytes(k, len);
                    let out = store.allocate(&key, &value).expect("capacity is ample");
                    prop_assert!(out.evicted.is_none(), "no eviction expected");
                    // Putting over an existing key leaves the old object
                    // as garbage (memcached semantics); free it like the
                    // single-query path would once unreachable.
                    if let Some((old, _)) = model.insert(k, (out.loc, value)) {
                        if old != out.loc {
                            store.free(old);
                        }
                    }
                }
                Op::Free(k) => {
                    if let Some((loc, _)) = model.remove(&k) {
                        prop_assert!(store.free(loc), "model says {k} was live");
                        prop_assert!(!store.free(loc), "double free must fail");
                    }
                }
                Op::Check(k) => {
                    if let Some((loc, value)) = model.get(&k) {
                        prop_assert!(store.key_matches(*loc, &key_bytes(k)));
                        let mut v = Vec::new();
                        store.read_value(*loc, &mut v);
                        prop_assert_eq!(&v, value);
                        let (klen, vlen) = store.object_lens(*loc);
                        prop_assert_eq!(klen, key_bytes(k).len());
                        prop_assert_eq!(vlen, value.len());
                    }
                }
            }
            // Global invariants.
            prop_assert_eq!(store.live_objects(), model.len());
            prop_assert!(store.bytes_carved() <= store.capacity());
        }
    }

    #[test]
    fn allocation_failures_never_corrupt_live_objects(
        n_fill in 1usize..30,
        big in 200u32..4000,
    ) {
        // Fill a tiny store, then hammer it with objects too large for
        // any class; existing data must stay intact.
        let store = ObjectStore::new(1 << 10);
        let mut live = Vec::new();
        for i in 0..n_fill {
            let key = format!("fill-{i:02}");
            match store.allocate(key.as_bytes(), b"v") {
                Ok(out) => live.push((out.loc, key)),
                Err(_) => break,
            }
        }
        let oversized = vec![0u8; big as usize + (1 << 10)];
        for _ in 0..4 {
            let r = store.allocate(b"boom", &oversized);
            prop_assert!(matches!(r, Err(StoreError::ObjectTooLarge) | Err(StoreError::OutOfMemory)));
        }
        for (loc, key) in live {
            prop_assert!(store.key_matches(loc, key.as_bytes()));
        }
    }
}
