//! Slab-allocated key-value object store with CLOCK eviction.
//!
//! Mirrors the memcached/Mega-KV storage design the paper assumes:
//! objects live in one shared arena, carved into power-of-two size
//! classes; when a class runs out of memory a SET *evicts* an existing
//! object — which is why each SET generates an Insert **and** a Delete
//! index operation (paper §II-C-2) — and each object carries a frequency
//! counter plus a sampling timestamp for the runtime skewness estimate
//! (paper §IV-B).

use crate::arena::Arena;
use parking_lot::Mutex;
use std::collections::VecDeque;

/// Object header layout (little endian):
/// `key_len:u16 | val_len:u32 | freq:u32 | epoch:u32 | class:u8 | flags:u8
///  | ttl:u32 | client_flags:u32`.
///
/// `ttl` (seconds, 0 = no expiry) and `client_flags` (opaque memcached
/// `flags`) are protocol metadata stored with the object: inert for
/// eviction today, echoed back by codecs that carry them.
pub const HEADER_SIZE: usize = 24;

const OFF_KEY_LEN: usize = 0;
const OFF_VAL_LEN: usize = 2;
const OFF_FREQ: usize = 6;
const OFF_EPOCH: usize = 10;
const OFF_CLASS: usize = 14;
const OFF_FLAGS: usize = 15;
const OFF_TTL: usize = 16;
const OFF_CLIENT_FLAGS: usize = 20;

const FLAG_LIVE: u8 = 1;
const FLAG_REFERENCED: u8 = 2;

/// Smallest size class in bytes.
const MIN_CLASS_BYTES: usize = 32;

/// Errors from the object store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreError {
    /// The object exceeds the largest size class.
    ObjectTooLarge,
    /// No free slot, no arena room left to carve, and nothing evictable
    /// in the object's size class.
    OutOfMemory,
}

/// An object displaced by an allocation; the caller must issue the
/// matching index Delete (this is what turns one SET into an Insert plus
/// a Delete in the paper's Figure 6 accounting).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvictedObject {
    /// The recycled location (same slot the new object now occupies).
    pub loc: u64,
    /// The evicted object's key, needed to delete its index entry.
    pub key: Vec<u8>,
}

/// Result of a successful allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllocOutcome {
    /// Location of the stored object (index this under the key).
    pub loc: u64,
    /// Object evicted to make room, if any.
    pub evicted: Option<EvictedObject>,
}

#[derive(Default)]
struct ClassLists {
    free: Vec<u64>,
    /// CLOCK ring of allocation events. May contain dead or duplicate
    /// entries (skipped/compacted lazily); every live object has at
    /// least one entry.
    ring: VecDeque<u64>,
    live: usize,
}

/// The key-value object store.
pub struct ObjectStore {
    arena: Arena,
    bump: Mutex<usize>,
    classes: Vec<Mutex<ClassLists>>,
    class_count: usize,
}

impl ObjectStore {
    /// A store over `capacity` bytes of (simulated) shared memory.
    ///
    /// # Panics
    /// Panics if `capacity < MIN_CLASS_BYTES`.
    #[must_use]
    pub fn new(capacity: usize) -> ObjectStore {
        assert!(capacity >= MIN_CLASS_BYTES, "capacity too small");
        let max_class_bytes = capacity.next_power_of_two().min(1 << 22);
        let class_count = (max_class_bytes / MIN_CLASS_BYTES).ilog2() as usize + 1;
        ObjectStore {
            arena: Arena::new(capacity),
            bump: Mutex::new(0),
            classes: (0..class_count).map(|_| Mutex::new(ClassLists::default())).collect(),
            class_count,
        }
    }

    /// Arena capacity in bytes.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.arena.capacity()
    }

    /// Bytes carved from the arena so far.
    #[must_use]
    pub fn bytes_carved(&self) -> usize {
        *self.bump.lock()
    }

    /// Number of live objects.
    #[must_use]
    pub fn live_objects(&self) -> usize {
        self.classes.iter().map(|c| c.lock().live).sum()
    }

    fn class_of(&self, total: usize) -> Option<(usize, usize)> {
        let mut size = MIN_CLASS_BYTES;
        for idx in 0..self.class_count {
            if total <= size {
                return Some((idx, size));
            }
            size *= 2;
        }
        None
    }

    /// Size-class byte size an object of `key_len`/`val_len` lands in
    /// (for capacity planning and the cost model's cached-object count).
    #[must_use]
    pub fn class_bytes_for(&self, key_len: usize, val_len: usize) -> Option<usize> {
        self.class_of(HEADER_SIZE + key_len + val_len).map(|(_, s)| s)
    }

    /// Store `key`/`value`, evicting a same-class object if necessary.
    pub fn allocate(&self, key: &[u8], value: &[u8]) -> Result<AllocOutcome, StoreError> {
        self.allocate_with(key, value, 0, 0)
    }

    /// Store `key`/`value` with protocol metadata (TTL seconds and
    /// opaque client flags; 0 = unset), evicting a same-class object if
    /// necessary.
    pub fn allocate_with(
        &self,
        key: &[u8],
        value: &[u8],
        ttl: u32,
        client_flags: u32,
    ) -> Result<AllocOutcome, StoreError> {
        let total = HEADER_SIZE + key.len() + value.len();
        let (class_idx, class_size) = self.class_of(total).ok_or(StoreError::ObjectTooLarge)?;

        let mut evicted = None;
        let loc = {
            let mut lists = self.classes[class_idx].lock();
            if let Some(loc) = lists.free.pop() {
                Some(loc)
            } else {
                drop(lists);
                if let Some(loc) = self.carve(class_size) {
                    Some(loc)
                } else {
                    let mut lists = self.classes[class_idx].lock();
                    match self.evict_one(&mut lists) {
                        Some((loc, key)) => {
                            evicted = Some(EvictedObject { loc, key });
                            Some(loc)
                        }
                        None => None,
                    }
                }
            }
        };
        let loc = loc.ok_or(StoreError::OutOfMemory)?;

        self.write_object(loc, key, value, class_idx as u8, ttl, client_flags);
        let mut lists = self.classes[class_idx].lock();
        lists.ring.push_back(loc);
        lists.live += 1;
        if evicted.is_some() {
            // The evicted object was live until now.
            lists.live -= 1;
        }
        // Bound ring growth from free/reuse churn.
        if lists.ring.len() > 4 * lists.live.max(16) {
            let arena = &self.arena;
            lists
                .ring
                .retain(|&l| arena.read_u8(l as usize + OFF_FLAGS) & FLAG_LIVE != 0);
        }
        Ok(AllocOutcome { loc, evicted })
    }

    fn carve(&self, class_size: usize) -> Option<u64> {
        let mut bump = self.bump.lock();
        if *bump + class_size <= self.arena.capacity() {
            let loc = *bump as u64;
            *bump += class_size;
            Some(loc)
        } else {
            None
        }
    }

    /// CLOCK sweep: skip dead entries, give referenced objects a second
    /// chance, evict the first unreferenced live object.
    fn evict_one(&self, lists: &mut ClassLists) -> Option<(u64, Vec<u8>)> {
        let budget = lists.ring.len() * 2;
        for _ in 0..budget {
            let loc = lists.ring.pop_front()?;
            let off = loc as usize;
            let flags = self.arena.read_u8(off + OFF_FLAGS);
            if flags & FLAG_LIVE == 0 {
                continue; // dead entry: drop it
            }
            if flags & FLAG_REFERENCED != 0 {
                self.arena.write_u8(off + OFF_FLAGS, flags & !FLAG_REFERENCED);
                lists.ring.push_back(loc);
                continue;
            }
            let key_len = self.arena.read_u16(off + OFF_KEY_LEN) as usize;
            let key = self.arena.read_vec(off + HEADER_SIZE, key_len);
            self.arena.write_u8(off + OFF_FLAGS, 0);
            return Some((loc, key));
        }
        None
    }

    fn write_object(&self, loc: u64, key: &[u8], value: &[u8], class: u8, ttl: u32, cflags: u32) {
        let off = loc as usize;
        self.arena.write_u16(off + OFF_KEY_LEN, key.len() as u16);
        self.arena.write_u32(off + OFF_VAL_LEN, value.len() as u32);
        self.arena.write_u32(off + OFF_FREQ, 0);
        self.arena.write_u32(off + OFF_EPOCH, 0);
        self.arena.write_u8(off + OFF_CLASS, class);
        self.arena.write_u8(off + OFF_FLAGS, FLAG_LIVE);
        self.arena.write_u32(off + OFF_TTL, ttl);
        self.arena.write_u32(off + OFF_CLIENT_FLAGS, cflags);
        self.arena.write(off + HEADER_SIZE, key);
        self.arena.write(off + HEADER_SIZE + key.len(), value);
    }

    /// Protocol metadata stored with the object at `loc`: `(ttl seconds,
    /// opaque client flags)`, both 0 when the writing protocol carried
    /// none.
    #[must_use]
    pub fn object_meta(&self, loc: u64) -> (u32, u32) {
        let off = loc as usize;
        (
            self.arena.read_u32(off + OFF_TTL),
            self.arena.read_u32(off + OFF_CLIENT_FLAGS),
        )
    }

    /// Free the object at `loc` (DELETE query). Returns false if it was
    /// not live (stale location).
    pub fn free(&self, loc: u64) -> bool {
        let off = loc as usize;
        if off + HEADER_SIZE > self.arena.capacity() {
            return false;
        }
        let flags = self.arena.read_u8(off + OFF_FLAGS);
        if flags & FLAG_LIVE == 0 {
            return false;
        }
        self.arena.write_u8(off + OFF_FLAGS, 0);
        let class = self.arena.read_u8(off + OFF_CLASS) as usize;
        let mut lists = self.classes[class].lock();
        lists.free.push(loc);
        lists.live = lists.live.saturating_sub(1);
        true
    }

    /// Whether the live object at `loc` has exactly this key (the `KC`
    /// task). Stale or dead locations compare unequal.
    #[must_use]
    pub fn key_matches(&self, loc: u64, key: &[u8]) -> bool {
        let off = loc as usize;
        if off + HEADER_SIZE > self.arena.capacity() {
            return false;
        }
        if self.arena.read_u8(off + OFF_FLAGS) & FLAG_LIVE == 0 {
            return false;
        }
        if self.arena.read_u16(off + OFF_KEY_LEN) as usize != key.len() {
            return false;
        }
        self.arena.bytes_equal(off + HEADER_SIZE, key)
    }

    /// Raw address of the object header at `loc`, for issuing a
    /// software prefetch before a batched `KC`/`RD` pass touches the
    /// object. The pointer is a hint address only — safe for stale or
    /// out-of-range locations because prefetches never fault.
    #[must_use]
    pub fn object_ptr(&self, loc: u64) -> *const u8 {
        self.arena.byte_ptr(loc as usize)
    }

    /// Raw address of the object's value bytes at `loc` (header and key
    /// skipped), for prefetching ahead of `RD`. Hint address only.
    #[must_use]
    pub fn value_ptr(&self, loc: u64) -> *const u8 {
        let (key_len, _) = self.object_lens(loc);
        self.arena.byte_ptr(loc as usize + HEADER_SIZE + key_len)
    }

    /// Key and value lengths of the object at `loc`.
    #[must_use]
    pub fn object_lens(&self, loc: u64) -> (usize, usize) {
        let off = loc as usize;
        (
            self.arena.read_u16(off + OFF_KEY_LEN) as usize,
            self.arena.read_u32(off + OFF_VAL_LEN) as usize,
        )
    }

    /// Append the object's value to `dst` (the `RD` task). Returns the
    /// value length.
    pub fn read_value(&self, loc: u64, dst: &mut Vec<u8>) -> usize {
        let off = loc as usize;
        let (key_len, val_len) = self.object_lens(loc);
        self.arena.read_into(off + HEADER_SIZE + key_len, val_len, dst);
        val_len
    }

    /// Copy of the object's key.
    #[must_use]
    pub fn read_key(&self, loc: u64) -> Vec<u8> {
        let off = loc as usize;
        let (key_len, _) = self.object_lens(loc);
        self.arena.read_vec(off + HEADER_SIZE, key_len)
    }

    /// Record an access for the skewness sampler (paper §IV-B): the
    /// frequency counter resets to 1 when the object's sampling epoch is
    /// stale, otherwise increments. Also sets the CLOCK referenced bit.
    /// Returns the post-update frequency.
    pub fn touch(&self, loc: u64, epoch: u32) -> u32 {
        let off = loc as usize;
        let flags = self.arena.read_u8(off + OFF_FLAGS);
        self.arena.write_u8(off + OFF_FLAGS, flags | FLAG_REFERENCED);
        if self.arena.read_u32(off + OFF_EPOCH) != epoch {
            self.arena.write_u32(off + OFF_EPOCH, epoch);
            self.arena.write_u32(off + OFF_FREQ, 1);
            1
        } else {
            self.arena.fetch_add_u32(off + OFF_FREQ, 1) + 1
        }
    }

    /// The object's current sampling frequency and epoch.
    #[must_use]
    pub fn freq(&self, loc: u64) -> (u32, u32) {
        let off = loc as usize;
        (
            self.arena.read_u32(off + OFF_FREQ),
            self.arena.read_u32(off + OFF_EPOCH),
        )
    }

    /// Restore CLOCK/sampling metadata onto a (just-written) object:
    /// shard migration copies an object into its new shard and carries
    /// the donor's access frequency and sampling epoch over, so skew
    /// estimation and eviction ordering survive a reshard instead of
    /// every migrated object looking cold.
    pub fn restore_clock(&self, loc: u64, freq: u32, epoch: u32) {
        let off = loc as usize;
        self.arena.write_u32(off + OFF_FREQ, freq);
        self.arena.write_u32(off + OFF_EPOCH, epoch);
        if freq > 0 {
            let flags = self.arena.read_u8(off + OFF_FLAGS);
            self.arena.write_u8(off + OFF_FLAGS, flags | FLAG_REFERENCED);
        }
    }
}

impl std::fmt::Debug for ObjectStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObjectStore")
            .field("capacity", &self.capacity())
            .field("carved", &self.bytes_carved())
            .field("live_objects", &self.live_objects())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_and_read_back() {
        let s = ObjectStore::new(4096);
        let out = s.allocate(b"key-1", b"value-1").unwrap();
        assert!(out.evicted.is_none());
        assert!(s.key_matches(out.loc, b"key-1"));
        assert!(!s.key_matches(out.loc, b"key-2"));
        let mut v = Vec::new();
        assert_eq!(s.read_value(out.loc, &mut v), 7);
        assert_eq!(v, b"value-1");
        assert_eq!(s.read_key(out.loc), b"key-1");
        assert_eq!(s.live_objects(), 1);
    }

    #[test]
    fn protocol_metadata_round_trips() {
        let s = ObjectStore::new(4096);
        let plain = s.allocate(b"plain", b"v").unwrap();
        assert_eq!(s.object_meta(plain.loc), (0, 0));
        let meta = s.allocate_with(b"meta", b"v", 300, 0xDEAD_BEEF).unwrap();
        assert_eq!(s.object_meta(meta.loc), (300, 0xDEAD_BEEF));
        assert!(s.key_matches(meta.loc, b"meta"));
        let mut v = Vec::new();
        s.read_value(meta.loc, &mut v);
        assert_eq!(v, b"v");
        // A recycled slot must not leak the previous object's metadata.
        assert!(s.free(meta.loc));
        let reused = s.allocate(b"zero", b"v").unwrap();
        assert_eq!(reused.loc, meta.loc);
        assert_eq!(s.object_meta(reused.loc), (0, 0));
    }

    #[test]
    fn free_then_reuse_same_class() {
        let s = ObjectStore::new(4096);
        let a = s.allocate(b"aaaa", b"1111").unwrap();
        assert!(s.free(a.loc));
        assert!(!s.free(a.loc), "double free must fail");
        let b = s.allocate(b"bbbb", b"2222").unwrap();
        assert_eq!(b.loc, a.loc, "freed slot should be recycled");
        assert!(s.key_matches(b.loc, b"bbbb"));
        assert!(!s.key_matches(b.loc, b"aaaa"), "stale key must not match");
    }

    #[test]
    fn eviction_kicks_in_when_full() {
        // Room for exactly 4 objects of the 32-byte class.
        let s = ObjectStore::new(128);
        let mut locs = Vec::new();
        for i in 0..4 {
            let key = format!("k{i}");
            locs.push(s.allocate(key.as_bytes(), b"v").unwrap());
            assert!(locs[i].evicted.is_none());
        }
        let out = s.allocate(b"k4", b"v").unwrap();
        let ev = out.evicted.expect("must evict");
        assert_eq!(ev.key, b"k0", "CLOCK evicts the oldest unreferenced object");
        assert_eq!(ev.loc, out.loc);
        assert_eq!(s.live_objects(), 4);
    }

    #[test]
    fn referenced_objects_get_a_second_chance() {
        let s = ObjectStore::new(128);
        for i in 0..4 {
            let key = format!("k{i}");
            s.allocate(key.as_bytes(), b"v").unwrap();
        }
        // Touch k0 so the clock skips it once.
        // (loc of k0 is 0: the first carve.)
        s.touch(0, 1);
        let out = s.allocate(b"k4", b"v").unwrap();
        assert_eq!(out.evicted.unwrap().key, b"k1");
        assert!(s.key_matches(0, b"k0"), "referenced object survived");
    }

    #[test]
    fn too_large_object_is_rejected() {
        let s = ObjectStore::new(1024);
        let big = vec![0u8; 8 * 1024 * 1024];
        assert_eq!(s.allocate(b"k", &big), Err(StoreError::ObjectTooLarge));
    }

    #[test]
    fn out_of_memory_when_nothing_evictable() {
        // Fill the arena with 32-byte-class objects, then ask for a
        // 64-byte-class object: eviction cannot cross classes, so the
        // allocation must fail even though memory exists.
        let s = ObjectStore::new(96);
        for i in 0..3 {
            s.allocate(format!("k{i}").as_bytes(), b"v").unwrap();
        }
        let value = vec![1u8; 40];
        assert_eq!(s.allocate(b"big", &value), Err(StoreError::OutOfMemory));
    }

    #[test]
    fn size_classes_are_powers_of_two() {
        let s = ObjectStore::new(1 << 20);
        assert_eq!(s.class_bytes_for(4, 4), Some(32));
        assert_eq!(s.class_bytes_for(8, 17), Some(64));
        assert_eq!(s.class_bytes_for(128, 1024), Some(2048));
        assert!(s.class_bytes_for(0, 1 << 23).is_none());
    }

    #[test]
    fn touch_tracks_epochs_and_freq() {
        let s = ObjectStore::new(4096);
        let out = s.allocate(b"key", b"val").unwrap();
        assert_eq!(s.touch(out.loc, 7), 1);
        assert_eq!(s.touch(out.loc, 7), 2);
        assert_eq!(s.touch(out.loc, 7), 3);
        assert_eq!(s.freq(out.loc), (3, 7));
        // New sampling epoch resets.
        assert_eq!(s.touch(out.loc, 8), 1);
        assert_eq!(s.freq(out.loc), (1, 8));
    }

    #[test]
    fn lens_and_capacity_reporting() {
        let s = ObjectStore::new(4096);
        let out = s.allocate(b"abc", b"defgh").unwrap();
        assert_eq!(s.object_lens(out.loc), (3, 5));
        assert!(s.bytes_carved() >= 32);
        assert_eq!(s.capacity(), 4096);
    }

    #[test]
    fn many_objects_across_classes() {
        let s = ObjectStore::new(1 << 20);
        let mut locs = Vec::new();
        for i in 0..1000u32 {
            let key = format!("key-{i}");
            let value = vec![b'x'; (i % 300) as usize];
            let out = s.allocate(key.as_bytes(), &value).unwrap();
            locs.push((out.loc, key, value));
        }
        assert_eq!(s.live_objects(), 1000);
        for (loc, key, value) in locs {
            assert!(s.key_matches(loc, key.as_bytes()));
            let mut v = Vec::new();
            s.read_value(loc, &mut v);
            assert_eq!(v, value);
        }
    }

    #[test]
    fn concurrent_allocate_and_free() {
        use std::sync::Arc;
        let s = Arc::new(ObjectStore::new(1 << 22));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for i in 0..2000u32 {
                        let key = format!("t{t}-k{i}");
                        let out = s.allocate(key.as_bytes(), b"payload").unwrap();
                        assert!(s.key_matches(out.loc, key.as_bytes()));
                        if i % 3 == 0 {
                            assert!(s.free(out.loc));
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }
}
