//! Slab-allocated key-value object store with CLOCK eviction and
//! TTL-bucketed segment reclamation.
//!
//! Mirrors the memcached/Mega-KV storage design the paper assumes:
//! objects live in one shared arena, carved into power-of-two size
//! classes; when a class runs out of memory a SET *evicts* an existing
//! object — which is why each SET generates an Insert **and** a Delete
//! index operation (paper §II-C-2) — and each object carries a frequency
//! counter plus a sampling timestamp for the runtime skewness estimate
//! (paper §IV-B).
//!
//! TTL handling follows the Segcache-lineage design: every allocation
//! with a deadline joins a *segment* — a batch of same-class objects
//! whose deadlines fall in the same bucket window — so the sweeper
//! reclaims whole expired segments in O(segment members) instead of
//! scanning the arena per object. Expiry decisions are clock-free at
//! this layer: every API that needs the time takes an explicit `now`
//! (unix seconds), so tests drive a mock clock and never sleep.
//!
//! Allocation falls back across classes in a fixed order: same-class
//! free slot → fresh carve → same-class CLOCK eviction → reclaim an
//! expired segment of *any* class → borrow a larger class's slot (free
//! first, then CLOCK) → out of memory. Borrowed slots keep the slot's
//! real class in the header so they return to the right free list, and
//! the rounding waste shows up in the per-class fragmentation gauge.

use crate::arena::Arena;
use dido_model::deadline_expired;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};

/// Object header layout (little endian):
/// `key_len:u16 | val_len:u32 | freq:u32 | epoch:u32 | class:u8 | flags:u8
///  | deadline:u32 | client_flags:u32`.
///
/// `deadline` is the absolute unix-seconds expiry (0 = never expires),
/// already converted from the protocol-relative TTL by the engine;
/// `client_flags` is the opaque memcached `flags` word, echoed back by
/// codecs that carry it.
pub const HEADER_SIZE: usize = 24;

const OFF_KEY_LEN: usize = 0;
const OFF_VAL_LEN: usize = 2;
const OFF_FREQ: usize = 6;
const OFF_EPOCH: usize = 10;
const OFF_CLASS: usize = 14;
const OFF_FLAGS: usize = 15;
const OFF_DEADLINE: usize = 16;
const OFF_CLIENT_FLAGS: usize = 20;

const FLAG_LIVE: u8 = 1;
const FLAG_REFERENCED: u8 = 2;

/// Smallest size class in bytes.
const MIN_CLASS_BYTES: usize = 32;

/// Objects per segment before it seals and becomes sweepable as a unit.
const SEGMENT_SLOTS: usize = 512;

/// TTL-bucket width in seconds: allocations whose deadlines land in the
/// same window share a segment, so a sealed segment expires as a whole
/// within one bucket width of its earliest member.
const BUCKET_SECS: u32 = 8;

/// Open (unsealed) segments kept per class; when a new bucket would
/// exceed this, the segment closest to expiring is sealed early.
const MAX_OPEN_SEGMENTS: usize = 4;

/// What the `KC` task found at a candidate location (see
/// [`ObjectStore::probe`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeOutcome {
    /// Dead slot, stale location, or a different key.
    Miss,
    /// The queried key, live and unexpired.
    Hit,
    /// The queried key, but past its deadline.
    Expired,
}

/// Errors from the object store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreError {
    /// The object exceeds the largest size class.
    ObjectTooLarge,
    /// No free slot, no arena room left to carve, and nothing evictable
    /// in the object's size class or reclaimable/borrowable elsewhere.
    OutOfMemory,
}

/// An object displaced by an allocation; the caller must issue the
/// matching index Delete (this is what turns one SET into an Insert plus
/// a Delete in the paper's Figure 6 accounting).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvictedObject {
    /// The recycled location (same slot the new object now occupies).
    pub loc: u64,
    /// The evicted object's key, needed to delete its index entry.
    pub key: Vec<u8>,
}

/// An expired object bulk-purged during segment reclamation. Its slot is
/// already back on the free list; the caller must drop the matching
/// index entry, identified by the key-hash cookie recorded at
/// allocation time (no key bytes are re-read on the reclaim path).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PurgedEntry {
    /// The freed location.
    pub loc: u64,
    /// The 64-bit key hash supplied to [`ObjectStore::allocate_with`].
    pub cookie: u64,
}

/// Result of a successful allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllocOutcome {
    /// Location of the stored object (index this under the key).
    pub loc: u64,
    /// Object evicted to make room, if any.
    pub evicted: Option<EvictedObject>,
    /// Expired objects purged wholesale from reclaimed segments while
    /// satisfying this allocation; empty on the common path.
    pub reclaimed: Vec<PurgedEntry>,
}

/// Point-in-time occupancy of one slab size class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClassStats {
    /// Slot size of this class in bytes.
    pub class_bytes: usize,
    /// Live objects stored in slots of this class.
    pub live_objects: usize,
    /// Carved-but-unoccupied slots on the free list.
    pub free_slots: usize,
    /// Bytes of live object data (headers included) in this class.
    pub live_bytes: usize,
    /// Slot-rounding plus cross-class-borrow waste: Σ (slot bytes −
    /// object bytes) over live objects in this class's slots.
    pub frag_bytes: usize,
    /// Open (unsealed) TTL segments currently accepting members.
    pub open_segments: usize,
}

/// Cumulative expiry-reclamation counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExpiryStats {
    /// Objects freed by whole-segment reclamation (sweeper or
    /// allocation-pressure fallback).
    pub expired_proactive: u64,
    /// Segments reclaimed as a unit.
    pub segments_reclaimed: u64,
    /// Sealed segments currently awaiting expiry (gauge).
    pub sealed_segments: u64,
}

/// A batch of same-class allocations whose deadlines share a bucket
/// window. Members may be stale (freed, evicted, or recycled since
/// joining); reclamation revalidates each slot before freeing it.
struct Segment {
    bucket: u32,
    max_deadline: u32,
    members: Vec<(u64, u64)>, // (loc, key-hash cookie)
}

#[derive(Default)]
struct ClassLists {
    free: Vec<u64>,
    /// CLOCK ring of allocation events. May contain dead or duplicate
    /// entries (skipped/compacted lazily); every live object has at
    /// least one entry.
    ring: VecDeque<u64>,
    live: usize,
    live_bytes: usize,
    frag_bytes: usize,
    open: Vec<Segment>,
}

/// The key-value object store.
pub struct ObjectStore {
    arena: Arena,
    bump: Mutex<usize>,
    classes: Vec<Mutex<ClassLists>>,
    class_count: usize,
    /// Full segments waiting for their bucket window to pass.
    sealed: Mutex<Vec<Segment>>,
    expired_proactive: AtomicU64,
    segments_reclaimed: AtomicU64,
    /// Bumped (before the new bytes are written) every time an
    /// allocation reuses a previously-occupied slot. Readers snapshot it
    /// before validating a location and recheck after copying: an
    /// unchanged generation proves no recycle overlapped the read, so
    /// the per-query key recompare can be skipped (seqlock-style).
    recycle_gen: AtomicU64,
}

impl ObjectStore {
    /// A store over `capacity` bytes of (simulated) shared memory.
    ///
    /// # Panics
    /// Panics if `capacity < MIN_CLASS_BYTES`.
    #[must_use]
    pub fn new(capacity: usize) -> ObjectStore {
        assert!(capacity >= MIN_CLASS_BYTES, "capacity too small");
        let max_class_bytes = capacity.next_power_of_two().min(1 << 22);
        let class_count = (max_class_bytes / MIN_CLASS_BYTES).ilog2() as usize + 1;
        ObjectStore {
            arena: Arena::new(capacity),
            bump: Mutex::new(0),
            classes: (0..class_count).map(|_| Mutex::new(ClassLists::default())).collect(),
            class_count,
            sealed: Mutex::new(Vec::new()),
            expired_proactive: AtomicU64::new(0),
            segments_reclaimed: AtomicU64::new(0),
            recycle_gen: AtomicU64::new(0),
        }
    }

    /// Current slot-recycle generation. Sample (Acquire) before
    /// resolving a location; if [`ObjectStore::recycle_gen_validate`]
    /// returns the same value after the value bytes were copied, no slot
    /// anywhere was recycled in between and the copy is untorn.
    #[must_use]
    #[inline]
    pub fn recycle_gen(&self) -> u64 {
        self.recycle_gen.load(Ordering::Acquire)
    }

    /// Recycle generation for the read-validation side: the fence keeps
    /// the caller's preceding value-byte reads from drifting past the
    /// load (the seqlock reader protocol).
    #[must_use]
    #[inline]
    pub fn recycle_gen_validate(&self) -> u64 {
        std::sync::atomic::fence(Ordering::Acquire);
        self.recycle_gen.load(Ordering::Relaxed)
    }

    /// Arena capacity in bytes.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.arena.capacity()
    }

    /// Bytes carved from the arena so far.
    #[must_use]
    pub fn bytes_carved(&self) -> usize {
        *self.bump.lock()
    }

    /// Number of live objects.
    #[must_use]
    pub fn live_objects(&self) -> usize {
        self.classes.iter().map(|c| c.lock().live).sum()
    }

    fn class_of(&self, total: usize) -> Option<(usize, usize)> {
        let mut size = MIN_CLASS_BYTES;
        for idx in 0..self.class_count {
            if total <= size {
                return Some((idx, size));
            }
            size *= 2;
        }
        None
    }

    fn class_size(idx: usize) -> usize {
        MIN_CLASS_BYTES << idx
    }

    /// Size-class byte size an object of `key_len`/`val_len` lands in
    /// (for capacity planning and the cost model's cached-object count).
    #[must_use]
    pub fn class_bytes_for(&self, key_len: usize, val_len: usize) -> Option<usize> {
        self.class_of(HEADER_SIZE + key_len + val_len).map(|(_, s)| s)
    }

    /// Store `key`/`value` with no expiry or metadata, evicting if
    /// necessary.
    pub fn allocate(&self, key: &[u8], value: &[u8]) -> Result<AllocOutcome, StoreError> {
        self.allocate_with(key, value, 0, 0, 0, 0)
    }

    /// Store `key`/`value` with protocol metadata, evicting or
    /// reclaiming if necessary.
    ///
    /// `deadline` is the absolute unix-seconds expiry (0 = never; the
    /// engine converts relative TTLs via `dido_model::ttl_to_deadline`),
    /// `client_flags` the opaque memcached flags word, `now` the current
    /// unix time used for expiry-aware eviction and segment reclaim, and
    /// `cookie` the 64-bit key hash recorded with the segment membership
    /// so reclamation can name the index entry to purge without
    /// re-reading key bytes (ignored when `deadline` is 0).
    pub fn allocate_with(
        &self,
        key: &[u8],
        value: &[u8],
        deadline: u32,
        client_flags: u32,
        now: u32,
        cookie: u64,
    ) -> Result<AllocOutcome, StoreError> {
        let total = HEADER_SIZE + key.len() + value.len();
        let (class_idx, class_size) = self.class_of(total).ok_or(StoreError::ObjectTooLarge)?;

        let mut evicted = None;
        let mut reclaimed = Vec::new();
        // A never-before-used slot can't be mid-read by anyone; only
        // reuse of an old slot has to bump the recycle generation.
        let mut fresh_carve = false;

        // Same-class free slot → fresh carve → same-class CLOCK.
        let mut slot = {
            let mut lists = self.classes[class_idx].lock();
            if let Some(loc) = lists.free.pop() {
                Some((loc, class_idx, class_size))
            } else {
                drop(lists);
                if let Some(loc) = self.carve(class_size) {
                    fresh_carve = true;
                    Some((loc, class_idx, class_size))
                } else {
                    let mut lists = self.classes[class_idx].lock();
                    match self.evict_one(&mut lists, class_size, now) {
                        Some((loc, key)) => {
                            evicted = Some(EvictedObject { loc, key });
                            Some((loc, class_idx, class_size))
                        }
                        None => None,
                    }
                }
            }
        };

        // Reclaim expired segments of any class, then retry this class's
        // free list (reclaim may have refilled it).
        if slot.is_none() {
            self.reclaim_expired(now, usize::MAX, &mut reclaimed);
            if !reclaimed.is_empty() {
                let mut lists = self.classes[class_idx].lock();
                slot = lists.free.pop().map(|loc| (loc, class_idx, class_size));
            }
        }

        // Borrow a slot from a larger class: its free list first, then
        // CLOCK eviction. The slot keeps its real class so it returns to
        // the right free list; the size gap is fragmentation.
        if slot.is_none() {
            slot = self.borrow_larger(class_idx, now, &mut evicted);
        }

        let (loc, slot_class, slot_size) = slot.ok_or(StoreError::OutOfMemory)?;
        if !fresh_carve {
            // AcqRel: the new object's byte writes below cannot be
            // reordered before the bump, so a reader that saw the old
            // generation after its copy cannot have read the new bytes.
            self.recycle_gen.fetch_add(1, Ordering::AcqRel);
        }
        self.write_object(loc, key, value, slot_class as u8, deadline, client_flags);

        let mut lists = self.classes[slot_class].lock();
        // Publish the object (and its ring entry and accounting) under
        // the class lock: a concurrent sweep of a stale segment member
        // pointing at this slot either sees the dead flags and skips, or
        // claims a fully-accounted object — never a half-counted one.
        self.arena.write_u8(loc as usize + OFF_FLAGS, FLAG_LIVE);
        lists.ring.push_back(loc);
        lists.live += 1;
        lists.live_bytes += total;
        lists.frag_bytes += slot_size - total;
        // Bound ring growth from free/reuse churn.
        if lists.ring.len() > 4 * lists.live.max(16) {
            let arena = &self.arena;
            lists
                .ring
                .retain(|&l| arena.read_u8(l as usize + OFF_FLAGS) & FLAG_LIVE != 0);
        }
        if deadline != 0 {
            self.join_segment(&mut lists, loc, cookie, deadline);
        }
        drop(lists);

        Ok(AllocOutcome {
            loc,
            evicted,
            reclaimed,
        })
    }

    fn carve(&self, class_size: usize) -> Option<u64> {
        let mut bump = self.bump.lock();
        if *bump + class_size <= self.arena.capacity() {
            let loc = *bump as u64;
            *bump += class_size;
            Some(loc)
        } else {
            None
        }
    }

    fn borrow_larger(
        &self,
        class_idx: usize,
        now: u32,
        evicted: &mut Option<EvictedObject>,
    ) -> Option<(u64, usize, usize)> {
        // Free slots anywhere above cost nothing; only then evict live
        // data from a larger class. Smallest sufficient class first, to
        // minimize the rounding waste.
        for c in class_idx + 1..self.class_count {
            let mut lists = self.classes[c].lock();
            if let Some(loc) = lists.free.pop() {
                return Some((loc, c, Self::class_size(c)));
            }
        }
        for c in class_idx + 1..self.class_count {
            let mut lists = self.classes[c].lock();
            if let Some((loc, key)) = self.evict_one(&mut lists, Self::class_size(c), now) {
                *evicted = Some(EvictedObject { loc, key });
                return Some((loc, c, Self::class_size(c)));
            }
        }
        None
    }

    /// CLOCK sweep: skip dead entries, give referenced objects a second
    /// chance (unless they are expired, which forfeits it), evict the
    /// first eligible live object. Decrements the class's live
    /// accounting for the victim.
    fn evict_one(
        &self,
        lists: &mut ClassLists,
        class_size: usize,
        now: u32,
    ) -> Option<(u64, Vec<u8>)> {
        let budget = lists.ring.len() * 2;
        for _ in 0..budget {
            let loc = lists.ring.pop_front()?;
            let off = loc as usize;
            let flags = self.arena.read_u8(off + OFF_FLAGS);
            if flags & FLAG_LIVE == 0 {
                continue; // dead entry: drop it
            }
            let expired = deadline_expired(self.arena.read_u32(off + OFF_DEADLINE), now);
            if flags & FLAG_REFERENCED != 0 && !expired {
                self.arena.fetch_and_u8(off + OFF_FLAGS, !FLAG_REFERENCED);
                lists.ring.push_back(loc);
                continue;
            }
            // Claim the slot atomically so a racing free() cannot also
            // hand it out.
            let prev = self
                .arena
                .fetch_and_u8(off + OFF_FLAGS, !(FLAG_LIVE | FLAG_REFERENCED));
            if prev & FLAG_LIVE == 0 {
                continue;
            }
            let key_len = self.arena.read_u16(off + OFF_KEY_LEN) as usize;
            let val_len = self.arena.read_u32(off + OFF_VAL_LEN) as usize;
            let key = self.arena.read_vec(off + HEADER_SIZE, key_len);
            let total = HEADER_SIZE + key_len + val_len;
            lists.live = lists.live.saturating_sub(1);
            lists.live_bytes = lists.live_bytes.saturating_sub(total);
            lists.frag_bytes = lists.frag_bytes.saturating_sub(class_size - total.min(class_size));
            return Some((loc, key));
        }
        None
    }

    fn join_segment(&self, lists: &mut ClassLists, loc: u64, cookie: u64, deadline: u32) {
        let bucket = deadline / BUCKET_SECS;
        if let Some(pos) = lists.open.iter().position(|s| s.bucket == bucket) {
            let seg = &mut lists.open[pos];
            seg.members.push((loc, cookie));
            seg.max_deadline = seg.max_deadline.max(deadline);
            if seg.members.len() >= SEGMENT_SLOTS {
                let seg = lists.open.swap_remove(pos);
                self.sealed.lock().push(seg);
            }
            return;
        }
        if lists.open.len() >= MAX_OPEN_SEGMENTS {
            // Seal the segment closest to expiring so the sweeper can
            // take it without waiting for it to fill.
            let pos = lists
                .open
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| s.max_deadline)
                .map(|(i, _)| i)
                .unwrap_or(0);
            let seg = lists.open.swap_remove(pos);
            self.sealed.lock().push(seg);
        }
        lists.open.push(Segment {
            bucket,
            max_deadline: deadline,
            members: vec![(loc, cookie)],
        });
    }

    /// Reclaim up to `max_segments` whole segments whose bucket window
    /// has fully passed, freeing every still-expired member slot and
    /// appending a [`PurgedEntry`] per freed object (the caller drops
    /// the matching index entries). Returns the number of segments
    /// reclaimed. This is the proactive expiry path: the background
    /// sweeper calls it on a timer, allocation pressure calls it as the
    /// any-class fallback.
    pub fn sweep_expired(&self, now: u32, max_segments: usize, out: &mut Vec<PurgedEntry>) -> usize {
        self.reclaim_expired(now, max_segments, out)
    }

    fn reclaim_expired(
        &self,
        now: u32,
        max_segments: usize,
        out: &mut Vec<PurgedEntry>,
    ) -> usize {
        let mut segs: Vec<Segment> = Vec::new();
        {
            let mut sealed = self.sealed.lock();
            let mut i = 0;
            while i < sealed.len() && segs.len() < max_segments {
                if deadline_expired(sealed[i].max_deadline, now) {
                    segs.push(sealed.swap_remove(i));
                } else {
                    i += 1;
                }
            }
        }
        if segs.len() < max_segments {
            for lists in &self.classes {
                let mut lists = lists.lock();
                let mut i = 0;
                while i < lists.open.len() && segs.len() < max_segments {
                    if deadline_expired(lists.open[i].max_deadline, now) {
                        segs.push(lists.open.swap_remove(i));
                    } else {
                        i += 1;
                    }
                }
            }
        }
        let mut purged = 0u64;
        for seg in &segs {
            for &(loc, cookie) in &seg.members {
                if self.expire_if_due(loc, now) {
                    out.push(PurgedEntry { loc, cookie });
                    purged += 1;
                }
            }
        }
        self.expired_proactive.fetch_add(purged, Ordering::Relaxed);
        self.segments_reclaimed
            .fetch_add(segs.len() as u64, Ordering::Relaxed);
        segs.len()
    }

    /// Free the object at `loc` if (and only if) it is live and past its
    /// deadline at `now`. Safe against slot recycling: the claim is
    /// atomic and revalidated, so a fresh unexpired occupant is left
    /// alone. Used by segment reclaim and the lazy-expiry purge.
    pub fn expire_if_due(&self, loc: u64, now: u32) -> bool {
        let off = loc as usize;
        if off + HEADER_SIZE > self.arena.capacity() {
            return false;
        }
        let flags = self.arena.read_u8(off + OFF_FLAGS);
        if flags & FLAG_LIVE == 0 {
            return false;
        }
        if !deadline_expired(self.arena.read_u32(off + OFF_DEADLINE), now) {
            return false;
        }
        let prev = self
            .arena
            .fetch_and_u8(off + OFF_FLAGS, !(FLAG_LIVE | FLAG_REFERENCED));
        if prev & FLAG_LIVE == 0 {
            return false;
        }
        if !deadline_expired(self.arena.read_u32(off + OFF_DEADLINE), now) {
            // The slot was recycled between the check and the claim;
            // restore the fresh occupant's flags.
            self.arena
                .fetch_or_u8(off + OFF_FLAGS, prev & (FLAG_LIVE | FLAG_REFERENCED));
            return false;
        }
        self.release_slot(loc);
        true
    }

    /// Cumulative proactive-expiry counters plus the sealed-segment
    /// backlog gauge.
    #[must_use]
    pub fn expiry_stats(&self) -> ExpiryStats {
        ExpiryStats {
            expired_proactive: self.expired_proactive.load(Ordering::Relaxed),
            segments_reclaimed: self.segments_reclaimed.load(Ordering::Relaxed),
            sealed_segments: self.sealed.lock().len() as u64,
        }
    }

    /// Occupancy snapshot per size class (smallest first, every class
    /// the store can represent — callers typically filter for classes
    /// with any live or free slots).
    #[must_use]
    pub fn class_stats(&self) -> Vec<ClassStats> {
        (0..self.class_count)
            .map(|idx| {
                let lists = self.classes[idx].lock();
                ClassStats {
                    class_bytes: Self::class_size(idx),
                    live_objects: lists.live,
                    free_slots: lists.free.len(),
                    live_bytes: lists.live_bytes,
                    frag_bytes: lists.frag_bytes,
                    open_segments: lists.open.len(),
                }
            })
            .collect()
    }

    fn write_object(&self, loc: u64, key: &[u8], value: &[u8], class: u8, deadline: u32, cflags: u32) {
        let off = loc as usize;
        self.arena.write_u16(off + OFF_KEY_LEN, key.len() as u16);
        self.arena.write_u32(off + OFF_VAL_LEN, value.len() as u32);
        self.arena.write_u32(off + OFF_FREQ, 0);
        self.arena.write_u32(off + OFF_EPOCH, 0);
        self.arena.write_u8(off + OFF_CLASS, class);
        // Written dead; the caller flips FLAG_LIVE under the class lock
        // once the ring entry and accounting are in place.
        self.arena.write_u8(off + OFF_FLAGS, 0);
        self.arena.write_u32(off + OFF_DEADLINE, deadline);
        self.arena.write_u32(off + OFF_CLIENT_FLAGS, cflags);
        self.arena.write(off + HEADER_SIZE, key);
        self.arena.write(off + HEADER_SIZE + key.len(), value);
    }

    /// Protocol metadata stored with the object at `loc`: `(absolute
    /// expiry deadline in unix seconds, opaque client flags)`, both 0
    /// when the writing protocol carried none.
    #[must_use]
    pub fn object_meta(&self, loc: u64) -> (u32, u32) {
        let off = loc as usize;
        (
            self.arena.read_u32(off + OFF_DEADLINE),
            self.arena.read_u32(off + OFF_CLIENT_FLAGS),
        )
    }

    /// Whether the slot at `loc` currently holds a live object (of any
    /// key). Gates deferred index purges: a freed slot can be recycled
    /// — possibly to the same key at the same location via the LIFO
    /// free lists — before its stale index entry is dropped, making
    /// that entry fresh again.
    #[must_use]
    #[inline]
    pub fn slot_live(&self, loc: u64) -> bool {
        let off = loc as usize;
        off + HEADER_SIZE <= self.arena.capacity()
            && self.arena.read_u8(off + OFF_FLAGS) & FLAG_LIVE != 0
    }

    /// Whether the object at `loc` is live but past its deadline at
    /// `now`. Dead or never-expiring objects return false.
    #[must_use]
    #[inline]
    pub fn is_expired(&self, loc: u64, now: u32) -> bool {
        let off = loc as usize;
        if off + HEADER_SIZE > self.arena.capacity() {
            return false;
        }
        if self.arena.read_u8(off + OFF_FLAGS) & FLAG_LIVE == 0 {
            return false;
        }
        deadline_expired(self.arena.read_u32(off + OFF_DEADLINE), now)
    }

    /// Free the object at `loc` (DELETE query). Returns false if it was
    /// not live (stale location).
    pub fn free(&self, loc: u64) -> bool {
        let off = loc as usize;
        if off + HEADER_SIZE > self.arena.capacity() {
            return false;
        }
        let prev = self
            .arena
            .fetch_and_u8(off + OFF_FLAGS, !(FLAG_LIVE | FLAG_REFERENCED));
        if prev & FLAG_LIVE == 0 {
            return false;
        }
        self.release_slot(loc);
        true
    }

    /// Return a just-claimed (flags already cleared) slot to its class
    /// free list and settle the accounting.
    fn release_slot(&self, loc: u64) {
        let off = loc as usize;
        let class = self.arena.read_u8(off + OFF_CLASS) as usize;
        let class = class.min(self.class_count - 1);
        let key_len = self.arena.read_u16(off + OFF_KEY_LEN) as usize;
        let val_len = self.arena.read_u32(off + OFF_VAL_LEN) as usize;
        let total = HEADER_SIZE + key_len + val_len;
        let class_size = Self::class_size(class);
        let mut lists = self.classes[class].lock();
        lists.free.push(loc);
        lists.live = lists.live.saturating_sub(1);
        lists.live_bytes = lists.live_bytes.saturating_sub(total);
        lists.frag_bytes = lists.frag_bytes.saturating_sub(class_size - total.min(class_size));
    }

    /// Whether the live object at `loc` has exactly this key (the `KC`
    /// task). Stale or dead locations compare unequal.
    #[must_use]
    pub fn key_matches(&self, loc: u64, key: &[u8]) -> bool {
        let off = loc as usize;
        if off + HEADER_SIZE > self.arena.capacity() {
            return false;
        }
        if self.arena.read_u8(off + OFF_FLAGS) & FLAG_LIVE == 0 {
            return false;
        }
        if self.arena.read_u16(off + OFF_KEY_LEN) as usize != key.len() {
            return false;
        }
        self.arena.bytes_equal(off + HEADER_SIZE, key)
    }

    /// Key compare and expiry check in one header visit (the `KC` hot
    /// path): `Miss` for dead/stale/other-key slots, otherwise `Hit` or
    /// `Expired` by the recorded deadline.
    #[must_use]
    #[inline]
    pub fn probe(&self, loc: u64, key: &[u8], now: u32) -> ProbeOutcome {
        let off = loc as usize;
        if off + HEADER_SIZE > self.arena.capacity()
            || self.arena.read_u8(off + OFF_FLAGS) & FLAG_LIVE == 0
            || self.arena.read_u16(off + OFF_KEY_LEN) as usize != key.len()
            || !self.arena.bytes_equal(off + HEADER_SIZE, key)
        {
            return ProbeOutcome::Miss;
        }
        if deadline_expired(self.arena.read_u32(off + OFF_DEADLINE), now) {
            ProbeOutcome::Expired
        } else {
            ProbeOutcome::Hit
        }
    }

    /// Raw address of the object header at `loc`, for issuing a
    /// software prefetch before a batched `KC`/`RD` pass touches the
    /// object. The pointer is a hint address only — safe for stale or
    /// out-of-range locations because prefetches never fault.
    #[must_use]
    pub fn object_ptr(&self, loc: u64) -> *const u8 {
        self.arena.byte_ptr(loc as usize)
    }

    /// Raw address of the object's value bytes at `loc` (header and key
    /// skipped), for prefetching ahead of `RD`. Hint address only.
    #[must_use]
    pub fn value_ptr(&self, loc: u64) -> *const u8 {
        let (key_len, _) = self.object_lens(loc);
        self.arena.byte_ptr(loc as usize + HEADER_SIZE + key_len)
    }

    /// Key and value lengths of the object at `loc`.
    #[must_use]
    pub fn object_lens(&self, loc: u64) -> (usize, usize) {
        let off = loc as usize;
        (
            self.arena.read_u16(off + OFF_KEY_LEN) as usize,
            self.arena.read_u32(off + OFF_VAL_LEN) as usize,
        )
    }

    /// Append the object's value to `dst` (the `RD` task). Returns the
    /// value length.
    pub fn read_value(&self, loc: u64, dst: &mut Vec<u8>) -> usize {
        let off = loc as usize;
        let (key_len, val_len) = self.object_lens(loc);
        self.arena.read_into(off + HEADER_SIZE + key_len, val_len, dst);
        val_len
    }

    /// Copy of the object's key.
    #[must_use]
    pub fn read_key(&self, loc: u64) -> Vec<u8> {
        let off = loc as usize;
        let (key_len, _) = self.object_lens(loc);
        self.arena.read_vec(off + HEADER_SIZE, key_len)
    }

    /// Record an access for the skewness sampler (paper §IV-B): the
    /// frequency counter resets to 1 when the object's sampling epoch is
    /// stale, otherwise increments. Also sets the CLOCK referenced bit
    /// (a no-op in effect on dead slots: the live bit is never set
    /// here, so a racing free cannot be undone).
    /// Returns the post-update frequency.
    pub fn touch(&self, loc: u64, epoch: u32) -> u32 {
        let off = loc as usize;
        // Test-and-test-and-set: hot objects keep the bit set between
        // CLOCK scans, so the steady state skips the locked RMW (a
        // plain |= of the whole byte is not an option — it could
        // resurrect a concurrently cleared live bit). A touch racing a
        // CLOCK clear may skip the set it would have made; CLOCK is
        // approximate by design, so losing one reference mark is fine.
        if self.arena.read_u8(off + OFF_FLAGS) & FLAG_REFERENCED == 0 {
            self.arena.fetch_or_u8(off + OFF_FLAGS, FLAG_REFERENCED);
        }
        if self.arena.read_u32(off + OFF_EPOCH) != epoch {
            self.arena.write_u32(off + OFF_EPOCH, epoch);
            self.arena.write_u32(off + OFF_FREQ, 1);
            1
        } else {
            self.arena.fetch_add_u32(off + OFF_FREQ, 1) + 1
        }
    }

    /// The object's current sampling frequency and epoch.
    #[must_use]
    pub fn freq(&self, loc: u64) -> (u32, u32) {
        let off = loc as usize;
        (
            self.arena.read_u32(off + OFF_FREQ),
            self.arena.read_u32(off + OFF_EPOCH),
        )
    }

    /// Restore CLOCK/sampling metadata onto a (just-written) object:
    /// shard migration copies an object into its new shard and carries
    /// the donor's access frequency and sampling epoch over, so skew
    /// estimation and eviction ordering survive a reshard instead of
    /// every migrated object looking cold.
    pub fn restore_clock(&self, loc: u64, freq: u32, epoch: u32) {
        let off = loc as usize;
        self.arena.write_u32(off + OFF_FREQ, freq);
        self.arena.write_u32(off + OFF_EPOCH, epoch);
        if freq > 0 {
            self.arena.fetch_or_u8(off + OFF_FLAGS, FLAG_REFERENCED);
        }
    }
}

impl std::fmt::Debug for ObjectStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObjectStore")
            .field("capacity", &self.capacity())
            .field("carved", &self.bytes_carved())
            .field("live_objects", &self.live_objects())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_and_read_back() {
        let s = ObjectStore::new(4096);
        let out = s.allocate(b"key-1", b"value-1").unwrap();
        assert!(out.evicted.is_none());
        assert!(s.key_matches(out.loc, b"key-1"));
        assert!(!s.key_matches(out.loc, b"key-2"));
        let mut v = Vec::new();
        assert_eq!(s.read_value(out.loc, &mut v), 7);
        assert_eq!(v, b"value-1");
        assert_eq!(s.read_key(out.loc), b"key-1");
        assert_eq!(s.live_objects(), 1);
    }

    #[test]
    fn protocol_metadata_round_trips() {
        let s = ObjectStore::new(4096);
        let plain = s.allocate(b"plain", b"v").unwrap();
        assert_eq!(s.object_meta(plain.loc), (0, 0));
        let meta = s.allocate_with(b"meta", b"v", 300, 0xDEAD_BEEF, 100, 7).unwrap();
        assert_eq!(s.object_meta(meta.loc), (300, 0xDEAD_BEEF));
        assert!(s.key_matches(meta.loc, b"meta"));
        let mut v = Vec::new();
        s.read_value(meta.loc, &mut v);
        assert_eq!(v, b"v");
        // A recycled slot must not leak the previous object's metadata.
        assert!(s.free(meta.loc));
        let reused = s.allocate(b"zero", b"v").unwrap();
        assert_eq!(reused.loc, meta.loc);
        assert_eq!(s.object_meta(reused.loc), (0, 0));
    }

    #[test]
    fn free_then_reuse_same_class() {
        let s = ObjectStore::new(4096);
        let a = s.allocate(b"aaaa", b"1111").unwrap();
        assert!(s.free(a.loc));
        assert!(!s.free(a.loc), "double free must fail");
        let b = s.allocate(b"bbbb", b"2222").unwrap();
        assert_eq!(b.loc, a.loc, "freed slot should be recycled");
        assert!(s.key_matches(b.loc, b"bbbb"));
        assert!(!s.key_matches(b.loc, b"aaaa"), "stale key must not match");
    }

    #[test]
    fn eviction_kicks_in_when_full() {
        // Room for exactly 4 objects of the 32-byte class.
        let s = ObjectStore::new(128);
        let mut locs = Vec::new();
        for i in 0..4 {
            let key = format!("k{i}");
            locs.push(s.allocate(key.as_bytes(), b"v").unwrap());
            assert!(locs[i].evicted.is_none());
        }
        let out = s.allocate(b"k4", b"v").unwrap();
        let ev = out.evicted.expect("must evict");
        assert_eq!(ev.key, b"k0", "CLOCK evicts the oldest unreferenced object");
        assert_eq!(ev.loc, out.loc);
        assert_eq!(s.live_objects(), 4);
    }

    #[test]
    fn referenced_objects_get_a_second_chance() {
        let s = ObjectStore::new(128);
        for i in 0..4 {
            let key = format!("k{i}");
            s.allocate(key.as_bytes(), b"v").unwrap();
        }
        // Touch k0 so the clock skips it once.
        // (loc of k0 is 0: the first carve.)
        s.touch(0, 1);
        let out = s.allocate(b"k4", b"v").unwrap();
        assert_eq!(out.evicted.unwrap().key, b"k1");
        assert!(s.key_matches(0, b"k0"), "referenced object survived");
    }

    #[test]
    fn too_large_object_is_rejected() {
        let s = ObjectStore::new(1024);
        let big = vec![0u8; 8 * 1024 * 1024];
        assert_eq!(s.allocate(b"k", &big), Err(StoreError::ObjectTooLarge));
    }

    #[test]
    fn out_of_memory_when_nothing_fits() {
        // Fill the arena with 32-byte-class objects, then ask for a
        // 64-byte-class object: nothing same-class is evictable, no
        // segment is expired, and no *larger* class has slots to
        // borrow (32-byte slots cannot host a 64-byte-class object),
        // so the allocation must fail even though memory exists.
        let s = ObjectStore::new(96);
        for i in 0..3 {
            s.allocate(format!("k{i}").as_bytes(), b"v").unwrap();
        }
        let value = vec![1u8; 40];
        assert_eq!(s.allocate(b"big", &value), Err(StoreError::OutOfMemory));
    }

    #[test]
    fn small_objects_borrow_larger_class_slots_when_trapped() {
        // The PR-9 trap, inverted: the arena is fully carved into
        // 64-byte-class objects, and a 32-byte-class allocation arrives.
        // Same-class CLOCK has nothing (class 32 owns no slots), nothing
        // is expired, so the allocator borrows a 64-byte slot by
        // evicting its occupant.
        let s = ObjectStore::new(256);
        for i in 0..4 {
            let value = vec![b'v'; 20]; // 24 + 2 + 20 = 46 → class 64
            s.allocate(format!("b{i}").as_bytes(), &value).unwrap();
        }
        assert_eq!(s.bytes_carved(), 256);
        let out = s.allocate(b"tiny", b"v").unwrap();
        let ev = out.evicted.expect("borrow must evict from the larger class");
        assert_eq!(ev.key, b"b0");
        assert_eq!(ev.loc, out.loc);
        assert!(s.key_matches(out.loc, b"tiny"));
        // The borrowed slot keeps its real class: freeing it returns it
        // to the 64-byte free list, where a 64-byte-class allocation can
        // pick it up again.
        assert!(s.free(out.loc));
        let big = vec![b'v'; 20];
        let back = s.allocate(b"b9", &big).unwrap();
        assert_eq!(back.loc, out.loc);
        assert!(back.evicted.is_none());
        // Fragmentation accounting saw the borrow while it was live.
        let stats = s.class_stats();
        assert_eq!(stats[0].live_objects, 0, "class 32 never owned the object");
        assert_eq!(stats[1].live_objects, 4);
    }

    #[test]
    fn fallback_order_same_class_clock_then_expired_segment_then_error() {
        // Regression pin for the allocation fallback order:
        // same-class CLOCK → any-class expired segment → error.

        // Step 1: same-class CLOCK wins even though an expired segment
        // exists in another class.
        let s = ObjectStore::new(192);
        let big = vec![b'v'; 20]; // 24 + 2 + 20 = 46 → class 64
        s.allocate(b"a0", b"v").unwrap();
        s.allocate(b"a1", b"v").unwrap();
        s.allocate_with(b"e0", &big, 50, 0, 10, 11).unwrap();
        s.allocate(b"a2", b"v").unwrap();
        s.allocate(b"a3", b"v").unwrap();
        assert_eq!(s.bytes_carved(), 192);
        let out = s.allocate_with(b"a4", b"v", 0, 0, 100, 0).unwrap();
        assert_eq!(
            out.evicted.expect("same-class CLOCK evicts first").key,
            b"a0"
        );
        assert!(out.reclaimed.is_empty(), "expired segment left untouched");

        // Step 2: a class with no slots of its own skips straight past
        // same-class CLOCK to the any-class expired segment, and borrows
        // a reclaimed slot without evicting live data.
        let s = ObjectStore::new(256);
        s.allocate_with(b"e0", &big, 50, 0, 10, 11).unwrap();
        s.allocate_with(b"e1", &big, 50, 0, 10, 22).unwrap();
        let live0 = s.allocate(b"live0", &big).unwrap();
        let live1 = s.allocate(b"live1", &big).unwrap();
        assert_eq!(s.bytes_carved(), 256);
        let out = s.allocate_with(b"tiny", b"v", 0, 0, 100, 0).unwrap();
        assert!(out.evicted.is_none(), "no live object evicted");
        let cookies: Vec<u64> = out.reclaimed.iter().map(|p| p.cookie).collect();
        assert!(cookies.contains(&11) && cookies.contains(&22));
        assert!(s.key_matches(out.loc, b"tiny"));
        assert!(s.key_matches(live0.loc, b"live0"));
        assert!(s.key_matches(live1.loc, b"live1"));

        // Step 3: nothing expired, nothing same-class, and no larger
        // class to borrow from → error.
        let s = ObjectStore::new(96);
        for i in 0..3 {
            s.allocate(format!("k{i}").as_bytes(), b"v").unwrap();
        }
        let value = vec![1u8; 40]; // class 128: largest class of this store
        assert_eq!(
            s.allocate_with(b"big", &value, 0, 0, 100, 0),
            Err(StoreError::OutOfMemory)
        );
    }

    #[test]
    fn expired_objects_forfeit_their_second_chance() {
        let s = ObjectStore::new(128);
        // k0 expired but referenced; k1..k3 live forever.
        s.allocate_with(b"k0", b"v", 10, 0, 0, 1).unwrap();
        for i in 1..4 {
            s.allocate(format!("k{i}").as_bytes(), b"v").unwrap();
        }
        s.touch(0, 1); // sets REFERENCED on k0
        let out = s.allocate_with(b"k4", b"v", 0, 0, 100, 0).unwrap();
        assert_eq!(
            out.evicted.unwrap().key,
            b"k0",
            "an expired object is evicted despite its referenced bit"
        );
    }

    #[test]
    fn sweep_reclaims_whole_segments() {
        let s = ObjectStore::new(1 << 16);
        // Two deadline cohorts in the same class, far enough apart to
        // land in different buckets.
        for i in 0..20u32 {
            s.allocate_with(format!("s{i}").as_bytes(), b"v", 100, 0, 0, u64::from(i))
                .unwrap();
        }
        for i in 0..20u32 {
            s.allocate_with(format!("l{i}").as_bytes(), b"v", 10_000, 0, 0, u64::from(100 + i))
                .unwrap();
        }
        assert_eq!(s.live_objects(), 40);

        // Nothing expired yet.
        let mut purged = Vec::new();
        assert_eq!(s.sweep_expired(50, usize::MAX, &mut purged), 0);
        assert!(purged.is_empty());

        // The 100-deadline cohort expires; the 10_000 cohort survives.
        let reclaimed = s.sweep_expired(200, usize::MAX, &mut purged);
        assert!(reclaimed >= 1);
        assert_eq!(purged.len(), 20);
        assert!(purged.iter().all(|p| p.cookie < 100));
        assert_eq!(s.live_objects(), 20);
        let stats = s.expiry_stats();
        assert_eq!(stats.expired_proactive, 20);
        assert!(stats.segments_reclaimed >= 1);

        // Freed slots recycle through the free list.
        let reused = s.allocate(b"fresh", b"v").unwrap();
        assert!(reused.evicted.is_none());
        assert!(purged.iter().any(|p| p.loc == reused.loc));
    }

    #[test]
    fn expire_if_due_spares_recycled_slots() {
        let s = ObjectStore::new(4096);
        let out = s.allocate_with(b"gone", b"v", 10, 0, 0, 1).unwrap();
        // Not due yet.
        assert!(!s.expire_if_due(out.loc, 9));
        // Due: freed exactly once.
        assert!(s.expire_if_due(out.loc, 10));
        assert!(!s.expire_if_due(out.loc, 10));
        // The slot is recycled by an unexpiring object; a stale segment
        // member must not free it.
        let fresh = s.allocate(b"fresh", b"v").unwrap();
        assert_eq!(fresh.loc, out.loc);
        assert!(!s.expire_if_due(fresh.loc, u32::MAX - 1));
        assert!(s.key_matches(fresh.loc, b"fresh"));
    }

    #[test]
    fn is_expired_tracks_the_deadline() {
        let s = ObjectStore::new(4096);
        let forever = s.allocate(b"forever", b"v").unwrap();
        assert!(!s.is_expired(forever.loc, u32::MAX - 1));
        let brief = s.allocate_with(b"brief", b"v", 100, 0, 50, 3).unwrap();
        assert!(!s.is_expired(brief.loc, 99));
        assert!(s.is_expired(brief.loc, 100));
        s.free(brief.loc);
        assert!(!s.is_expired(brief.loc, 200), "dead slots are not expired");
    }

    #[test]
    fn class_stats_track_occupancy_and_fragmentation() {
        let s = ObjectStore::new(4096);
        // 24 + 4 + 1 = 29 bytes in a 32-byte slot: 3 bytes frag.
        s.allocate(b"aaaa", b"1").unwrap();
        // 24 + 4 + 12 = 40 bytes in a 64-byte slot: 24 bytes frag.
        s.allocate(b"bbbb", b"0123456789ab").unwrap();
        let stats = s.class_stats();
        assert_eq!(stats[0].class_bytes, 32);
        assert_eq!(stats[0].live_objects, 1);
        assert_eq!(stats[0].live_bytes, 29);
        assert_eq!(stats[0].frag_bytes, 3);
        assert_eq!(stats[1].class_bytes, 64);
        assert_eq!(stats[1].live_bytes, 40);
        assert_eq!(stats[1].frag_bytes, 24);
        // Freeing settles the gauges back to zero.
        let total_live: usize = stats.iter().map(|c| c.live_objects).sum();
        assert_eq!(total_live, s.live_objects());
    }

    #[test]
    fn size_classes_are_powers_of_two() {
        let s = ObjectStore::new(1 << 20);
        assert_eq!(s.class_bytes_for(4, 4), Some(32));
        assert_eq!(s.class_bytes_for(8, 17), Some(64));
        assert_eq!(s.class_bytes_for(128, 1024), Some(2048));
        assert!(s.class_bytes_for(0, 1 << 23).is_none());
    }

    #[test]
    fn touch_tracks_epochs_and_freq() {
        let s = ObjectStore::new(4096);
        let out = s.allocate(b"key", b"val").unwrap();
        assert_eq!(s.touch(out.loc, 7), 1);
        assert_eq!(s.touch(out.loc, 7), 2);
        assert_eq!(s.touch(out.loc, 7), 3);
        assert_eq!(s.freq(out.loc), (3, 7));
        // New sampling epoch resets.
        assert_eq!(s.touch(out.loc, 8), 1);
        assert_eq!(s.freq(out.loc), (1, 8));
    }

    #[test]
    fn lens_and_capacity_reporting() {
        let s = ObjectStore::new(4096);
        let out = s.allocate(b"abc", b"defgh").unwrap();
        assert_eq!(s.object_lens(out.loc), (3, 5));
        assert!(s.bytes_carved() >= 32);
        assert_eq!(s.capacity(), 4096);
    }

    #[test]
    fn many_objects_across_classes() {
        let s = ObjectStore::new(1 << 20);
        let mut locs = Vec::new();
        for i in 0..1000u32 {
            let key = format!("key-{i}");
            let value = vec![b'x'; (i % 300) as usize];
            let out = s.allocate(key.as_bytes(), &value).unwrap();
            locs.push((out.loc, key, value));
        }
        assert_eq!(s.live_objects(), 1000);
        for (loc, key, value) in locs {
            assert!(s.key_matches(loc, key.as_bytes()));
            let mut v = Vec::new();
            s.read_value(loc, &mut v);
            assert_eq!(v, value);
        }
    }

    #[test]
    fn concurrent_allocate_and_free() {
        use std::sync::Arc;
        let s = Arc::new(ObjectStore::new(1 << 22));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for i in 0..2000u32 {
                        let key = format!("t{t}-k{i}");
                        let out = s.allocate(key.as_bytes(), b"payload").unwrap();
                        assert!(s.key_matches(out.loc, key.as_bytes()));
                        if i % 3 == 0 {
                            assert!(s.free(out.loc));
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn concurrent_sweep_and_churn() {
        use std::sync::Arc;
        let s = Arc::new(ObjectStore::new(1 << 20));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let sweeper = {
            let s = Arc::clone(&s);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut out = Vec::new();
                let mut now = 0u32;
                while !stop.load(Ordering::Relaxed) {
                    now = now.wrapping_add(7);
                    s.sweep_expired(now, usize::MAX, &mut out);
                    out.clear();
                }
            })
        };
        let writers: Vec<_> = (0..2)
            .map(|t| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for i in 0..3000u32 {
                        let key = format!("t{t}-k{i}");
                        let deadline = 1 + (i % 64);
                        let out = s
                            .allocate_with(key.as_bytes(), b"payload", deadline, 0, 0, u64::from(i))
                            .unwrap();
                        if i % 5 == 0 {
                            s.free(out.loc);
                        }
                    }
                })
            })
            .collect();
        for h in writers {
            h.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        sweeper.join().unwrap();
        // Everything left is either live or on a free list; a final
        // sweep at the far future drains all remaining deadlines.
        let mut out = Vec::new();
        s.sweep_expired(u32::MAX - 1, usize::MAX, &mut out);
        assert_eq!(s.live_objects(), 0);
    }
}
