//! Key-value object storage for DIDO: shared arena, slab size classes,
//! CLOCK eviction, and the per-object frequency/epoch counters that feed
//! the runtime skewness estimate.
//!
//! The paper's memory-management (`MM`) task maps onto
//! [`ObjectStore::allocate`] (which may return an [`EvictedObject`]
//! whose index entry the caller must delete — the mechanism that makes
//! every SET generate one Insert *and* one Delete index operation), the
//! key-comparison (`KC`) task onto [`ObjectStore::key_matches`], and the
//! value-read (`RD`) task onto [`ObjectStore::read_value`].
//!
//! ```
//! use dido_kvstore::ObjectStore;
//!
//! let store = ObjectStore::new(64 * 1024);
//! let out = store.allocate(b"user:1", b"alice").unwrap();
//! assert!(store.key_matches(out.loc, b"user:1"));
//! let mut value = Vec::new();
//! store.read_value(out.loc, &mut value);
//! assert_eq!(value, b"alice");
//! ```

#![warn(missing_docs)]

mod arena;
mod store;

pub use arena::Arena;
pub use store::{
    AllocOutcome, ClassStats, EvictedObject, ExpiryStats, ObjectStore, ProbeOutcome, PurgedEntry,
    StoreError, HEADER_SIZE,
};
