//! The shared-memory arena.
//!
//! Models the 1,908 MB CPU/GPU shared region of the paper's APU: one
//! flat byte range both processors read and write. Because the threaded
//! executor lets stages on different (simulated) processors touch the
//! arena concurrently — and eviction can recycle an object while a stale
//! reader still holds its location — all accesses go through relaxed
//! atomic bytes. Racy readers observe stale-but-initialized data (which
//! the `KC` key-comparison step then rejects), never undefined behaviour.

use std::sync::atomic::{AtomicU8, Ordering};

/// A fixed-capacity byte arena with interior mutability.
pub struct Arena {
    bytes: Box<[AtomicU8]>,
}

impl Arena {
    /// Allocate a zeroed arena of `capacity` bytes.
    #[must_use]
    pub fn new(capacity: usize) -> Arena {
        let mut v = Vec::with_capacity(capacity);
        v.resize_with(capacity, || AtomicU8::new(0));
        Arena {
            bytes: v.into_boxed_slice(),
        }
    }

    /// Arena capacity in bytes.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.bytes.len()
    }

    /// Copy `src` into the arena at `offset`.
    ///
    /// # Panics
    /// Panics if the range exceeds the arena.
    pub fn write(&self, offset: usize, src: &[u8]) {
        let dst = &self.bytes[offset..offset + src.len()];
        for (d, &s) in dst.iter().zip(src) {
            d.store(s, Ordering::Relaxed);
        }
    }

    /// Copy `len` bytes at `offset` into `dst` (appended).
    ///
    /// # Panics
    /// Panics if the range exceeds the arena.
    pub fn read_into(&self, offset: usize, len: usize, dst: &mut Vec<u8>) {
        dst.reserve(len);
        for b in &self.bytes[offset..offset + len] {
            dst.push(b.load(Ordering::Relaxed));
        }
    }

    /// Read `len` bytes at `offset` into a fresh vector.
    #[must_use]
    pub fn read_vec(&self, offset: usize, len: usize) -> Vec<u8> {
        let mut v = Vec::with_capacity(len);
        self.read_into(offset, len, &mut v);
        v
    }

    /// Compare the bytes at `offset..offset+other.len()` with `other`.
    #[must_use]
    pub fn bytes_equal(&self, offset: usize, other: &[u8]) -> bool {
        if offset + other.len() > self.bytes.len() {
            return false;
        }
        self.bytes[offset..offset + other.len()]
            .iter()
            .zip(other)
            .all(|(a, &b)| a.load(Ordering::Relaxed) == b)
    }

    /// Read a little-endian `u16`.
    #[must_use]
    pub fn read_u16(&self, offset: usize) -> u16 {
        u16::from_le_bytes([
            self.bytes[offset].load(Ordering::Relaxed),
            self.bytes[offset + 1].load(Ordering::Relaxed),
        ])
    }

    /// Write a little-endian `u16`.
    pub fn write_u16(&self, offset: usize, v: u16) {
        self.write(offset, &v.to_le_bytes());
    }

    /// Read a little-endian `u32`.
    #[must_use]
    pub fn read_u32(&self, offset: usize) -> u32 {
        let mut b = [0u8; 4];
        for (i, out) in b.iter_mut().enumerate() {
            *out = self.bytes[offset + i].load(Ordering::Relaxed);
        }
        u32::from_le_bytes(b)
    }

    /// Write a little-endian `u32`.
    pub fn write_u32(&self, offset: usize, v: u32) {
        self.write(offset, &v.to_le_bytes());
    }

    /// Read one byte.
    #[must_use]
    pub fn read_u8(&self, offset: usize) -> u8 {
        self.bytes[offset].load(Ordering::Relaxed)
    }

    /// Write one byte.
    pub fn write_u8(&self, offset: usize, v: u8) {
        self.bytes[offset].store(v, Ordering::Relaxed);
    }

    /// Raw address of the byte at `offset`, for software-prefetch hints
    /// ahead of a batched probe pass. Out-of-range offsets return the
    /// arena base — the caller only ever feeds the result to a prefetch
    /// instruction, which never faults and never dereferences.
    #[must_use]
    pub fn byte_ptr(&self, offset: usize) -> *const u8 {
        let clamped = offset.min(self.bytes.len().saturating_sub(1));
        // AtomicU8 is #[repr(C, align(1))] over a single u8, so the cast
        // is layout-sound; the pointer is only used as a hint address.
        self.bytes[clamped..].as_ptr().cast::<u8>()
    }

    /// Atomically OR `mask` into the byte at `offset`, returning the
    /// previous value. Used for flag bits (e.g. the CLOCK referenced
    /// bit) that must not resurrect concurrently-cleared state.
    pub fn fetch_or_u8(&self, offset: usize, mask: u8) -> u8 {
        self.bytes[offset].fetch_or(mask, Ordering::Relaxed)
    }

    /// Atomically AND `mask` into the byte at `offset`, returning the
    /// previous value. Clearing the live bit this way is the slot-
    /// ownership handoff: exactly one of a racing free/evict/expire
    /// observes the bit set and wins the slot.
    pub fn fetch_and_u8(&self, offset: usize, mask: u8) -> u8 {
        self.bytes[offset].fetch_and(mask, Ordering::Relaxed)
    }

    /// Atomically increment the `u32` at `offset` by 1 (best-effort,
    /// relaxed; used for frequency counters).
    pub fn fetch_add_u32(&self, offset: usize, add: u32) -> u32 {
        // Byte-wise CAS-free increment would race; a short optimistic
        // read-modify-write loop over the 4 bytes is fine for sampling
        // counters whose exactness is not load-bearing.
        let cur = self.read_u32(offset);
        let next = cur.wrapping_add(add);
        self.write_u32(offset, next);
        cur
    }
}

impl std::fmt::Debug for Arena {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Arena")
            .field("capacity", &self.capacity())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_round_trips() {
        let a = Arena::new(128);
        a.write(10, b"hello world");
        assert_eq!(a.read_vec(10, 11), b"hello world");
        assert!(a.bytes_equal(10, b"hello world"));
        assert!(!a.bytes_equal(10, b"hello_world"));
    }

    #[test]
    fn ints_round_trip() {
        let a = Arena::new(64);
        a.write_u16(0, 0xBEEF);
        a.write_u32(2, 0xDEAD_BEEF);
        a.write_u8(6, 7);
        assert_eq!(a.read_u16(0), 0xBEEF);
        assert_eq!(a.read_u32(2), 0xDEAD_BEEF);
        assert_eq!(a.read_u8(6), 7);
    }

    #[test]
    fn bytes_equal_rejects_out_of_range() {
        let a = Arena::new(8);
        assert!(!a.bytes_equal(6, b"abc"));
    }

    #[test]
    fn fetch_or_and_round_trip() {
        let a = Arena::new(8);
        assert_eq!(a.fetch_or_u8(0, 0b10), 0);
        assert_eq!(a.read_u8(0), 0b10);
        assert_eq!(a.fetch_and_u8(0, !0b10), 0b10);
        assert_eq!(a.read_u8(0), 0);
    }

    #[test]
    fn fetch_add_returns_previous() {
        let a = Arena::new(8);
        a.write_u32(0, 41);
        assert_eq!(a.fetch_add_u32(0, 1), 41);
        assert_eq!(a.read_u32(0), 42);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_write_panics() {
        Arena::new(4).write(2, b"toolong");
    }

    #[test]
    fn concurrent_disjoint_writes_are_safe() {
        use std::sync::Arc;
        let a = Arc::new(Arena::new(4096));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let a = Arc::clone(&a);
                std::thread::spawn(move || {
                    let base = t * 1024;
                    for i in 0..1024 {
                        a.write_u8(base + i, (i % 251) as u8);
                    }
                    for i in 0..1024 {
                        assert_eq!(a.read_u8(base + i), (i % 251) as u8);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }
}
