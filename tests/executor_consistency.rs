//! Cross-executor and model-vs-simulator consistency: the same queries
//! must produce the same functional answers on the virtual-time
//! executor and the real-thread executor, for every pipeline shape; and
//! the analytic cost model must track the simulator within a sane error
//! band (the paper's Figure 9 property).

use dido_kv::apu::{HwSpec, TimingEngine};
use dido_kv::cost_model::CostModel;
use dido_kv::model::{ConfigEnumerator, PipelineConfig, Query, ResponseStatus};
use dido_kv::pipeline::{
    preloaded_engine, RunOptions, SimExecutor, TestbedOptions, ThreadedPipeline,
};
use dido_kv::workload::WorkloadSpec;

fn testbed() -> TestbedOptions {
    TestbedOptions {
        store_bytes: 4 << 20,
        ..TestbedOptions::default()
    }
}

#[test]
fn sim_and_threaded_agree_on_every_config_shape() {
    let hw = HwSpec::kaveri_apu();
    // 100% GET: no evictions, so responses are fully deterministic and
    // the two executors must agree exactly.
    let spec = WorkloadSpec::from_label("K16-G100-U").unwrap();
    let configs = [
        PipelineConfig::mega_kv(),
        PipelineConfig::small_kv_read_intensive(),
        PipelineConfig::cpu_only(),
    ];
    for config in configs {
        // Fresh, identical state per executor.
        let run_sim = || {
            let (engine, mut generator) = preloaded_engine(spec, &hw, testbed());
            let sim = SimExecutor::new(TimingEngine::new(hw));
            let (_, responses) = sim.run_batch(&engine, generator.batch(2_048), config);
            responses.iter().map(|r| r.status).collect::<Vec<_>>()
        };
        let run_threaded = || {
            let (engine, mut generator) = preloaded_engine(spec, &hw, testbed());
            let tp = ThreadedPipeline::new(&engine, config);
            let out = tp.run(vec![generator.batch(2_048)]);
            out[0].iter().map(|r| r.status).collect::<Vec<_>>()
        };
        let a = run_sim();
        let b = run_threaded();
        assert_eq!(a.len(), b.len(), "config {config}");
        assert_eq!(a, b, "executors disagree under {config}");
    }
}

#[test]
fn sim_and_threaded_agree_statistically_under_writes() {
    // With SETs in the mix, eviction victims may differ between the two
    // executors (CLOCK order depends on interleaving), so individual
    // misses can move — but the overall hit counts must stay within a
    // small band.
    let hw = HwSpec::kaveri_apu();
    let spec = WorkloadSpec::from_label("K16-G95-U").unwrap();
    let config = PipelineConfig::mega_kv();
    let count_ok = |statuses: Vec<ResponseStatus>| {
        statuses
            .iter()
            .filter(|&&s| s == ResponseStatus::Ok)
            .count()
    };
    let (engine, mut generator) = preloaded_engine(spec, &hw, testbed());
    let sim = SimExecutor::new(TimingEngine::new(hw));
    let (_, responses) = sim.run_batch(&engine, generator.batch(4_096), config);
    let sim_ok = count_ok(responses.iter().map(|r| r.status).collect());

    let (engine, mut generator) = preloaded_engine(spec, &hw, testbed());
    let tp = ThreadedPipeline::new(&engine, config);
    let out = tp.run(vec![generator.batch(4_096)]);
    let thr_ok = count_ok(out[0].iter().map(|r| r.status).collect());

    let diff = sim_ok.abs_diff(thr_ok);
    assert!(
        diff <= 4_096 / 100,
        "executors diverge too much: {sim_ok} vs {thr_ok} ok of 4096"
    );
}

#[test]
fn model_tracks_simulator_within_error_band() {
    // A relaxed version of the paper's Figure 9 (avg 7.7 %, max 14.2 %):
    // on a small testbed we allow up to 35 % per-workload and 20 % on
    // average.
    let hw = HwSpec::kaveri_apu();
    let model = CostModel::new(hw);
    let sim = SimExecutor::new(TimingEngine::new(hw));
    let mut errors = Vec::new();
    for label in ["K8-G95-U", "K16-G95-S", "K32-G100-U", "K128-G50-S"] {
        let spec = WorkloadSpec::from_label(label).unwrap();
        let (engine, mut generator) = preloaded_engine(spec, &hw, testbed());
        let config = PipelineConfig::mega_kv();
        let wr = sim.run_workload(&engine, config, RunOptions::default(), |n| {
            generator.batch(n)
        });
        let mut stats = wr.report.stats;
        stats.zipf_skew = spec.distribution.skew();
        let cache_ratio = (testbed().store_bytes as f64 / hw.mem.shared_bytes as f64).min(1.0);
        let inputs = dido_kv::cost_model::ModelInputs {
            stats,
            n_keys: engine.store.live_objects() as u64,
            avg_insert_buckets: engine.index.avg_insert_buckets(),
            avg_delete_buckets: engine.index.avg_delete_buckets(),
            interval_ns: RunOptions::default().stage_interval_ns(),
            cpu_cache_bytes: ((hw.cpu.cache_bytes as f64 * cache_ratio) as u64).max(8 * 1024),
            gpu_cache_bytes: ((hw.gpu.cache_bytes as f64 * cache_ratio) as u64).max(2 * 1024),
        };
        let predicted = model.predict(config, &inputs).throughput_mops();
        let measured = wr.throughput_mops();
        let err = ((measured - predicted) / measured).abs();
        assert!(err < 0.35, "{label}: error {:.1}% too large", err * 100.0);
        errors.push(err);
    }
    let avg = errors.iter().sum::<f64>() / errors.len() as f64;
    assert!(avg < 0.20, "average model error {:.1}% too large", avg * 100.0);
}

#[test]
fn every_enumerated_config_processes_batches_correctly() {
    // The embedded-config mechanism must make *any* valid configuration
    // functionally correct, not just the ones DIDO tends to pick.
    let hw = HwSpec::kaveri_apu();
    let spec = WorkloadSpec::from_label("K8-G95-U").unwrap();
    let sim = SimExecutor::new(TimingEngine::new(hw));
    let configs = ConfigEnumerator {
        work_stealing: Some(false),
        fixed_segment: None,
    }
    .enumerate();
    assert!(configs.len() > 20);
    // The natural one-byte probe value is fine even against a full
    // preload: when the probe's own slab class has nothing to evict,
    // allocation reclaims or borrows from another class.
    let probe_value = "1";
    for config in configs {
        let (engine, _) = preloaded_engine(spec, &hw, testbed());
        // Ordering within a batch is unspecified, so each step ships in
        // its own batch.
        let (_, rs) = sim.run_batch(&engine, vec![Query::set("probe-a", probe_value)], config);
        assert_eq!(rs[0].status, ResponseStatus::Ok, "SET under {config}");
        let (_, rs) = sim.run_batch(
            &engine,
            vec![Query::get("probe-a"), Query::get("no-such-key-xyz")],
            config,
        );
        assert_eq!(rs[0].status, ResponseStatus::Ok, "GET under {config}");
        assert_eq!(&rs[0].value[..], probe_value.as_bytes(), "value under {config}");
        assert_eq!(rs[1].status, ResponseStatus::NotFound, "miss under {config}");
        let (_, rs) = sim.run_batch(&engine, vec![Query::delete("probe-a")], config);
        assert_eq!(rs[0].status, ResponseStatus::Ok, "DELETE under {config}");
    }
}

#[test]
fn throughput_is_deterministic_for_a_fixed_seed() {
    let hw = HwSpec::kaveri_apu();
    let spec = WorkloadSpec::from_label("K16-G95-S").unwrap();
    let run = || {
        let (engine, mut generator) = preloaded_engine(spec, &hw, testbed());
        let sim = SimExecutor::new(TimingEngine::new(hw));
        let wr = sim.run_workload(
            &engine,
            PipelineConfig::mega_kv(),
            RunOptions::default(),
            |n| generator.batch(n),
        );
        wr.throughput_mops()
    };
    let a = run();
    let b = run();
    assert!(
        (a - b).abs() < 1e-9,
        "virtual-time simulation must be deterministic: {a} vs {b}"
    );
}
