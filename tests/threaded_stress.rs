//! Concurrency stress: the real-thread pipeline under sustained mixed
//! load with work stealing, followed by a full index↔store integrity
//! audit — the racy paths (tag claiming, CLOCK eviction, cuckoo CAS,
//! concurrent sub-batch processing) must never corrupt the store.

use dido_kv::model::{PipelineConfig, Query, ResponseStatus};
use dido_kv::pipeline::{EngineConfig, KvEngine, ThreadedPipeline};

fn mixed_batches(rounds: usize, per_batch: usize, keyspace: usize) -> Vec<Vec<Query>> {
    (0..rounds)
        .map(|r| {
            (0..per_batch)
                .map(|i| {
                    let id = (r * 31 + i * 7) % keyspace;
                    match i % 12 {
                        0..=1 => Query::set(format!("st-{id:05}"), vec![b's'; 24 + id % 64]),
                        2 => Query::delete(format!("st-{id:05}")),
                        _ => Query::get(format!("st-{id:05}")),
                    }
                })
                .collect()
        })
        .collect()
}

#[test]
fn threaded_pipeline_survives_sustained_churn_with_stealing() {
    let engine = KvEngine::new(EngineConfig::new(2 << 20, 256 << 10, 64 << 10));
    // Preload part of the key space.
    for id in 0..2_000 {
        engine.execute(&Query::set(format!("st-{id:05}"), vec![b'p'; 24]));
    }
    let mut config = PipelineConfig::small_kv_read_intensive();
    config.work_stealing = true;
    let pipeline = ThreadedPipeline::new(&engine, config);

    let batches = mixed_batches(24, 2_048, 4_000);
    let total: usize = batches.iter().map(Vec::len).sum();
    let results = pipeline.run(batches);

    // Every query got exactly one answer.
    let answered: usize = results.iter().map(Vec::len).sum();
    assert_eq!(answered, total);
    // The mix must produce a healthy number of each outcome (this is a
    // cache: NotFound is legitimate for deleted/evicted keys, Error for
    // allocation failures of oversized classes — which this workload
    // never triggers).
    let ok = results
        .iter()
        .flatten()
        .filter(|r| r.status == ResponseStatus::Ok)
        .count();
    assert!(ok > total / 2, "only {ok}/{total} ok");
    assert!(
        !results
            .iter()
            .flatten()
            .any(|r| r.status == ResponseStatus::Error),
        "no query in this workload may fail"
    );

    // The store must be internally consistent afterwards.
    let report = engine.verify_integrity();
    assert_eq!(report.mismatched, 0, "{report:?}");
    assert_eq!(
        report.dangling, 0,
        "quiesced pipeline must leave no dangling entries: {report:?}"
    );
    assert!(engine.store.bytes_carved() <= engine.store.capacity());
}

#[test]
fn parallel_threaded_pipelines_share_one_engine() {
    // Two pipelines (e.g. two front-ends) over the same engine, driven
    // from separate threads: the engine's atomics must hold up.
    let engine = KvEngine::new(EngineConfig::new(2 << 20, 256 << 10, 64 << 10));
    for id in 0..1_000 {
        engine.execute(&Query::set(format!("sh-{id:04}"), "seed"));
    }
    std::thread::scope(|scope| {
        for t in 0..2 {
            let engine = &engine;
            scope.spawn(move || {
                let pipeline = ThreadedPipeline::new(engine, PipelineConfig::mega_kv());
                let batches: Vec<Vec<Query>> = (0..8)
                    .map(|r| {
                        (0..1_024)
                            .map(|i| {
                                let id = (t * 500 + r * 13 + i) % 1_000;
                                if i % 8 == 0 {
                                    Query::set(format!("sh-{id:04}"), format!("t{t}r{r}"))
                                } else {
                                    Query::get(format!("sh-{id:04}"))
                                }
                            })
                            .collect()
                    })
                    .collect();
                let out = pipeline.run(batches);
                assert_eq!(out.iter().map(Vec::len).sum::<usize>(), 8 * 1_024);
            });
        }
    });
    let report = engine.verify_integrity();
    assert_eq!(report.mismatched, 0, "{report:?}");
}
