//! System-level test of the TCP front-end over a full DIDO node:
//! clients over real sockets, the dynamically adapted pipeline behind
//! the handler, trace capture, and snapshot/restore across "restarts".

use dido_kv::dido::{DidoOptions, DidoSystem};
use dido_kv::model::{Query, ResponseStatus};
use dido_kv::net::{read_trace, write_trace, KvClient, KvServer};
use dido_kv::pipeline::TestbedOptions;
use parking_lot::Mutex;
use std::sync::Arc;

// `DidoSystem::process_batch` takes `&self`, so the node is shared with
// the server handler through a bare `Arc` — no global lock on the path.

fn dido_node(store_bytes: usize) -> DidoSystem {
    DidoSystem::new(DidoOptions {
        testbed: TestbedOptions {
            store_bytes,
            ..TestbedOptions::default()
        },
        ..DidoOptions::default()
    })
}

#[test]
fn tcp_clients_drive_a_dido_node_end_to_end() {
    let dido = Arc::new(dido_node(8 << 20));
    let handler = Arc::clone(&dido);
    let server = KvServer::start("127.0.0.1:0", move |_lane, queries| {
        handler.process_batch(queries).1
    })
    .expect("bind");

    // Two clients interleave writes and reads.
    let addr = server.addr();
    let mut a = KvClient::connect(addr).unwrap();
    let mut b = KvClient::connect(addr).unwrap();
    let sets: Vec<Query> = (0..512)
        .map(|i| Query::set(format!("sys-{i:04}"), format!("payload-{i:04}")))
        .collect();
    let rs = a.request(&sets).unwrap();
    assert!(rs.iter().all(|r| r.status == ResponseStatus::Ok));

    let gets: Vec<Query> = (0..512).map(|i| Query::get(format!("sys-{i:04}"))).collect();
    let rs = b.request(&gets).unwrap();
    for (i, r) in rs.iter().enumerate() {
        assert_eq!(r.status, ResponseStatus::Ok, "sys-{i:04}");
        assert_eq!(r.value, format!("payload-{i:04}"));
    }

    // The node profiled real traffic and ran its cost model.
    assert!(dido.metrics().batches >= 2);
    assert!(dido.model_runs() >= 1);
    server.shutdown();
}

#[test]
fn snapshot_survives_a_simulated_restart_behind_tcp() {
    let trace_path = std::env::temp_dir().join(format!("dido-sys-{}.snap", std::process::id()));

    // First incarnation: load data over TCP, snapshot it.
    {
        let dido = Arc::new(dido_node(4 << 20));
        let handler = Arc::clone(&dido);
        let server = KvServer::start("127.0.0.1:0", move |_lane, queries| {
            handler.process_batch(queries).1
        })
        .unwrap();
        let mut c = KvClient::connect(server.addr()).unwrap();
        let sets: Vec<Query> = (0..256)
            .map(|i| Query::set(format!("persist-{i}"), format!("gen1-{i}")))
            .collect();
        c.request(&sets).unwrap();
        dido.engine().snapshot_to(&trace_path).unwrap();
        server.shutdown();
    }

    // Second incarnation: restore, serve the same data.
    {
        let dido = dido_node(4 << 20);
        let restored = dido.engine().restore_from(&trace_path).unwrap();
        assert_eq!(restored, 256);
        let dido = Arc::new(dido);
        let handler = Arc::clone(&dido);
        let server = KvServer::start("127.0.0.1:0", move |_lane, queries| {
            handler.process_batch(queries).1
        })
        .unwrap();
        let mut c = KvClient::connect(server.addr()).unwrap();
        let gets: Vec<Query> = (0..256).map(|i| Query::get(format!("persist-{i}"))).collect();
        let rs = c.request(&gets).unwrap();
        for (i, r) in rs.iter().enumerate() {
            assert_eq!(r.status, ResponseStatus::Ok, "persist-{i}");
            assert_eq!(r.value, format!("gen1-{i}"));
        }
        server.shutdown();
    }
    std::fs::remove_file(&trace_path).ok();
}

#[test]
fn captured_traffic_replays_identically() {
    // Capture client traffic into a trace, then replay it against a
    // fresh node: the final visible state must match.
    let captured: Arc<Mutex<Vec<Query>>> = Arc::new(Mutex::new(Vec::new()));
    let live_node = Arc::new(dido_node(4 << 20));

    let tee = Arc::clone(&captured);
    let handler = Arc::clone(&live_node);
    let server = KvServer::start("127.0.0.1:0", move |_lane, queries| {
        tee.lock().extend(queries.iter().cloned());
        handler.process_batch(queries).1
    })
    .unwrap();
    let mut c = KvClient::connect(server.addr()).unwrap();
    for round in 0..4 {
        let batch: Vec<Query> = (0..128)
            .map(|i| {
                let id = (round * 37 + i) % 200;
                if i % 5 == 0 {
                    Query::set(format!("cap-{id}"), format!("r{round}i{i}"))
                } else {
                    Query::get(format!("cap-{id}"))
                }
            })
            .collect();
        c.request(&batch).unwrap();
    }
    server.shutdown();

    let trace_path = std::env::temp_dir().join(format!("dido-cap-{}.trace", std::process::id()));
    write_trace(&trace_path, &captured.lock()).unwrap();
    let replayed = read_trace(&trace_path).unwrap();
    assert_eq!(replayed.len(), 4 * 128);

    // Replay into a fresh node and compare every key's final value.
    let fresh = dido_node(4 << 20);
    for q in &replayed {
        fresh.execute(q);
    }
    for id in 0..200 {
        let q = Query::get(format!("cap-{id}"));
        let a = live_node.execute(&q);
        let b = fresh.execute(&q);
        assert_eq!(a.status, b.status, "cap-{id}");
        assert_eq!(a.value, b.value, "cap-{id}");
    }
    std::fs::remove_file(&trace_path).ok();
}
