//! Race regression tests for the work-stealing executor.
//!
//! The historical defect: the GPU-stage thread handed each batch group
//! to the steal helper through a buffered channel. If the helper was
//! busy (or simply descheduled), the stage thread drained the whole
//! group itself, passed the completion barrier, and forwarded the group
//! to the next stage — which reset the claim cursor. The helper then
//! dequeued the *stale* group and re-ran the GPU stage's tasks
//! (including index operations) on sub-batches the next stage was
//! concurrently mutating: double-applied index ops, torn batches, and
//! over-counted completions.
//!
//! These tests make the helper's lag deterministic via the pipeline's
//! `with_steal_lag` / `with_owner_lag` hooks and prove, through the
//! engine's exact per-task operation counters, that no task is ever
//! applied twice. On the pre-epoch executor the lagging-helper test
//! fails (inflated `index_searches`, corrupted batches); under the
//! epoch-guarded claim protocol every stale attempt is refused and
//! counted.

use dido_kv::dido::Metrics;
use dido_kv::model::{PipelineConfig, Query, ResponseStatus, WAVEFRONT_WIDTH};
use dido_kv::pipeline::{EngineConfig, KvEngine, ThreadedPipeline};
use std::time::Duration;

/// Deterministic mixed SET/GET workload (no DELETEs, so the expected
/// op totals are exact: one index search per GET, one allocation and
/// one index upsert per SET).
fn mixed_batch(round: usize, n: usize, keyspace: usize) -> Vec<Query> {
    (0..n)
        .map(|i| {
            let id = (round * 131 + i * 17) % keyspace;
            if i % 4 == 0 {
                Query::set(format!("race-{id:05}"), vec![b'v'; 48])
            } else {
                Query::get(format!("race-{id:05}"))
            }
        })
        .collect()
}

fn count_ops(batches: &[Vec<Query>]) -> (u64, u64) {
    let mut gets = 0;
    let mut sets = 0;
    for q in batches.iter().flatten() {
        match q.op {
            dido_kv::model::QueryOp::Get => gets += 1,
            dido_kv::model::QueryOp::Set => sets += 1,
            dido_kv::model::QueryOp::Delete => unreachable!("workload has no deletes"),
        }
    }
    (gets, sets)
}

#[test]
fn lagging_steal_helper_never_duplicates_task_work() {
    // Store big enough that no SET ever fails or evicts.
    let engine = KvEngine::new(EngineConfig::new(8 << 20, 256 << 10, 64 << 10));
    let mut config = PipelineConfig::small_kv_read_intensive();
    config.work_stealing = true;
    // 2 ms is orders of magnitude longer than a stage over 16
    // sub-batches, so the helper dequeues every group after its stage
    // completed — exactly the historical race window.
    let pipeline =
        ThreadedPipeline::new(&engine, config).with_steal_lag(Duration::from_millis(2));

    let mut expected_gets = 0u64;
    let mut expected_sets = 0u64;
    let mut stale_seen = 0u64;
    for round in 0..5 {
        let batches: Vec<Vec<Query>> =
            (0..4).map(|b| mixed_batch(round * 4 + b, 1024, 2_000)).collect();
        let (gets, sets) = count_ops(&batches);
        expected_gets += gets;
        expected_sets += sets;

        let results = pipeline.run(batches);
        assert_eq!(results.iter().map(Vec::len).sum::<usize>(), 4 * 1024);
        assert!(
            !results
                .iter()
                .flatten()
                .any(|r| r.status == ResponseStatus::Error),
            "round {round}: no query in this workload may fail"
        );

        // Exact totals: a single stale re-execution of the GPU stage
        // (IN-Search/KC/RD on this config) would inflate the search
        // counter past the number of GETs issued.
        let ops = engine.op_counts();
        assert_eq!(ops.index_searches, expected_gets, "round {round}: duplicated IN-Search");
        assert_eq!(ops.mm_allocs, expected_sets, "round {round}: duplicated MM");
        assert_eq!(ops.index_inserts, expected_sets, "round {round}: duplicated IN-Insert");
        assert_eq!(ops.index_deletes, 0, "round {round}: phantom deletes");

        stale_seen = pipeline.exec_stats().stale_rejects;
        if stale_seen > 0 && round >= 1 {
            break;
        }
    }

    let stats = pipeline.exec_stats();
    assert!(stats.steal_groups > 0, "helper was never offered a group: {stats:?}");
    assert!(
        stale_seen > 0,
        "a 2ms-lagging helper must be refused at least one stale group: {stats:?}"
    );
    // The store survived the churn intact.
    let report = engine.verify_integrity();
    assert_eq!(report.mismatched, 0, "{report:?}");
    assert_eq!(report.dangling, 0, "{report:?}");
}

#[test]
fn stolen_claims_flow_into_metrics() {
    let engine = KvEngine::new(EngineConfig::new(8 << 20, 256 << 10, 64 << 10));
    for id in 0..2_000 {
        engine.execute(&Query::set(format!("race-{id:05}"), vec![b'p'; 48]));
    }
    let mut config = PipelineConfig::small_kv_read_intensive();
    config.work_stealing = true;
    // The owner sleeps per claimed sub-batch, so the helper wins claims
    // even on a single-core host.
    let pipeline =
        ThreadedPipeline::new(&engine, config).with_owner_lag(Duration::from_micros(500));

    let subs_per_batch = 1024usize.div_ceil(WAVEFRONT_WIDTH) as u64;
    let n_stages = pipeline.plan().stages.len() as u64;
    let mut rounds = 0u64;
    for round in 0..20 {
        rounds += 1;
        let results = pipeline.run(vec![mixed_batch(round, 1024, 2_000)]);
        assert_eq!(results[0].len(), 1024, "round {round}");
        if pipeline.exec_stats().stolen_claims > 0 {
            break;
        }
    }

    let stats = pipeline.exec_stats();
    // Conservation: every (batch, stage, sub-batch) processed exactly
    // once, by owner or thief.
    assert_eq!(
        stats.owner_claims + stats.stolen_claims,
        rounds * subs_per_batch * n_stages,
        "{stats:?}"
    );
    assert!(stats.stolen_claims > 0, "helper never won a claim: {stats:?}");
    assert!(stats.steal_groups > 0, "{stats:?}");

    // The counters are observable through the node metrics.
    let mut metrics = Metrics::default();
    metrics.record_exec_stats(&stats);
    assert!(metrics.stolen_claims > 0);
    assert!(metrics.steal_groups > 0);
    assert_eq!(metrics.owner_claims, stats.owner_claims);
    let rendered = metrics.to_string();
    assert!(rendered.contains("stolen"), "{rendered}");
}

#[test]
fn stealing_and_inline_paths_agree_under_lag() {
    // The same workload through (a) the staged executor with a lagging
    // helper and (b) the inline executor must produce identical status
    // sequences — stale refusals must not drop or duplicate responses.
    let run = |inline: bool| {
        let engine = KvEngine::new(EngineConfig::new(8 << 20, 256 << 10, 64 << 10));
        for id in 0..2_000 {
            engine.execute(&Query::set(format!("race-{id:05}"), vec![b'p'; 48]));
        }
        let mut config = PipelineConfig::small_kv_read_intensive();
        config.work_stealing = true;
        let pipeline = ThreadedPipeline::new(&engine, config)
            .with_steal_lag(Duration::from_micros(200));
        let batches: Vec<Vec<Query>> = (0..3).map(|b| mixed_batch(b, 512, 2_000)).collect();
        let out = if inline {
            pipeline.run_inline(batches)
        } else {
            pipeline.run(batches)
        };
        out.into_iter()
            .map(|rs| rs.into_iter().map(|r| r.status).collect::<Vec<_>>())
            .collect::<Vec<_>>()
    };
    assert_eq!(run(false), run(true));
}
