//! End-to-end integration tests spanning every crate: workload
//! generation → network framing → pipeline execution → index/store →
//! responses, under dynamic adaption.

use dido_kv::dido::{DidoOptions, DidoSystem};
use dido_kv::model::{PipelineConfig, Query, QueryOp, ResponseStatus};
use dido_kv::pipeline::TestbedOptions;
use dido_kv::workload::{key_bytes, value_bytes, WorkloadGen, WorkloadSpec};

fn options(store_bytes: usize) -> DidoOptions {
    DidoOptions {
        testbed: TestbedOptions {
            store_bytes,
            ..TestbedOptions::default()
        },
        ..DidoOptions::default()
    }
}

#[test]
fn preloaded_system_answers_get_queries_through_the_pipeline() {
    let spec = WorkloadSpec::from_label("K16-G95-S").unwrap();
    let dido = DidoSystem::preloaded(spec, options(4 << 20));
    let n_keys = spec.keyspace_size(4 << 20, dido_kv::kvstore::HEADER_SIZE);
    // A pure-GET batch over preloaded ids must hit with correct values.
    let batch: Vec<Query> = (0..1_000)
        .map(|i| Query {
            op: QueryOp::Get,
            key: key_bytes(spec.dataset, i % n_keys),
            value: bytes::Bytes::new(),
            ttl: 0,
            flags: 0,
        })
        .collect();
    let (_, responses) = dido.process_batch(batch);
    assert_eq!(responses.len(), 1_000);
    let mut hits = 0;
    for (i, r) in responses.iter().enumerate() {
        if r.status == ResponseStatus::Ok {
            assert_eq!(
                r.value,
                value_bytes(spec.dataset, (i as u64) % n_keys),
                "wrong value at {i}"
            );
            hits += 1;
        }
    }
    assert!(hits >= 990, "only {hits}/1000 preloaded GETs hit");
}

#[test]
fn writes_survive_pipeline_reconfiguration() {
    let spec = WorkloadSpec::from_label("K8-G50-U").unwrap();
    let dido = DidoSystem::preloaded(spec, options(4 << 20));
    // Write a sentinel set through one config...
    // Keys/values sized to the preloaded K8 slab class (a full store
    // can only recycle slots of classes it already holds).
    let sets: Vec<Query> = (0..200)
        .map(|i| Query::set(format!("sent-{i:03}"), format!("p{i:03}")))
        .collect();
    dido.set_config(PipelineConfig::mega_kv());
    let (_, rs) = dido.process_batch(sets);
    assert!(rs.iter().all(|r| r.status == ResponseStatus::Ok));
    // ...then read it back through a completely different one.
    dido.set_config(PipelineConfig::small_kv_read_intensive());
    let gets: Vec<Query> = (0..200).map(|i| Query::get(format!("sent-{i:03}"))).collect();
    let (_, rs) = dido.process_batch(gets);
    for (i, r) in rs.iter().enumerate() {
        assert_eq!(r.status, ResponseStatus::Ok, "sent-{i} lost after reconfig");
        assert_eq!(r.value, format!("p{i:03}"));
    }
}

#[test]
fn adaption_changes_config_for_small_read_heavy_workloads() {
    let spec = WorkloadSpec::from_label("K8-G95-S").unwrap();
    let dido = DidoSystem::preloaded(spec, options(4 << 20));
    let mut generator = WorkloadGen::new(spec, spec.keyspace_size(4 << 20, dido_kv::kvstore::HEADER_SIZE), 3);
    assert_eq!(dido.current_config(), PipelineConfig::mega_kv());
    let _ = dido.process_batch(generator.batch(4_096));
    assert_ne!(
        dido.current_config(),
        PipelineConfig::mega_kv(),
        "paper §V-C: small-KV read-heavy workloads must leave the static pipeline"
    );
    assert!(dido.current_config().is_valid());
}

#[test]
fn dido_outperforms_static_pipeline_on_read_heavy_small_kv() {
    // The headline claim (Figure 11), asserted end-to-end at small scale.
    let spec = WorkloadSpec::from_label("K16-G95-U").unwrap();

    let dido = DidoSystem::preloaded(spec, options(8 << 20));
    let mut g1 = WorkloadGen::new(spec, spec.keyspace_size(8 << 20, dido_kv::kvstore::HEADER_SIZE), 5);
    let dd = dido.measure(|n| g1.batch(n), 5);

    let mk = dido_kv::megakv::MegaKv::coupled().measure(
        spec,
        TestbedOptions {
            store_bytes: 8 << 20,
            ..TestbedOptions::default()
        },
        dido_kv::pipeline::RunOptions::default(),
    );

    let speedup = dd.throughput_mops() / mk.throughput_mops();
    assert!(
        speedup > 1.3,
        "DIDO {:.2} MOPS should clearly beat Mega-KV {:.2} MOPS, got {speedup:.2}x",
        dd.throughput_mops(),
        mk.throughput_mops()
    );
}

#[test]
fn deletes_propagate_through_batch_pipeline() {
    let dido = DidoSystem::new(options(2 << 20));
    let (_, rs) = dido.process_batch(vec![Query::set("gone", "soon")]);
    assert_eq!(rs[0].status, ResponseStatus::Ok);
    let (_, rs) = dido.process_batch(vec![Query::delete("gone")]);
    assert_eq!(rs[0].status, ResponseStatus::Ok);
    let (_, rs) = dido.process_batch(vec![Query::get("gone"), Query::delete("gone")]);
    assert_eq!(rs[0].status, ResponseStatus::NotFound);
    assert_eq!(rs[1].status, ResponseStatus::NotFound);
}

#[test]
fn store_never_grows_beyond_capacity_under_write_pressure() {
    let spec = WorkloadSpec::from_label("K16-G50-U").unwrap();
    let dido = DidoSystem::preloaded(spec, options(2 << 20));
    let mut generator = WorkloadGen::new(spec, spec.keyspace_size(2 << 20, dido_kv::kvstore::HEADER_SIZE), 9);
    for _ in 0..5 {
        let _ = dido.process_batch(generator.batch(4_096));
    }
    let store = &dido.engine().store;
    assert!(store.bytes_carved() <= store.capacity());
    // The index never holds more entries than live objects.
    assert!(dido.engine().index.len() <= store.live_objects());
}
