//! # dido-kv — umbrella crate
//!
//! Single-dependency facade over the DIDO workspace. Re-exports the
//! public API of every subsystem crate:
//!
//! * [`dido`] — the DIDO system itself (store, profiler, adaption).
//! * [`model`] — shared vocabulary (tasks, configs, stats, queries).
//! * [`apu`] — the coupled CPU-GPU hardware simulator.
//! * [`hashtable`] — the concurrent cuckoo hash index.
//! * [`kvstore`] — slab allocator + eviction + object store.
//! * [`net`] — query protocol and simulated NIC.
//! * [`workload`] — YCSB-style workload generators.
//! * [`pipeline`] — the eight tasks and the pipeline executors.
//! * [`cost_model`] — the APU-aware cost model and config search.
//! * [`megakv`] — the Mega-KV static-pipeline baseline.
//!
//! ```
//! use dido_kv::model::Query;
//! let q = Query::set("user:1", "alice");
//! assert_eq!(&q.key[..], b"user:1");
//! ```

pub use dido;
pub use dido_apu_sim as apu;
pub use dido_cost_model as cost_model;
pub use dido_hashtable as hashtable;
pub use dido_kvstore as kvstore;
pub use dido_megakv as megakv;
pub use dido_model as model;
pub use dido_net as net;
pub use dido_pipeline as pipeline;
pub use dido_workload as workload;
