//! `dido-server` — run a DIDO node as a TCP key-value service.
//!
//! ```text
//! dido-server [--addr HOST:PORT] [--store-mb N] [--latency-us N]
//!             [--shards N] [--dispatchers N] [--readers N]
//!             [--sd-writers N] [--trace FILE] [--stats-every N]
//!             [--batched] [--max-batch-delay-us N]
//!             [--io-backend auto|uring|epoll]
//!             [--resize-after FRAMES:SHARDS]
//!             [--proto dido|memcached|resp] [--listen HOST:PORT]...
//! ```
//!
//! The node can serve several wire protocols at once, one per
//! listening socket. `--proto` selects the protocol for every
//! subsequent `--listen HOST:PORT` (repeatable, up to the reactor
//! listener budget); with no `--listen` the single `--addr` socket
//! speaks the current `--proto`. Example — native DIDO plus a
//! memcached-text port and a RESP port on one store:
//!
//! ```text
//! dido-server --batched --listen 127.0.0.1:7878 \
//!             --proto memcached --listen 127.0.0.1:11211 \
//!             --proto resp --listen 127.0.0.1:6379
//! ```
//!
//! The serving core is the concurrent `ServingCore`: every request
//! frame (or, with `--batched`, every cross-connection dispatcher
//! batch) runs inline through the sharded engine under the shard's
//! active pipeline configuration, which a background adaptation
//! controller re-plans off the hot path as the profiled workload
//! shifts. There is no global lock on the query path: `--dispatchers N`
//! batched dispatchers call the shared core concurrently, each striping
//! its profiling into its own lane, and `--shards N` partitions the
//! store by key hash. In batched mode, connections are carried by a
//! fixed pool of `--readers N` reactor threads (default `min(4,
//! cores)`) regardless of how many clients connect — see `DESIGN.md`
//! §13 — and responses leave through `--sd-writers N` readiness-driven
//! SD egress shards (default `min(2, cores/2)`) — see `DESIGN.md` §14.
//! `--io-backend` picks the syscall backend for both planes: `uring`
//! runs them on batched io_uring submission, `epoll` on readiness
//! polling, and `auto` (the default) probes the kernel and falls back
//! to epoll when io_uring is unusable — see `DESIGN.md` §15.
//!
//! `--trace` tees accepted queries to a replayable trace file through a
//! bounded queue and a background writer (append-only, size-rotated;
//! recording never blocks the data path — bursts beyond the queue are
//! dropped and counted). `--stats-every` prints a metrics snapshot
//! every N frames, formatted outside all locks. Runs until killed.
//!
//! The shard topology can change live, in two ways. `--resize-after
//! FRAMES:SHARDS` requests a resize to SHARDS shards once FRAMES
//! request frames have been served (a scripted trigger for benchmarks).
//! At runtime, any client can send a SET to the admin key
//! `__dido/resize` with the desired shard count as the value; the
//! request is handed to the background controller, which installs the
//! migrating shard map and drains donor shards while serving continues
//! (see `DESIGN.md` §12).

use dido_kv::dido::{DidoOptions, ServingCore};
use dido_kv::net::{
    BatchConfig, DispatchMode, IoBackend, IoBackendChoice, KvServer, NetStatsSnapshot,
    ProtocolKind, ServerStats, TraceWriter,
};
use dido_kv::pipeline::TestbedOptions;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, OnceLock};

/// Cadence of the background adaptation controller.
const CONTROLLER_PERIOD: std::time::Duration = std::time::Duration::from_millis(5);
/// Trace rotation threshold: when the live file passes this size it is
/// renamed to `<path>.1` (replacing any previous rotation) and a fresh
/// file is started — the recording is bounded at ~2x this on disk.
const TRACE_ROTATE_BYTES: u64 = 64 << 20;
/// Bounded depth of the handler → trace-writer queue, in batches.
const TRACE_QUEUE_BATCHES: usize = 1024;

struct Args {
    addr: String,
    /// `(address, protocol)` per listening socket, in `--listen` order;
    /// empty means a single `--addr` listener speaking the protocol
    /// that was current when argument parsing finished.
    listeners: Vec<(String, ProtocolKind)>,
    /// Protocol stamped on `--addr` when no `--listen` is given (the
    /// last `--proto`, or DIDO by default).
    proto: ProtocolKind,
    store_mb: usize,
    latency_us: f64,
    shards: usize,
    dispatchers: usize,
    /// Reactor (reader) threads for batched mode; 0 = `min(4, cores)`.
    readers: usize,
    /// SD egress shard threads for batched mode; 0 = `min(2, cores/2)`.
    sd_writers: usize,
    trace: Option<std::path::PathBuf>,
    stats_every: u64,
    batched: bool,
    max_batch_delay_us: u64,
    /// Syscall backend for the batched planes (`auto` probes, falling
    /// back to epoll).
    io_backend: IoBackendChoice,
    /// `(frames, shards)`: request a live resize to `shards` once
    /// `frames` request frames have been served.
    resize_after: Option<(u64, usize)>,
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: "127.0.0.1:7878".to_string(),
        listeners: Vec::new(),
        proto: ProtocolKind::Dido,
        store_mb: 64,
        latency_us: 1_000.0,
        shards: 1,
        dispatchers: 1,
        readers: 0,
        sd_writers: 0,
        trace: None,
        stats_every: 0,
        batched: false,
        max_batch_delay_us: 200,
        io_backend: IoBackendChoice::Auto,
        resize_after: None,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        let mut value = |name: &str| {
            iter.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                std::process::exit(2);
            })
        };
        let parse_num = |name: &str, v: String| -> usize {
            v.parse().unwrap_or_else(|_| {
                eprintln!("{name} needs a number");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--addr" => args.addr = value("--addr"),
            "--proto" => {
                let v = value("--proto");
                args.proto = ProtocolKind::from_name(&v).unwrap_or_else(|| {
                    eprintln!("--proto must be dido, memcached, or resp (got {v})");
                    std::process::exit(2);
                });
            }
            "--listen" => {
                let addr = value("--listen");
                args.listeners.push((addr, args.proto));
            }
            "--store-mb" => args.store_mb = parse_num("--store-mb", value("--store-mb")),
            "--latency-us" => {
                args.latency_us = value("--latency-us").parse().unwrap_or_else(|_| {
                    eprintln!("--latency-us needs a number");
                    std::process::exit(2);
                })
            }
            "--shards" => args.shards = parse_num("--shards", value("--shards")).max(1),
            "--dispatchers" => {
                args.dispatchers = parse_num("--dispatchers", value("--dispatchers")).max(1)
            }
            "--readers" => args.readers = parse_num("--readers", value("--readers")),
            "--sd-writers" => {
                args.sd_writers = parse_num("--sd-writers", value("--sd-writers"))
            }
            "--trace" => args.trace = Some(value("--trace").into()),
            "--stats-every" => {
                args.stats_every = parse_num("--stats-every", value("--stats-every")) as u64
            }
            "--batched" => args.batched = true,
            "--io-backend" => {
                args.io_backend = match value("--io-backend").as_str() {
                    "auto" => IoBackendChoice::Auto,
                    "uring" => IoBackendChoice::Uring,
                    "epoll" => IoBackendChoice::Epoll,
                    other => {
                        eprintln!("--io-backend must be auto, uring, or epoll (got {other})");
                        std::process::exit(2);
                    }
                }
            }
            "--resize-after" => {
                let v = value("--resize-after");
                let parsed = v.split_once(':').and_then(|(frames, shards)| {
                    Some((frames.parse().ok()?, shards.parse::<usize>().ok()?.max(1)))
                });
                match parsed {
                    Some(pair) => args.resize_after = Some(pair),
                    None => {
                        eprintln!("--resize-after needs FRAMES:SHARDS (e.g. 10000:4)");
                        std::process::exit(2);
                    }
                }
            }
            "--max-batch-delay-us" => {
                args.max_batch_delay_us =
                    parse_num("--max-batch-delay-us", value("--max-batch-delay-us")) as u64
            }
            "--help" | "-h" => {
                println!(
                    "usage: dido-server [--addr HOST:PORT] [--store-mb N] \
                     [--latency-us N] [--shards N] [--dispatchers N] \
                     [--readers N] [--sd-writers N] [--trace FILE] \
                     [--stats-every N] [--batched] \
                     [--max-batch-delay-us N] \
                     [--io-backend auto|uring|epoll] \
                     [--resize-after FRAMES:SHARDS] \
                     [--proto dido|memcached|resp] [--listen HOST:PORT]..."
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

/// Background trace recorder: the handler `try_send`s cloned batches
/// into a bounded queue (never blocking the data path; overflow is
/// counted, not waited out) and this thread appends them to a
/// size-rotated trace file.
struct TraceRecorder {
    tx: mpsc::SyncSender<Vec<dido_kv::model::Query>>,
    dropped: Arc<AtomicU64>,
}

fn spawn_trace_recorder(path: std::path::PathBuf) -> std::io::Result<TraceRecorder> {
    let (tx, rx) = mpsc::sync_channel::<Vec<dido_kv::model::Query>>(TRACE_QUEUE_BATCHES);
    let dropped = Arc::new(AtomicU64::new(0));
    let mut writer = TraceWriter::create(&path)
        .map_err(|e| std::io::Error::other(format!("trace create failed: {e}")))?;
    std::thread::Builder::new()
        .name("dido-trace".into())
        .spawn(move || {
            let mut since_flush = 0u32;
            while let Ok(batch) = rx.recv() {
                if let Err(e) = writer.append(&batch) {
                    eprintln!("trace write failed: {e}");
                    return;
                }
                since_flush += 1;
                if since_flush >= 64 {
                    since_flush = 0;
                    let _ = writer.flush();
                }
                if writer.bytes_written() >= TRACE_ROTATE_BYTES {
                    let _ = writer.flush();
                    let mut rotated = path.clone().into_os_string();
                    rotated.push(".1");
                    let _ = std::fs::rename(&path, std::path::Path::new(&rotated));
                    match TraceWriter::create(&path) {
                        Ok(w) => writer = w,
                        Err(e) => {
                            eprintln!("trace rotation failed: {e}");
                            return;
                        }
                    }
                }
            }
            let _ = writer.flush();
        })?;
    Ok(TraceRecorder { tx, dropped })
}

fn main() -> std::io::Result<()> {
    let args = parse_args();
    let core = Arc::new(ServingCore::new(
        args.shards,
        args.dispatchers.max(1),
        DidoOptions {
            testbed: TestbedOptions {
                store_bytes: args.store_mb << 20,
                ..TestbedOptions::default()
            },
            latency_budget_ns: args.latency_us * 1_000.0,
            ..DidoOptions::default()
        },
    ));
    // Held for the process lifetime; joined (never, here) on drop.
    let _controller = ServingCore::spawn_controller(Arc::clone(&core), CONTROLLER_PERIOD);

    let recorder = match args.trace.clone() {
        Some(path) => Some(spawn_trace_recorder(path)?),
        None => None,
    };
    let frames_seen = Arc::new(AtomicU64::new(0));

    // The handler closes over the server's stats to fold network
    // dispatch counters into the node metrics; the server doesn't exist
    // until `start_with` returns, so hand them over via a OnceLock.
    let net_stats: Arc<OnceLock<Arc<ServerStats>>> = Arc::new(OnceLock::new());
    let last_net = Mutex::new(NetStatsSnapshot::default());

    let handler_core = Arc::clone(&core);
    let handler_net = Arc::clone(&net_stats);
    let handler_frames = Arc::clone(&frames_seen);
    let stats_every = args.stats_every;
    let resize_after = args.resize_after;
    let mode = if args.batched {
        DispatchMode::Batched(BatchConfig {
            max_batch_delay: std::time::Duration::from_micros(args.max_batch_delay_us),
            dispatchers: args.dispatchers,
            readers: args.readers,
            sd_writers: args.sd_writers,
            io_backend: args.io_backend,
            ..BatchConfig::default()
        })
    } else {
        DispatchMode::PerConnection
    };
    let listeners: Vec<(String, ProtocolKind)> = if args.listeners.is_empty() {
        vec![(args.addr.clone(), args.proto)]
    } else {
        args.listeners.clone()
    };
    let listener_refs: Vec<(&str, ProtocolKind)> =
        listeners.iter().map(|(a, p)| (a.as_str(), *p)).collect();
    let server = KvServer::start_multi(&listener_refs, mode, move |lane, queries| {
        if let Some(rec) = &recorder {
            // Never block the data path on trace I/O: on queue overflow
            // the batch is dropped from the recording and counted.
            if rec.tx.try_send(queries.clone()).is_err() {
                rec.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
        // Admin trigger: a SET to `__dido/resize` asks for a live shard
        // resize; the request is handed to the background controller so
        // no dispatcher ever blocks on the resharding locks. The
        // first-byte guard keeps the scan free for ordinary keys.
        for q in &queries {
            if q.op == dido_kv::model::QueryOp::Set
                && q.key.first() == Some(&b'_')
                && &q.key[..] == b"__dido/resize"
            {
                if let Ok(n) = std::str::from_utf8(&q.value)
                    .unwrap_or("")
                    .trim()
                    .parse::<usize>()
                {
                    handler_core.request_resize(n);
                }
            }
        }
        let responses = handler_core.process_batch(lane, queries);
        let n = handler_frames.fetch_add(1, Ordering::Relaxed) + 1;
        // Scripted trigger: fires exactly once, on the frame whose
        // unique counter value equals the threshold.
        if let Some((frames, shards)) = resize_after {
            if n == frames {
                handler_core.request_resize(shards);
            }
        }
        if stats_every > 0 && n.is_multiple_of(stats_every) {
            // Snapshot under the metrics lock, format and print outside
            // every lock — a slow stderr must not stall dispatchers.
            if let Some(stats) = handler_net.get() {
                let now = stats.snapshot();
                let mut last = last_net.lock();
                let delta = now.delta_since(&last);
                *last = now;
                drop(last);
                handler_core.record_net_stats(&delta);
            }
            let metrics = handler_core.metrics();
            let configs = handler_core.configs();
            let adaptions = handler_core.adaptions();
            eprintln!("--- after {n} frames ---\n{metrics}");
            let (state, epoch) = handler_core.engine().shard_map().load();
            eprintln!("shard map: {state:?} (epoch {epoch})");
            for (s, c) in configs.iter().enumerate() {
                eprintln!("shard {s} pipeline: {c}");
            }
            eprintln!("adaptions: {adaptions}");
        }
        responses
    })?;
    let _ = net_stats.set(server.stats_handle());
    for (bound, (_, proto)) in server.addrs().iter().zip(&listeners) {
        println!("dido-server listening on {bound} ({})", proto.as_str());
    }
    println!(
        "store {} MB across {} shard(s), latency budget {:.0} us{}{}",
        args.store_mb,
        args.shards,
        args.latency_us,
        if args.batched {
            format!(
                ", batched dispatch x{}, {} reader(s), {} sd writer(s), io backend {}",
                args.dispatchers,
                server
                    .stats()
                    .reactor_threads
                    .load(std::sync::atomic::Ordering::Relaxed),
                server
                    .stats()
                    .sd_writer_threads
                    .load(std::sync::atomic::Ordering::Relaxed),
                IoBackend::name_of(
                    server
                        .stats()
                        .io_backend
                        .load(std::sync::atomic::Ordering::Relaxed)
                )
            )
        } else {
            String::new()
        },
        if args.trace.is_some() {
            ", tracing on"
        } else {
            ""
        }
    );

    // Serve until the process is killed.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}
