//! `dido-server` — run a DIDO node as a TCP key-value service.
//!
//! ```text
//! dido-server [--addr HOST:PORT] [--store-mb N] [--latency-us N]
//!             [--trace FILE] [--stats-every N]
//!             [--batched] [--max-batch-delay-us N]
//! ```
//!
//! Every request frame becomes one pipeline batch, so the workload
//! profiler sees real client traffic and re-adapts the pipeline as it
//! shifts. With `--batched`, the server instead runs the RV-ring
//! dispatcher data path: frames from every connection aggregate into
//! cross-connection batches (held open up to `--max-batch-delay-us`
//! below one wavefront), so concurrent clients share single pipeline
//! invocations. `--trace` tees accepted queries to a replayable trace
//! file (rewritten every 256 frames); `--stats-every` prints the
//! metrics summary every N frames. Runs until killed.

use dido_kv::dido::{DidoOptions, DidoSystem};
use dido_kv::net::{BatchConfig, DispatchMode, KvServer, NetStatsSnapshot, ServerStats};
use dido_kv::pipeline::TestbedOptions;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

struct Args {
    addr: String,
    store_mb: usize,
    latency_us: f64,
    trace: Option<std::path::PathBuf>,
    stats_every: u64,
    batched: bool,
    max_batch_delay_us: u64,
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: "127.0.0.1:7878".to_string(),
        store_mb: 64,
        latency_us: 1_000.0,
        trace: None,
        stats_every: 0,
        batched: false,
        max_batch_delay_us: 200,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        let mut value = |name: &str| {
            iter.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--addr" => args.addr = value("--addr"),
            "--store-mb" => {
                args.store_mb = value("--store-mb").parse().unwrap_or_else(|_| {
                    eprintln!("--store-mb needs a number");
                    std::process::exit(2);
                })
            }
            "--latency-us" => {
                args.latency_us = value("--latency-us").parse().unwrap_or_else(|_| {
                    eprintln!("--latency-us needs a number");
                    std::process::exit(2);
                })
            }
            "--trace" => args.trace = Some(value("--trace").into()),
            "--stats-every" => {
                args.stats_every = value("--stats-every").parse().unwrap_or_else(|_| {
                    eprintln!("--stats-every needs a number");
                    std::process::exit(2);
                })
            }
            "--batched" => args.batched = true,
            "--max-batch-delay-us" => {
                args.max_batch_delay_us =
                    value("--max-batch-delay-us").parse().unwrap_or_else(|_| {
                        eprintln!("--max-batch-delay-us needs a number");
                        std::process::exit(2);
                    })
            }
            "--help" | "-h" => {
                println!(
                    "usage: dido-server [--addr HOST:PORT] [--store-mb N] \
                     [--latency-us N] [--trace FILE] [--stats-every N] \
                     [--batched] [--max-batch-delay-us N]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

fn main() -> std::io::Result<()> {
    let args = parse_args();
    let dido = Mutex::new(DidoSystem::new(DidoOptions {
        testbed: TestbedOptions {
            store_bytes: args.store_mb << 20,
            ..TestbedOptions::default()
        },
        latency_budget_ns: args.latency_us * 1_000.0,
        ..DidoOptions::default()
    }));
    let trace = args.trace.clone().map(|p| (p, Mutex::new(Vec::new())));
    let trace = std::sync::Arc::new(trace);
    let frames_seen = std::sync::Arc::new(AtomicU64::new(0));

    // The handler closes over the server's stats to fold network
    // dispatch counters into the node metrics; the server doesn't exist
    // until `start_with` returns, so hand them over via a OnceLock.
    let net_stats: Arc<OnceLock<Arc<ServerStats>>> = Arc::new(OnceLock::new());
    let last_net = Mutex::new(NetStatsSnapshot::default());

    let handler_trace = Arc::clone(&trace);
    let handler_frames = Arc::clone(&frames_seen);
    let handler_net = Arc::clone(&net_stats);
    let stats_every = args.stats_every;
    let mode = if args.batched {
        DispatchMode::Batched(BatchConfig {
            max_batch_delay: std::time::Duration::from_micros(args.max_batch_delay_us),
            ..BatchConfig::default()
        })
    } else {
        DispatchMode::PerConnection
    };
    let server = KvServer::start_with(&args.addr, mode, move |queries| {
        if let Some((path, buf)) = handler_trace.as_ref() {
            let mut buf = buf.lock();
            buf.extend(queries.iter().cloned());
            // Periodic rewrite so a kill loses at most 256 frames.
            if handler_frames.load(Ordering::Relaxed) % 256 == 255 {
                if let Err(e) = dido_kv::net::write_trace(path, &buf) {
                    eprintln!("trace write failed: {e}");
                }
            }
        }
        let mut dido = dido.lock();
        let (_, responses) = dido.process_batch(queries);
        let n = handler_frames.fetch_add(1, Ordering::Relaxed) + 1;
        if stats_every > 0 && n.is_multiple_of(stats_every) {
            if let Some(stats) = handler_net.get() {
                let now = stats.snapshot();
                let mut last = last_net.lock();
                dido.metrics_mut().record_net_stats(&now.delta_since(&last));
                *last = now;
            }
            eprintln!("--- after {n} frames ---\n{}", dido.metrics());
            eprintln!("pipeline: {}", dido.current_config());
        }
        responses
    })?;
    let _ = net_stats.set(server.stats_handle());
    println!("dido-server listening on {}", server.addr());
    println!(
        "store {} MB, latency budget {:.0} us{}{}",
        args.store_mb,
        args.latency_us,
        if args.batched {
            ", batched dispatch"
        } else {
            ""
        },
        if trace.is_some() { ", tracing on" } else { "" }
    );

    // Serve until the process is killed.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}
