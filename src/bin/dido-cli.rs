//! `dido-cli` — command-line client for a running `dido-server`.
//!
//! ```text
//! dido-cli [--addr HOST:PORT] set <key> <value>
//! dido-cli [--addr HOST:PORT] get <key>
//! dido-cli [--addr HOST:PORT] del <key>
//! dido-cli [--addr HOST:PORT] bench [--n N] [--workload LABEL]
//! dido-cli [--addr HOST:PORT] replay <trace-file>
//! ```

use dido_kv::model::{Query, ResponseStatus};
use dido_kv::net::{read_trace, KvClient};
use dido_kv::workload::{WorkloadGen, WorkloadSpec};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = "127.0.0.1:7878".to_string();
    if args.first().map(String::as_str) == Some("--addr") {
        args.remove(0);
        if args.is_empty() {
            return Err("--addr needs a value".into());
        }
        addr = args.remove(0);
    }
    let Some(cmd) = args.first().cloned() else {
        usage();
        return Ok(());
    };
    let mut client = KvClient::connect(addr.parse()?)?;

    match cmd.as_str() {
        "set" if args.len() == 3 => {
            let rs = client.request(&[Query::set(args[1].clone(), args[2].clone())])?;
            println!("{:?}", rs[0].status);
        }
        "get" if args.len() == 2 => {
            let rs = client.request(&[Query::get(args[1].clone())])?;
            match rs[0].status {
                ResponseStatus::Ok => println!("{}", String::from_utf8_lossy(&rs[0].value)),
                other => println!("{other:?}"),
            }
        }
        "del" if args.len() == 2 => {
            let rs = client.request(&[Query::delete(args[1].clone())])?;
            println!("{:?}", rs[0].status);
        }
        "bench" => {
            let mut n: usize = 100_000;
            let mut label = "K16-G95-S".to_string();
            let mut iter = args.iter().skip(1);
            while let Some(a) = iter.next() {
                match a.as_str() {
                    "--n" => n = iter.next().ok_or("--n needs a value")?.parse()?,
                    "--workload" => {
                        label = iter.next().ok_or("--workload needs a value")?.clone()
                    }
                    _ => return Err(format!("unknown bench flag {a}").into()),
                }
            }
            let spec = WorkloadSpec::from_label(&label).ok_or("bad workload label")?;
            // Key space sized to the preload so GETs hit.
            let keyspace = 20_000;
            let mut generator = WorkloadGen::new(spec, keyspace, 0xD1D0);
            for chunk in generator
                .preload_queries(keyspace)
                .collect::<Vec<_>>()
                .chunks(1_024)
            {
                client.request(chunk)?;
            }
            let start = Instant::now();
            let mut ok = 0usize;
            let mut sent = 0usize;
            while sent < n {
                let batch = generator.batch(1_024.min(n - sent));
                sent += batch.len();
                ok += client
                    .request(&batch)?
                    .iter()
                    .filter(|r| r.status == ResponseStatus::Ok)
                    .count();
            }
            let secs = start.elapsed().as_secs_f64();
            println!(
                "{sent} queries in {secs:.2}s over TCP = {:.0} qps ({ok} ok)",
                sent as f64 / secs
            );
        }
        "replay" if args.len() == 2 => {
            let queries = read_trace(std::path::Path::new(&args[1]))?;
            let start = Instant::now();
            let mut ok = 0usize;
            for chunk in queries.chunks(1_024) {
                ok += client
                    .request(chunk)?
                    .iter()
                    .filter(|r| r.status == ResponseStatus::Ok)
                    .count();
            }
            println!(
                "replayed {} queries in {:.2}s ({ok} ok)",
                queries.len(),
                start.elapsed().as_secs_f64()
            );
        }
        _ => usage(),
    }
    Ok(())
}

fn usage() {
    println!("usage: dido-cli [--addr HOST:PORT] <command>");
    println!("  set <key> <value>   store a value");
    println!("  get <key>           read a value");
    println!("  del <key>           delete a key");
    println!("  bench [--n N] [--workload LABEL]");
    println!("  replay <trace-file>");
}
